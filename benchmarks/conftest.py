"""Shared helpers for the paper-reproduction benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints
it in text form (run with ``-s`` to see the output inline; a full run
is archived in EXPERIMENTS.md).  ``pytest-benchmark`` records the
wall-clock cost of regenerating each artifact; every scenario is run
once per invocation (``rounds=1``) because the interesting quantity is
the *simulated* result, not the harness's own speed.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run a scenario exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
