"""Ablations of the speed balancer's design choices (Section 5).

The paper motivates each ingredient of the algorithm; these benches
remove them one at a time on the canonical 16-threads-on-12-cores EP
scenario and measure the damage:

* **jitter** -- "randomness in the balancing interval on each core"
  breaks migration cycles and spreads balancer wake-ups;
* **speed threshold T_s** -- rejects measurement noise; T_s too high
  causes spurious migrations on balanced systems, T_s = 0 disables
  balancing altogether;
* **victim policy** -- "the thread that has migrated the least ...
  avoid[s] creating 'hot-potato' tasks";
* **post-migration block** -- two balance intervals guarantee fresh
  speed measurements; without it, stale speeds cause over-migration;
* **NUMA blocking** (Barcelona) -- migrating across nodes strands
  memory behind the remote-access penalty.
"""

from dataclasses import replace

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.core.speed_balancer import SpeedBalancerConfig
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.sched.task import WaitMode
from repro.topology import presets
from repro.topology.machine import DomainLevel

YIELD = WaitPolicy(mode=WaitMode.YIELD)
SEEDS = range(4)
TOTAL_US = 1_500_000


def _ep16(system):
    return ep_app(system, n_threads=16, wait_policy=YIELD,
                  total_compute_us=TOTAL_US)


def _run(config, machine=presets.tigerton, cores=12):
    return repeat_run(machine, _ep16, "speed", cores=cores, seeds=SEEDS,
                      speed_config=config)


def run_all():
    base = SpeedBalancerConfig()
    results = {
        "paper defaults": _run(base),
        "no jitter": _run(replace(base, jitter=False)),
        "T_s = 0.99 (no noise guard)": _run(replace(base, speed_threshold=0.99)),
        "T_s = 0.5 (deaf)": _run(replace(base, speed_threshold=0.5)),
        "victim: most-migrated": _run(replace(base, victim_policy="most-migrated")),
        "victim: random": _run(replace(base, victim_policy="random")),
        "no post-migration block": _run(
            replace(base, post_migration_block_intervals=0.0)
        ),
        "long block (6 intervals)": _run(
            replace(base, post_migration_block_intervals=6.0)
        ),
        "no initial pinning": _run(replace(base, initial_pinning=False)),
        "no min-gain guard": _run(replace(base, min_gain_guard=False)),
        "adaptive interval": _run(replace(base, adaptive_interval=True)),
    }
    # NUMA blocking ablation runs on the Barcelona
    numa_open = replace(
        base, level_enabled=dict.fromkeys(DomainLevel, True)
    )
    results["barcelona, NUMA blocked (default)"] = _run(
        base, machine=presets.barcelona
    )
    results["barcelona, NUMA open"] = _run(numa_open, machine=presets.barcelona)
    return results


def test_ablation_design_choices(once):
    results = once(run_all)

    rows = [
        [name, rr.mean_speedup, rr.variation_pct, rr.mean_migrations]
        for name, rr in results.items()
    ]
    print()
    print(report.table(
        ["configuration", "speedup", "variation %", "migrations"],
        rows,
        title="Ablations: EP, 16 threads on 12 cores (ideal 12)",
        float_fmt="{:.2f}",
    ))

    base = results["paper defaults"]

    # deaf threshold disables balancing: collapses to the LOAD shape
    assert results["T_s = 0.5 (deaf)"].mean_speedup < 0.8 * base.mean_speedup

    # hot-potato victims waste rotations: strictly worse than defaults
    assert (
        results["victim: most-migrated"].mean_speedup <= base.mean_speedup * 1.01
    )

    # removing the block must not *improve* stability; it typically
    # inflates migrations (stale speeds trigger extra pulls)
    assert (
        results["no post-migration block"].mean_migrations
        >= base.mean_migrations
    )

    # an over-long block slows rotation: fewer migrations, lower speedup
    long_block = results["long block (6 intervals)"]
    assert long_block.mean_migrations < base.mean_migrations
    assert long_block.mean_speedup < base.mean_speedup * 1.01

    # initial pinning mostly protects variation and the startup phase
    assert results["no initial pinning"].mean_speedup > 0.75 * base.mean_speedup

    # the min-gain guard must not cost anything on the homogeneous
    # oversubscribed workload (it only blocks pointless migrations)
    assert results["no min-gain guard"].mean_speedup < base.mean_speedup * 1.03

    # the adaptive interval must not degrade active balancing
    assert results["adaptive interval"].mean_speedup > 0.9 * base.mean_speedup

    # NUMA: blocking node migrations wins on the NUMA machine
    blocked = results["barcelona, NUMA blocked (default)"]
    open_ = results["barcelona, NUMA open"]
    assert blocked.mean_speedup >= 0.98 * open_.mean_speedup

    # every configuration still beats the queue-length-balancing floor
    for name, rr in results.items():
        if "deaf" in name:
            continue
        assert rr.mean_speedup > 8.0, name
