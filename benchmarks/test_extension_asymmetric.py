"""Extension study (beyond the paper's evaluation): asymmetric clocks.

Section 3 motivates speed balancing with asymmetric systems (Turbo
Boost, OS-reserved cores) but the evaluation machines are symmetric.
This bench runs the study the motivation implies:

* a static Turbo-Boost-style machine (two 1.3x, two 0.85x, four 1.0x
  cores) under oversubscription;
* the same machine with *dynamic* throttling mid-run;

comparing SPEED (with the paper's clock-weighting extension) against
LOAD and PINNED.  Shape targets: SPEED's clock-weighted rotation beats
both static assignment and queue-length balancing, which are blind to
clock speed; with one thread per core (where pull-only balancing
cannot help), the min-gain guard keeps SPEED at parity instead of
thrashing.
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.harness import report
from repro.harness.experiment import repeat_run, run_app
from repro.sched.task import WaitMode
from repro.topology import presets

YIELD = WaitPolicy(mode=WaitMode.YIELD)
CLOCKS = [1.3, 1.3, 0.85, 0.85, 1.0, 1.0, 1.0, 1.0]
SEEDS = range(3)


def _factory(n_threads, per_thread_us):
    def factory(system):
        return ep_app(system, n_threads=n_threads, wait_policy=YIELD,
                      total_compute_us=per_thread_us)

    return factory


def run_static():
    out = {}
    for mode in ("speed", "load", "pinned"):
        out[mode] = repeat_run(
            lambda: presets.asymmetric(CLOCKS), _factory(12, 2_000_000),
            balancer=mode, seeds=SEEDS,
        )
    return out


def run_dynamic():
    """Symmetric at start; cores 0-1 throttle to 0.6x at t=0.3s."""
    out = {}
    for mode in ("speed", "load"):
        runs = []
        for seed in SEEDS:
            res, system = run_app(
                presets.uniform(8), _factory(12, 2_000_000), balancer=mode,
                seed=seed, return_system=True,
            )
            runs.append(res)
        out[mode] = runs
    return out


def run_dynamic_with_throttle():
    from repro.balance.linux import LinuxLoadBalancer
    from repro.core.speed_balancer import SpeedBalancer
    from repro.system import System

    out = {}
    for mode in ("speed", "load"):
        elapsed = []
        for seed in SEEDS:
            system = System(presets.uniform(8), seed=seed)
            system.set_balancer(LinuxLoadBalancer())
            app = ep_app(system, n_threads=12, wait_policy=YIELD,
                         total_compute_us=2_000_000)
            if mode == "speed":
                system.add_user_balancer(SpeedBalancer(app))
            app.spawn()
            for cid in (0, 1):
                system.schedule_clock_change(300_000, cid, 0.6)
            system.run_until_done([app])
            elapsed.append(app.elapsed_us)
        out[mode] = sum(elapsed) / len(elapsed)
    return out


def test_extension_asymmetric_static(once):
    results = once(run_static)
    capacity = sum(CLOCKS)
    ideal_s = 12 * 2_000_000 / capacity / 1e6
    rows = [
        [mode.upper(), rr.mean_time_us / 1e6, rr.variation_pct,
         rr.mean_migrations]
        for mode, rr in results.items()
    ]
    print()
    print(report.table(
        ["balancer", "time (s)", "variation %", "migrations"],
        rows,
        title=(
            f"Extension: EP 12 threads on 8 cores, clocks {CLOCKS} "
            f"(capacity-ideal {ideal_s:.2f} s)"
        ),
    ))
    speed = results["speed"].mean_time_us
    assert speed < 0.85 * results["pinned"].mean_time_us
    assert speed < 0.85 * results["load"].mean_time_us
    assert speed < 1.25 * ideal_s * 1e6


def test_extension_dynamic_throttling(once):
    out = once(run_dynamic_with_throttle)
    print()
    print(report.kv_block(
        "Extension: 12 threads on 8 cores; cores 0-1 throttle to 0.6x "
        "at t=0.3s (mean over seeds)",
        {
            "SPEED time (s)": out["speed"] / 1e6,
            "LOAD time (s)": out["load"] / 1e6,
            "LOAD/SPEED": out["load"] / out["speed"],
        },
    ))
    assert out["speed"] < 0.9 * out["load"]
