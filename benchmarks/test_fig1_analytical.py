"""Figure 1: profitability threshold of speed balancing.

Paper: "Relationship between inter-thread synchronization interval (S)
and a fixed balancing interval (B=1) ... The scale of the figure is cut
off at 10; the actual data range is [0.015, 147]" over 10..100 cores.

We regenerate the grid from the Section 4 model, print a coarse text
heatmap plus the summary statistics the caption quotes, and check the
claims: the majority of configurations need S <= 1, and the diagonals
(N just under a multiple of M: many slow queues, few fast) are the
worst cases.
"""

import numpy as np

from repro.core import analytical as an
from repro.harness import report


def regenerate():
    cores = range(10, 101)
    threads = range(10, 401)
    cores_ax, threads_ax, grid = an.figure1_grid(cores, threads, b=1.0)
    positive = grid[grid > 0]
    return cores_ax, threads_ax, grid, positive


def test_fig1_profitability_grid(once):
    cores_ax, threads_ax, grid, positive = once(regenerate)

    # -- caption claims -------------------------------------------------
    frac_fine = float((positive <= 1.0).mean())
    assert frac_fine > 0.5, "majority of cases must allow fine-grained S<=1"
    assert positive.min() <= 0.05
    assert positive.max() >= 50

    # diagonal worst case: N = 2M - 1 (two threads per core, M-1 slow)
    m = 80
    diag = an.min_profitable_s(2 * m - 1, m)
    nearby = an.min_profitable_s(2 * m + 1, m)
    assert diag > 20 * nearby

    # -- paper-style rendering ------------------------------------------
    sample_cores = [10, 20, 40, 60, 80, 100]
    sample_threads = [20, 50, 100, 150, 250, 350]
    rows = []
    for n in sample_threads:
        row = [n]
        for m_ in sample_cores:
            i = int(np.where(threads_ax == n)[0][0])
            j = int(np.where(cores_ax == m_)[0][0])
            row.append(min(grid[i, j], 10.0))  # same scale cut as the paper
        rows.append(row)
    print()
    print(report.table(
        ["threads\\cores"] + [str(c) for c in sample_cores],
        rows,
        title="Figure 1: minimum S for speed balancing to beat queue-length "
              "balancing (B=1, scale cut at 10)",
    ))
    print(report.kv_block("Grid statistics", {
        "configurations": int(grid.size),
        "oversubscribed": int((grid > 0).sum()),
        "fraction with S <= 1": frac_fine,
        "min S": float(positive.min()),
        "max S": float(positive.max()),
        "paper's range": "[0.015, 147]",
    }, float_fmt="{:.3f}"))
