"""Figure 2: balance interval vs synchronization granularity.

Paper setup: "Three threads on two cores on Intel Tigerton, fixed
amount of computation per thread, with barriers at the interval shown
on the x-axis" -- the modified EP that executes an increasing number of
barriers.  Findings to reproduce:

* more frequent balancing improves performance for this CPU-bound,
  tiny-footprint benchmark (20 ms is best for EP);
* slowdown vs one-thread-per-core approaches the analytical 3/2 bound
  for coarse barriers (the paper's y-axis is normalized run time,
  between 1.3x and 1.55x);
* very fine barriers (S below the Section 4 threshold) erase the
  benefit: the slowdown drifts toward the unbalanced 2.0.

Scaling: per-thread compute is 0.5 s instead of ~27 s; barrier periods
keep the paper's x-axis magnitudes.
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.core.speed_balancer import SpeedBalancerConfig
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.sched.task import WaitMode
from repro.topology import presets

BARRIER_PERIODS_US = [53, 440, 3_400, 27_000, 216_000]
BALANCE_INTERVALS_US = [20_000, 50_000, 100_000, 200_000, 400_000]
TOTAL_US = 500_000
SEEDS = range(3)


def run_sweep():
    out = {}
    for period in BARRIER_PERIODS_US:
        for interval in BALANCE_INTERVALS_US:
            def factory(system, period=period):
                return ep_app(
                    system, n_threads=3,
                    wait_policy=WaitPolicy(mode=WaitMode.YIELD),
                    total_compute_us=TOTAL_US,
                    barrier_period_us=period,
                )

            rr = repeat_run(
                presets.tigerton, factory, balancer="speed", cores=2,
                seeds=SEEDS,
                speed_config=SpeedBalancerConfig(interval_us=interval),
            )
            out[(period, interval)] = rr.mean_time_us
    return out


def test_fig2_balance_interval_sweep(once):
    times = once(run_sweep)
    # one-per-core reference: each thread alone computes TOTAL_US; with
    # 3 threads of TOTAL_US on 2 cores the capacity bound is 1.5x
    ref = TOTAL_US

    slowdown = {
        k: v / ref for k, v in times.items()
    }

    # -- shape checks ----------------------------------------------------
    # (a) for coarse enough barriers, frequent balancing approaches the
    #     capacity bound of 1.5 and stays well below the unbalanced 2.0
    best_coarse = slowdown[(216_000, 20_000)]
    assert best_coarse < 1.75

    # (b) 20 ms balancing beats 400 ms for the coarse-grained points
    #     ("Increasing the frequency of migrations ... leads to improved
    #     performance" for EP)
    for period in (27_000, 216_000):
        assert slowdown[(period, 20_000)] <= slowdown[(period, 400_000)] + 0.02

    # (c) ultra-fine barriers (53 us << threshold) gain little: the run
    #     sits closer to the unbalanced 2.0 than the balanced 1.5
    assert slowdown[(53, 100_000)] > 1.6

    # -- render ----------------------------------------------------------
    print()
    columns = {
        f"B={b // 1000}ms": [slowdown[(p, b)] for p in BARRIER_PERIODS_US]
        for b in BALANCE_INTERVALS_US
    }
    print(report.series(
        "inter-barrier (us)", BARRIER_PERIODS_US, columns,
        title="Figure 2: slowdown vs one-per-core, 3 threads on 2 cores "
              "(capacity bound 1.5, unbalanced 2.0)",
    ))
