"""Figure 3: UPC EP class C speedup on Tigerton and Barcelona.

"The benchmark is compiled with 16 threads and run on the number of
cores indicated on the x-axis.  We report the average speedup over 10
runs."  Series: One-per-core (ideal), SPEED, DWRR, FreeBSD (ULE),
LOAD-SLEEP, LOAD-YIELD, PINNED on Tigerton; SPEED-SLEEP, SPEED-YIELD,
LOAD-SLEEP, LOAD-YIELD, One-per-core on Barcelona.

Shape targets (paper):

* One-per-core scales perfectly;
* SPEED is near-optimal at every core count with little variation;
* PINNED "only achieves optimal speedup when 16 mod N = 0";
* LOAD is "often worse than static balancing and highly variable";
* LOAD-SLEEP scales better than LOAD-YIELD;
* ULE tracks PINNED;
* DWRR scales like SPEED up to 8 cores (its 16-on-16 dip is an
  implementation-overhead artifact we do not reproduce; see
  EXPERIMENTS.md).

Scaling: 16 s of total compute (1 s per thread at 16 threads) instead
of class C's tens of seconds -- enough balance intervals for the
Section 4 profitability threshold to be met at every core count; 3
seeds instead of 10 (variability is asserted separately in Table 3's
bench with more seeds).
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.sched.task import WaitMode
from repro.topology import presets

CORE_COUNTS = [1, 2, 4, 6, 8, 10, 12, 14, 15, 16]
SEEDS = range(3)
TOTAL_16_US = 16 * 1_000_000  # total app compute, split over its threads

YIELD = WaitPolicy(mode=WaitMode.YIELD)
SLEEP = WaitPolicy(mode=WaitMode.SLEEP)


def _series(machine, balancer, wait, one_per_core=False):
    speedups = {}
    for n_cores in CORE_COUNTS:
        threads = n_cores if one_per_core else 16
        per_thread = TOTAL_16_US // threads

        def factory(system, threads=threads, per_thread=per_thread, wait=wait):
            return ep_app(system, n_threads=threads, wait_policy=wait,
                          total_compute_us=per_thread)

        rr = repeat_run(
            machine,
            factory,
            balancer="pinned" if one_per_core else balancer,
            cores=n_cores,
            seeds=SEEDS,
        )
        speedups[n_cores] = rr.mean_speedup
    return speedups


def run_tigerton():
    m = presets.tigerton
    return {
        "One-per-core": _series(m, "pinned", SLEEP, one_per_core=True),
        "SPEED": _series(m, "speed", YIELD),
        "DWRR": _series(m, "dwrr", YIELD),
        "FreeBSD": _series(m, "ule", YIELD),
        "LOAD-SLEEP": _series(m, "load", SLEEP),
        "LOAD-YIELD": _series(m, "load", YIELD),
        "PINNED": _series(m, "pinned", YIELD),
    }


def run_barcelona():
    m = presets.barcelona
    return {
        "One-per-core": _series(m, "pinned", SLEEP, one_per_core=True),
        "SPEED-SLEEP": _series(m, "speed", SLEEP),
        "SPEED-YIELD": _series(m, "speed", YIELD),
        "LOAD-SLEEP": _series(m, "load", SLEEP),
        "LOAD-YIELD": _series(m, "load", YIELD),
    }


def _print_figure(title, series):
    print()
    print(report.series(
        "cores", CORE_COUNTS,
        {name: [vals[c] for c in CORE_COUNTS] for name, vals in series.items()},
        title=title,
    ))


def test_fig3_tigerton(once):
    series = once(run_tigerton)
    _print_figure("Figure 3 (left): UPC EP speedup on Tigerton, 16 threads", series)

    ideal = series["One-per-core"]
    speed = series["SPEED"]
    pinned = series["PINNED"]
    ly = series["LOAD-YIELD"]
    ls = series["LOAD-SLEEP"]

    # one-per-core is the scaling reference ("EP scales perfectly")
    for c in CORE_COUNTS:
        assert ideal[c] == pytest.approx(c, rel=0.06)

    # SPEED near-optimal at ALL core counts.  At 14/15 cores a single
    # slow queue must rotate through all 16 threads; with our scaled
    # run length (~1s vs the paper's tens of seconds) only part of the
    # rotation completes, hence the slightly looser bound there.
    for c in CORE_COUNTS:
        floor = {14: 0.78, 15: 0.75}.get(c, 0.85)
        assert speed[c] > floor * c, f"SPEED not near-optimal at {c} cores"

    # PINNED staircase: optimal exactly when 16 mod c == 0
    for c in CORE_COUNTS:
        expected = 16 / -(-16 // c)  # 16 / ceil(16/c)
        assert pinned[c] == pytest.approx(expected, rel=0.07)

    # SPEED beats PINNED and LOAD-YIELD at every non-divisor count.
    # The margin over PINNED is bounded by capacity: at 6 cores the
    # theoretical maximum is 6/5.33 = 1.125x, growing to 15/8 = 1.875x
    # at 15 cores.
    for c, margin in ((6, 1.05), (10, 1.10), (12, 1.15), (14, 1.15), (15, 1.15)):
        assert speed[c] > margin * pinned[c]
        assert speed[c] > margin * ly[c]

    # LOAD-SLEEP >= LOAD-YIELD everywhere, strictly at non-divisors
    for c in CORE_COUNTS:
        assert ls[c] >= 0.95 * ly[c]
    assert ls[12] > 1.2 * ly[12]

    # ULE tracks PINNED ("very similar to the pinned case")
    for c in CORE_COUNTS:
        assert series["FreeBSD"][c] == pytest.approx(pinned[c], rel=0.2)

    # DWRR tracks SPEED at moderate counts (the paper: comparable <= 8).
    # Above 8 cores the paper measured DWRR below SPEED; our idealized
    # DWRR (no kernel lock/scan overheads) instead tracks or slightly
    # exceeds it -- a documented deviation (EXPERIMENTS.md), bounded
    # here so a regression cannot hide behind it.
    for c in (2, 4, 6, 8):
        assert series["DWRR"][c] == pytest.approx(speed[c], rel=0.15)
    for c in (10, 12, 14, 15, 16):
        assert 0.8 * speed[c] < series["DWRR"][c] < 1.3 * speed[c]


def test_fig3_barcelona(once):
    series = once(run_barcelona)
    _print_figure("Figure 3 (right): UPC EP speedup on Barcelona, 16 threads", series)

    ideal = series["One-per-core"]
    sy = series["SPEED-YIELD"]
    ss = series["SPEED-SLEEP"]
    ly = series["LOAD-YIELD"]

    for c in CORE_COUNTS:
        assert ideal[c] == pytest.approx(c, rel=0.06)

    # the paper's headline for Barcelona: with SPEED, yield ~= sleep.
    # (Sleep runs a touch lower -- the paper itself measured SPEED ~3%
    # behind when tasks sleep, as sleeping threads' near-zero interval
    # speeds mislead the balancer.)
    for c in CORE_COUNTS:
        assert sy[c] == pytest.approx(ss[c], rel=0.25)
    mean_ratio = sum(sy[c] / ss[c] for c in CORE_COUNTS) / len(CORE_COUNTS)
    assert 0.9 < mean_ratio < 1.2

    # SPEED-YIELD beats LOAD-YIELD at the non-divisor counts even with
    # NUMA migrations blocked (thanks to NUMA-aware initial pinning)
    for c in (6, 10, 12, 14):
        assert sy[c] > 1.1 * ly[c]
