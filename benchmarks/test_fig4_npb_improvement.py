"""Figure 4: per-benchmark improvement of SPEED over LOAD.

The paper plots, per NPB benchmark across core counts, the improvement
of SPEED over LOAD for the worst run (SB_WORST/LB_WORST, up to ~70%)
and the average over 10 runs (SB_AVG/LB_AVG, up to ~50%), plus the
run-to-run variation of each (SB_VARIATION ~2%, LB_VARIATION up to
~67%).

Shape targets:

* average improvement >= 0 for the coarse-grained benchmarks, and
  large (tens of %) for the oversubscribed non-divisor core counts;
* worst-case improvement >= average improvement trendwise (SPEED's
  stability pays most in the tail);
* SPEED variation far below LOAD variation overall.

Scaling: 6 seeds (paper: 10); per-thread compute 0.5 s; core counts
{6, 10, 14} (the interesting non-divisors).
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import make_nas_app
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.metrics import stats
from repro.sched.task import WaitMode
from repro.topology import presets

BENCHES = ["bt.A", "cg.B", "ft.B", "is.C"]
CORE_COUNTS = [6, 10, 14]
SEEDS = range(6)
TOTAL_US = 500_000
YIELD = WaitPolicy(mode=WaitMode.YIELD)


def run_grid():
    out = {}
    for bench in BENCHES:
        for n_cores in CORE_COUNTS:
            for mode in ("speed", "load"):
                def factory(system, bench=bench):
                    return make_nas_app(system, bench, wait_policy=YIELD,
                                        total_compute_us=TOTAL_US)

                out[(bench, n_cores, mode)] = repeat_run(
                    presets.tigerton, factory, mode, cores=n_cores, seeds=SEEDS
                )
    return out


def test_fig4_npb_improvements(once):
    grid = once(run_grid)

    rows = []
    avg_improvements = []
    worst_improvements = []
    speed_variations = []
    load_variations = []
    for bench in BENCHES:
        for n_cores in CORE_COUNTS:
            sb = grid[(bench, n_cores, "speed")]
            lb = grid[(bench, n_cores, "load")]
            avg = sb.improvement_avg_pct(lb)
            worst = sb.improvement_worst_pct(lb)
            rows.append([
                bench, n_cores, avg, worst, sb.variation_pct, lb.variation_pct,
            ])
            avg_improvements.append(avg)
            worst_improvements.append(worst)
            speed_variations.append(sb.variation_pct)
            load_variations.append(lb.variation_pct)

    print()
    print(report.table(
        ["bench", "cores", "SB/LB avg %", "SB/LB worst %",
         "SB var %", "LB var %"],
        rows,
        title="Figure 4: SPEED vs LOAD improvement per NPB benchmark "
              "(UPC-style yield barriers, Tigerton)",
    ))
    print(report.kv_block("Overall", {
        "mean avg improvement %": stats.mean(avg_improvements),
        "max avg improvement %": max(avg_improvements),
        "mean worst-case improvement %": stats.mean(worst_improvements),
        "max worst-case improvement %": max(worst_improvements),
        "mean SPEED variation %": stats.mean(speed_variations),
        "mean LOAD variation %": stats.mean(load_variations),
    }))

    # -- shape assertions -------------------------------------------------
    # large average wins exist (paper: up to ~50%)
    assert max(avg_improvements) > 25.0
    # wins on average across the workload
    assert stats.mean(avg_improvements) > 5.0
    # worst-case improvements reach further than average ones (paper: 70%)
    assert max(worst_improvements) > 25.0
    # stability: SPEED's variation far below LOAD's
    assert stats.mean(speed_variations) < 10.0
    assert stats.mean(speed_variations) < 0.7 * stats.mean(load_variations)
