"""Figure 5: EP sharing the machine with a cpu-hog pinned to core 0.

"EP sharing with an unrelated task that is pinned to the first core
(0) on the system.  The task is a compute-intensive 'cpu-hog' that
uses no memory."

Shape targets:

* One-per-core: "the whole parallel application is slowed by 50%
  because the cpu-hog always takes half of core 0";
* PINNED: "initially better because EP gets more of a share of core 0
  (8/9 at two cores) ... until at 16 cores EP is running at half
  speed";
* LOAD: "good because LOAD can balance applications that sleep" (the
  OpenMP benchmark) -- "there is no static balance possible because the
  total number of tasks (17) is a prime";
* SPEED: "near-optimal performance at all core counts, with very low
  performance variation (at most 6% compared with LOAD of up to 20%)".
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.multiprogram import CpuHog
from repro.apps.workloads import ep_app
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.sched.task import WaitMode
from repro.topology import presets

CORE_COUNTS = [2, 4, 8, 12, 16]
SEEDS = range(3)
TOTAL_16_US = 16 * 1_000_000
SLEEP = WaitPolicy(mode=WaitMode.SLEEP)  # OpenMP-style sleeping waiters


def _series(balancer, one_per_core=False):
    out = {}
    for n_cores in CORE_COUNTS:
        threads = n_cores if one_per_core else 16
        per_thread = TOTAL_16_US // threads

        def factory(system, threads=threads, per_thread=per_thread):
            return ep_app(system, n_threads=threads, wait_policy=SLEEP,
                          total_compute_us=per_thread)

        out[n_cores] = repeat_run(
            presets.tigerton,
            factory,
            balancer="pinned" if one_per_core else balancer,
            cores=n_cores,
            seeds=SEEDS,
            corunner_factories=[lambda s: CpuHog(s, core=0)],
        )
    return out


def run_all():
    return {
        "One-per-core": _series("pinned", one_per_core=True),
        "SPEED": _series("speed"),
        "LOAD": _series("load"),
        "PINNED": _series("pinned"),
    }


def test_fig5_cpu_hog(once):
    series = once(run_all)

    print()
    print(report.series(
        "cores", CORE_COUNTS,
        {
            name: [vals[c].mean_speedup for c in CORE_COUNTS]
            for name, vals in series.items()
        },
        title="Figure 5: EP + cpu-hog on core 0 (speedup; the hog takes "
              "half of core 0, so the fair ceiling is cores - 0.5)",
    ))
    print(report.series(
        "cores", CORE_COUNTS,
        {
            name: [vals[c].variation_pct for c in CORE_COUNTS]
            for name, vals in series.items()
        },
        title="Run-to-run variation (%)",
    ))

    one = series["One-per-core"]
    speed = series["SPEED"]
    load = series["LOAD"]
    pinned = series["PINNED"]

    # One-per-core: app held to the core-0 thread at half speed
    for c in CORE_COUNTS:
        assert one[c].mean_speedup == pytest.approx(c / 2, rel=0.08)

    # PINNED: degrades from ~(2 / (1 + 1/8))... i.e. mild at low core
    # counts (hog is 1 of 9 tasks on core 0 at 2 cores) to half speed
    # at 16 (ceiling c/2); intermediate counts better than one-per-core
    assert pinned[2].mean_speedup > 1.6  # 8 EP threads vs 1 hog on core 0
    assert pinned[16].mean_speedup == pytest.approx(8.0, rel=0.08)
    for c in (2, 4, 8):
        assert pinned[c].mean_speedup > one[c].mean_speedup

    # LOAD recovers via sleeping waiters and idle pulls
    assert load[16].mean_speedup > 10.0

    # SPEED near the fair ceiling everywhere, and best or tied.  (LOAD
    # with sleeping waiters is genuinely strong here -- "performance
    # with LOAD is good because LOAD can balance applications that
    # sleep" -- so the dominance margin is a tie band, not a blowout.)
    for c in CORE_COUNTS:
        ceiling = c - 0.5
        assert speed[c].mean_speedup > 0.75 * ceiling
        assert speed[c].mean_speedup >= 0.9 * max(
            one[c].mean_speedup, load[c].mean_speedup, pinned[c].mean_speedup
        )

    # stability: SPEED's spread stays moderate (paper: "at most 6%
    # compared with LOAD of up to 20%"; our scaled runs amplify the
    # percentage because absolute times are ~10x shorter)
    for c in CORE_COUNTS:
        assert speed[c].variation_pct < 15.0
