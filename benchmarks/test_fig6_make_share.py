"""Figure 6: NAS benchmarks sharing the system with ``make -j``.

"SPEED also performs well when the parallel benchmarks considered
share the cores with more realistic applications, such as make, which
uses both memory and I/O and spawns multiple subprocesses.  Figure 6
illustrates the relative performance of SPEED over LOAD when NAS
benchmarks share the system with make -j."

Shape target: the SPEED/LOAD run-time ratio is >= ~1 for every
benchmark (SPEED provides performance isolation), with the gains
largest for benchmarks whose synchronization is yield-based and
granularity coarse enough to balance.
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.multiprogram import MakeWorkload
from repro.apps.workloads import make_nas_app
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.metrics import stats
from repro.sched.task import WaitMode
from repro.topology import presets

BENCHES = ["bt.A", "cg.B", "ft.B", "is.C"]
SEEDS = range(4)
TOTAL_US = 500_000
YIELD = WaitPolicy(mode=WaitMode.YIELD)


def run_grid():
    out = {}
    for bench in BENCHES:
        for mode in ("speed", "load"):
            def factory(system, bench=bench):
                return make_nas_app(system, bench, wait_policy=YIELD,
                                    total_compute_us=TOTAL_US)

            out[(bench, mode)] = repeat_run(
                presets.tigerton, factory, mode, cores=16, seeds=SEEDS,
                corunner_factories=[
                    lambda s: MakeWorkload(s, j=16, jobs=64, mean_job_us=120_000)
                ],
            )
    return out


def test_fig6_make_share(once):
    grid = once(run_grid)

    rows = []
    ratios = []
    for bench in BENCHES:
        sb = grid[(bench, "speed")]
        lb = grid[(bench, "load")]
        ratio = lb.mean_time_us / sb.mean_time_us
        ratios.append(ratio)
        rows.append([
            bench,
            sb.mean_time_us / 1e6,
            lb.mean_time_us / 1e6,
            ratio,
            sb.variation_pct,
            lb.variation_pct,
        ])
    print()
    print(report.table(
        ["bench", "SPEED (s)", "LOAD (s)", "LOAD/SPEED",
         "SB var %", "LB var %"],
        rows,
        title="Figure 6: NAS benchmarks sharing 16 cores with make -j 16 "
              "(LOAD/SPEED > 1 means speed balancing wins)",
    ))

    # The win tracks the Section 4 profitability threshold: the finer a
    # benchmark's synchronization relative to the 100 ms balance
    # interval, the less speed balancing can add (and its speculative
    # migrations cost a few percent).  Ordering cg.B (4 ms) < bt.A
    # (10 ms) < is.C (44 ms) < ft.B (73 ms) must be monotone, the
    # coarsest benchmark must win outright, and nothing may collapse.
    by_granularity = ["cg.B", "bt.A", "is.C", "ft.B"]
    ordered = [ratios[BENCHES.index(b)] for b in by_granularity]
    for a, b in zip(ordered, ordered[1:]):
        assert b > a - 0.03, f"ratio not monotone in granularity: {ordered}"
    assert ordered[-1] > 1.0  # ft.B: coarse enough to profit
    for bench, ratio in zip(BENCHES, ratios):
        assert ratio > 0.85, f"SPEED lost badly on {bench}"
    # the isolation claim: SPEED's run-to-run spread stays below LOAD's
    sb_vars = [grid[(b, "speed")].variation_pct for b in BENCHES]
    lb_vars = [grid[(b, "load")].variation_pct for b in BENCHES]
    assert stats.mean(sb_vars) < stats.mean(lb_vars)
