"""Section 6.2's OpenMP workload: KMP_BLOCKTIME interactions.

The paper controls the Intel OpenMP barrier via ``KMP_BLOCKTIME``:
DEF = spin 200 ms then sleep (the default), INF = poll forever.
Claims to reproduce:

* "the best performance for the OpenMP workload is obtained when
  running in polling mode with SPEED ... SPEED achieves a 11% speedup
  across the whole workload when compared to LB_INF";
* "Our current implementation of speed balancing does not have
  mechanisms to handle sleeping processes and SPEED slightly decreases
  the performance when tasks sleep.  Comparing SB_DEF with LB_DEF
  shows an overall performance decrease of 3%";
* class S "behavior at scale is largely determined by barriers":
  barrier-dominated tiny classes show the largest SPEED-vs-LOAD gaps
  with polling barriers (the paper: 45% on Barcelona at 16 cores).

The OpenMP flavor uses Table 2's OMP inter-barrier times (coarser than
UPC's: the Intel runtime aggregates loop barriers).
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.apps.workloads import make_nas_app
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.metrics import stats
from repro.topology import presets

BENCHES = ["bt.A", "ft.B", "is.C"]
CORE_COUNTS = [10, 14]
SEEDS = range(4)
TOTAL_US = 600_000

DEF = WaitPolicy.omp_default()  # spin 200ms, then sleep
INF = WaitPolicy.omp_infinite()  # poll forever


def run_grid():
    grid = {}
    for bench in BENCHES:
        for n_cores in CORE_COUNTS:
            for pname, policy in (("def", DEF), ("inf", INF)):
                for mode in ("speed", "load"):
                    def factory(system, bench=bench, policy=policy):
                        return make_nas_app(
                            system, bench, wait_policy=policy, flavor="omp",
                            total_compute_us=TOTAL_US,
                        )

                    grid[(bench, n_cores, pname, mode)] = repeat_run(
                        presets.tigerton, factory, mode, cores=n_cores,
                        seeds=SEEDS,
                    )
    return grid


def run_class_s():
    """Tiny 'class S': 0.5 ms of compute per 2 ms barrier period."""
    out = {}
    for mode in ("speed", "load"):
        def factory(system):
            return SpmdApp(
                system, "classS", 16, work_us=2_000, iterations=50,
                wait_policy=INF,
            )

        out[mode] = repeat_run(
            presets.barcelona, factory, mode, cores=16, seeds=SEEDS
        )
    return out


def test_omp_blocktime_workload(once):
    grid, class_s = once(lambda: (run_grid(), run_class_s()))

    rows = []
    inf_improvements = []
    def_changes = []
    for bench in BENCHES:
        for n_cores in CORE_COUNTS:
            sb_inf = grid[(bench, n_cores, "inf", "speed")]
            lb_inf = grid[(bench, n_cores, "inf", "load")]
            sb_def = grid[(bench, n_cores, "def", "speed")]
            lb_def = grid[(bench, n_cores, "def", "load")]
            inf_improvements.append(sb_inf.improvement_avg_pct(lb_inf))
            def_changes.append(sb_def.improvement_avg_pct(lb_def))
            rows.append([
                bench, n_cores,
                sb_inf.improvement_avg_pct(lb_inf),
                sb_def.improvement_avg_pct(lb_def),
            ])
    print()
    print(report.table(
        ["bench", "cores", "SB_INF vs LB_INF %", "SB_DEF vs LB_DEF %"],
        rows,
        title="Section 6.2: OpenMP workload, KMP_BLOCKTIME default vs infinite",
    ))
    print(report.kv_block("Overall", {
        "SPEED vs LOAD, polling barriers (paper: +11%)":
            stats.mean(inf_improvements),
        "SPEED vs LOAD, default barriers (paper: -3%)":
            stats.mean(def_changes),
        "class S on Barcelona, polling (paper: +45%)":
            class_s["speed"].improvement_avg_pct(class_s["load"]),
    }))

    # with polling barriers SPEED clearly wins
    assert stats.mean(inf_improvements) > 5.0
    # with blocktime-then-sleep barriers the gap shrinks toward zero
    # (the paper saw a 3% decrease); allow a band around parity
    assert -12.0 < stats.mean(def_changes) < stats.mean(inf_improvements)
    # barrier-dominated class S with polling: SPEED >= LOAD
    assert class_s["speed"].improvement_avg_pct(class_s["load"]) > -5.0
