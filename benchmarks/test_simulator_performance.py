"""Performance of the simulator itself (not a paper artifact).

Every other file in ``benchmarks/`` regenerates a table or figure of
the paper; this one tracks the *cost* of doing so: wall-clock per
simulated second for representative scenario shapes, the event
throughput of the bare engine, and the scaling of the process-pool
experiment fan-out.  Useful for catching performance regressions in
the dispatch path (these run multiple rounds, unlike the single-shot
reproduction benches).  ``repro bench`` tracks the same quantities as
a committed machine-readable trajectory (see docs/performance.md).
"""

import os
import time

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import AppSpec, ep_app, make_nas_app
from repro.harness.experiment import repeat_run, run_app
from repro.sched.task import WaitMode
from repro.sim.engine import Engine
from repro.topology import presets

YIELD = WaitPolicy(mode=WaitMode.YIELD)


def test_perf_engine_event_throughput(benchmark):
    """Dispatch 100k self-scheduling events."""

    def run():
        eng = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                eng.schedule(1, tick)

        eng.schedule(0, tick)
        eng.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_perf_ep_dedicated(benchmark):
    """EP, 16 threads on 12 cores, 1 simulated second, SPEED."""

    def run():
        return run_app(
            presets.tigerton,
            lambda s: ep_app(s, n_threads=16, wait_policy=YIELD,
                             total_compute_us=1_000_000),
            balancer="speed", cores=12, seed=1,
        ).elapsed_us

    assert benchmark(run) > 0


def test_perf_fine_grained_barriers(benchmark):
    """cg.B-style 4ms barriers: the event-heaviest workload shape."""

    def run():
        return run_app(
            presets.tigerton,
            lambda s: make_nas_app(s, "cg.B", wait_policy=YIELD,
                                   total_compute_us=200_000),
            balancer="speed", cores=12, seed=1,
        ).elapsed_us

    assert benchmark(run) > 0


def test_perf_parallel_repeat_run_speedup():
    """The harness fan-out: 8 seeds over 4 workers vs serial.

    The acceptance bar is >= 2x on a 4-core runner; worker processes
    cannot beat serial on fewer cores, so the measurement is gated on
    the hardware (a plain wall-clock A/B, not a pytest-benchmark case).
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("parallel speedup needs >= 4 physical cores")
    spec = AppSpec(bench="cg.B", n_threads=16, wait="yield",
                   total_compute_us=500_000)

    t0 = time.perf_counter()
    serial = repeat_run(presets.tigerton, spec, balancer="speed", cores=12,
                        seeds=range(8), workers=1)
    t1 = time.perf_counter()
    parallel = repeat_run(presets.tigerton, spec, balancer="speed", cores=12,
                          seeds=range(8), workers=4)
    t2 = time.perf_counter()

    assert serial.times_us == parallel.times_us  # same simulations exactly
    speedup = (t1 - t0) / (t2 - t1)
    print(f"\nrepeat_run 8 seeds: serial {t1 - t0:.2f}s, "
          f"workers=4 {t2 - t1:.2f}s ({speedup:.2f}x)")
    assert speedup >= 2.0
