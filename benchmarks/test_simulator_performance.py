"""Performance of the simulator itself (not a paper artifact).

Every other file in ``benchmarks/`` regenerates a table or figure of
the paper; this one tracks the *cost* of doing so: wall-clock per
simulated second for representative scenario shapes, and the event
throughput of the bare engine.  Useful for catching performance
regressions in the dispatch path (these run multiple rounds, unlike
the single-shot reproduction benches).
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app, make_nas_app
from repro.harness.experiment import run_app
from repro.sched.task import WaitMode
from repro.sim.engine import Engine
from repro.topology import presets

YIELD = WaitPolicy(mode=WaitMode.YIELD)


def test_perf_engine_event_throughput(benchmark):
    """Dispatch 100k self-scheduling events."""

    def run():
        eng = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                eng.schedule(1, tick)

        eng.schedule(0, tick)
        eng.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_perf_ep_dedicated(benchmark):
    """EP, 16 threads on 12 cores, 1 simulated second, SPEED."""

    def run():
        return run_app(
            presets.tigerton,
            lambda s: ep_app(s, n_threads=16, wait_policy=YIELD,
                             total_compute_us=1_000_000),
            balancer="speed", cores=12, seed=1,
        ).elapsed_us

    assert benchmark(run) > 0


def test_perf_fine_grained_barriers(benchmark):
    """cg.B-style 4ms barriers: the event-heaviest workload shape."""

    def run():
        return run_app(
            presets.tigerton,
            lambda s: make_nas_app(s, "cg.B", wait_policy=YIELD,
                                   total_compute_us=200_000),
            balancer="speed", cores=12, seed=1,
        ).elapsed_us

    assert benchmark(run) > 0
