"""Table 1: the test systems.

Regenerates the machine descriptions from the topology presets and
verifies every figure the paper's Table 1 lists -- core/socket layout,
cache sizes and sharing, memory per core, NUMA-ness -- plus the derived
scheduling-domain structure the balancers rely on.
"""

from repro.harness import report
from repro.topology import presets
from repro.topology.machine import DomainLevel

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


def build():
    return presets.tigerton(), presets.barcelona()


def test_table1_systems(once):
    tigerton, barcelona = once(build)

    rows = [
        ["Processor", "Intel Xeon E7310", "AMD Opteron 8350"],
        ["Cores", tigerton.n_cores, barcelona.n_cores],
        ["Sockets x cores", "4 x 4", "4 x 4"],
        [
            "L2 cache",
            "4M per 2 cores",
            "512K per core",
        ],
        [
            "L3 cache",
            "none",
            "2M per socket",
        ],
        [
            "Memory/core",
            f"{tigerton.mem_per_core_bytes // GB}GB",
            f"{barcelona.mem_per_core_bytes // GB}GB",
        ],
        ["NUMA", tigerton.numa, barcelona.numa],
    ]
    print()
    print(report.table(["Property", "Tigerton", "Barcelona"], rows,
                       title="Table 1: test systems"))

    # ---- Tigerton ------------------------------------------------------
    assert tigerton.n_cores == 16 and not tigerton.numa
    assert {c.socket for c in tigerton.cores} == {0, 1, 2, 3}
    l2 = tigerton.shared_cache(0, 1)
    assert l2 is not None and l2.size_bytes == 4 * MB and l2.level == 2
    assert tigerton.shared_cache(0, 2) is None  # L2 is per core *pair*
    assert tigerton.largest_cache_of(0).level == 2  # no L3
    assert tigerton.mem_per_core_bytes == 2 * GB

    # ---- Barcelona -----------------------------------------------------
    assert barcelona.n_cores == 16 and barcelona.numa
    assert all(c.numa_node == c.socket for c in barcelona.cores)
    l3 = barcelona.shared_cache(0, 3)
    assert l3 is not None and l3.size_bytes == 2 * MB and l3.level == 3
    private_l2 = [
        c for c in barcelona.caches if c.level == 2 and len(c.core_ids) == 1
    ]
    assert len(private_l2) == 16
    assert all(c.size_bytes == 512 * KB for c in private_l2)
    assert barcelona.mem_per_core_bytes == 4 * GB

    # ---- derived domain structure ---------------------------------------
    # Tigerton: cache pair -> socket -> machine (UMA: top is not NUMA)
    assert [d.level for d in tigerton.domains_by_core[0]] == [
        DomainLevel.CACHE, DomainLevel.SOCKET, DomainLevel.MACHINE,
    ]
    # Barcelona: socket-wide L3 collapses the socket level; top is NUMA
    assert [d.level for d in barcelona.domains_by_core[0]] == [
        DomainLevel.CACHE, DomainLevel.NUMA,
    ]
    print()
    print(tigerton.describe())
    print()
    print(barcelona.describe())
