"""Table 2: selected NAS parallel benchmarks.

"RSS is the average resident set size per core as measured by Linux
during a run"; the table reports each benchmark's 16-core speedup on
both machines and its inter-barrier times for the UPC and OpenMP
implementations.

We regenerate the measured columns by running each catalog benchmark
with 16 threads on all 16 cores of both machines (statically balanced,
sleeping waiters -- the benign configuration the paper's numbers
represent) and compare against the paper's reported speedups.  The
match is calibrated for the machine-level trend (memory-bound codes
scale far below 16, and scale better on Barcelona's per-node memory
controllers than on Tigerton's shared front-side buses); per-benchmark
residuals are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import NAS_CATALOG, make_nas_app
from repro.harness import report
from repro.harness.experiment import run_app
from repro.sched.task import WaitMode
from repro.topology import presets

SLEEP = WaitPolicy(mode=WaitMode.SLEEP)
BENCHES = ["bt.A", "cg.B", "ft.B", "is.C", "sp.A", "ep.C"]
TOTAL_US = 400_000


def measure():
    out = {}
    for bench in BENCHES:
        for mname, machine in (("tigerton", presets.tigerton),
                               ("barcelona", presets.barcelona)):
            def factory(system, bench=bench):
                return make_nas_app(system, bench, wait_policy=SLEEP,
                                    total_compute_us=TOTAL_US)

            res = run_app(machine, factory, balancer="pinned", cores=16, seed=0)
            out[(bench, mname)] = res.speedup
    return out


def test_table2_nas(once):
    measured = once(measure)

    rows = []
    for bench in BENCHES:
        entry = NAS_CATALOG[bench]
        rows.append([
            bench,
            entry.rss_per_core_gb,
            entry.paper_speedup16_tigerton,
            measured[(bench, "tigerton")],
            entry.paper_speedup16_barcelona,
            measured[(bench, "barcelona")],
            (entry.inter_barrier_upc_us or 0) / 1000,
            (entry.inter_barrier_omp_us or 0) / 1000,
        ])
    print()
    print(report.table(
        ["bench", "RSS GB/core", "T paper", "T ours", "B paper", "B ours",
         "barrier UPC ms", "barrier OMP ms"],
        rows,
        title="Table 2: NAS benchmarks, 16-core speedups "
              "(paper vs regenerated) and inter-barrier times",
    ))

    for bench in BENCHES:
        entry = NAS_CATALOG[bench]
        t_ours = measured[(bench, "tigerton")]
        b_ours = measured[(bench, "barcelona")]
        # per-benchmark: within 35% of the paper's absolute number
        assert t_ours == pytest.approx(entry.paper_speedup16_tigerton, rel=0.35), bench
        assert b_ours == pytest.approx(entry.paper_speedup16_barcelona, rel=0.35), bench
        # machine trend: every memory-bound code scales better on
        # Barcelona; EP is machine-agnostic
        if entry.mem_intensity > 0:
            assert b_ours > t_ours, bench
        else:
            assert b_ours == pytest.approx(t_ours, rel=0.05)

    # cross-benchmark ordering on Tigerton: EP >> sp.A > the
    # bandwidth-bound group, as in the paper's column
    assert measured[("ep.C", "tigerton")] > 14
    assert measured[("sp.A", "tigerton")] > measured[("ft.B", "tigerton")]
    assert measured[("sp.A", "tigerton")] > measured[("is.C", "tigerton")]
