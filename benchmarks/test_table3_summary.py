"""Table 3: summary of performance improvements, UPC workload.

The paper's Table 3 aggregates the UPC (yield-barrier) workload over
all benchmarks and core counts:

===========  =========================  ==========================
metric       paper                      meaning
===========  =========================  ==========================
vs PINNED    +8% (class A) .. +24% (C)  SPEED over static pinning
vs LOAD avg  +15% .. +46%               SPEED over LOAD, mean of 10
vs LOAD wc   +22% .. +90%               SPEED over LOAD, worst runs
variation    SPEED 1-3%, LOAD 20-67%    max/min run-time spread
===========  =========================  ==========================

We reproduce the aggregation with the NAS catalog over non-divisor
core counts, asserting the headline ordering: SPEED beats PINNED and
LOAD on average, beats LOAD's worst case by more, and has an order of
magnitude less run-to-run variation than LOAD.
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import make_nas_app
from repro.harness import report
from repro.harness.experiment import repeat_run
from repro.metrics import stats
from repro.sched.task import WaitMode
from repro.topology import presets

BENCHES = ["ep.C", "bt.A", "cg.B", "ft.B", "is.C"]
#: coarse-grained members (inter-barrier time at or above the balance
#: interval): where rotation can beat even perfect static pinning
COARSE = ["ep.C", "ft.B"]
CORE_COUNTS = [6, 10, 12, 14]
SEEDS = range(8)
TOTAL_US = 600_000
YIELD = WaitPolicy(mode=WaitMode.YIELD)


def run_grid():
    grid = {}
    for bench in BENCHES:
        for n_cores in CORE_COUNTS:
            for mode in ("speed", "load", "pinned"):
                def factory(system, bench=bench):
                    return make_nas_app(system, bench, wait_policy=YIELD,
                                        total_compute_us=TOTAL_US)

                grid[(bench, n_cores, mode)] = repeat_run(
                    presets.tigerton, factory, mode, cores=n_cores, seeds=SEEDS
                )
    return grid


def test_table3_summary(once):
    grid = once(run_grid)

    vs_pinned, vs_load_avg, vs_load_worst = [], [], []
    vs_pinned_coarse = []
    speed_var, load_var = [], []
    for bench in BENCHES:
        for n_cores in CORE_COUNTS:
            sb = grid[(bench, n_cores, "speed")]
            lb = grid[(bench, n_cores, "load")]
            pin = grid[(bench, n_cores, "pinned")]
            vs_pinned.append(sb.improvement_avg_pct(pin))
            if bench in COARSE:
                vs_pinned_coarse.append(sb.improvement_avg_pct(pin))
            vs_load_avg.append(sb.improvement_avg_pct(lb))
            vs_load_worst.append(sb.improvement_worst_pct(lb))
            speed_var.append(sb.variation_pct)
            load_var.append(lb.variation_pct)

    summary = {
        "SPEED vs PINNED avg %": stats.mean(vs_pinned),
        "SPEED vs PINNED avg % (coarse-grained)": stats.mean(vs_pinned_coarse),
        "SPEED vs PINNED max %": max(vs_pinned),
        "SPEED vs LOAD avg %": stats.mean(vs_load_avg),
        "SPEED vs LOAD max %": max(vs_load_avg),
        "SPEED vs LOAD worst-case avg %": stats.mean(vs_load_worst),
        "SPEED vs LOAD worst-case max %": max(vs_load_worst),
        "SPEED variation mean %": stats.mean(speed_var),
        "LOAD variation mean %": stats.mean(load_var),
        "LOAD variation max %": max(load_var),
    }
    print()
    print(report.kv_block(
        "Table 3: UPC workload summary "
        f"({len(BENCHES)} benchmarks x {len(CORE_COUNTS)} core counts x "
        f"{len(list(SEEDS))} seeds)",
        summary,
    ))
    print()
    print("Paper: SPEED improves on PINNED by 8-24%, on LOAD by 15-46% "
          "(avg) and 22-90% (worst case); variation SPEED 1-3%, LOAD "
          "20-67%.")

    # Headline orderings.  The improvement over PINNED tracks
    # synchronization granularity (the paper's 8% for class A up to
    # 24% for class C: larger classes are coarser): fine-grained codes
    # are phase-gated at the same ceil(N/M) shape pinning achieves, so
    # the whole-workload average is modest while the coarse subset
    # shows the paper's headline gains.
    assert stats.mean(vs_pinned) > 2.0
    assert stats.mean(vs_pinned_coarse) > 8.0
    assert stats.mean(vs_load_avg) > 8.0
    assert max(vs_load_avg) > 30.0
    assert stats.mean(vs_load_worst) >= stats.mean(vs_load_avg) - 2.0
    assert max(vs_load_worst) > 35.0
    # stability: SPEED variation single digits; LOAD clearly above it
    # on average and with an erratic tail (its max is the paper's
    # "run times can vary by a factor of three" story)
    assert stats.mean(speed_var) < 8.0
    assert stats.mean(load_var) > 1.4 * stats.mean(speed_var)
    assert max(load_var) > 5 * stats.mean(speed_var)
