#!/usr/bin/env python3
"""The Section 4 analytical model, validated against the simulator.

Figure 1 of the paper plots the minimum inter-barrier compute time S
(in units of the balance interval B) above which speed balancing beats
queue-length balancing, derived from Lemma 1:

    (T+1) * S  >  2 * ceil(SQ/FQ) * B

This example prints the model for a range of configurations, checks
Lemma 1's bound against a constructive simulation of the balancing
process, and then *validates the profitability threshold empirically*:
for 3 threads on 2 cores it runs the modified EP benchmark on the
simulator with barrier periods on both sides of the threshold and
shows speed balancing winning above it and matching LOAD below it.

Run:  python examples/analytical_model.py
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.core import analytical as an
from repro.harness import report, run_app
from repro.sched.task import WaitMode
from repro.topology import presets


def model_table() -> None:
    rows = []
    for n, m in [(3, 2), (16, 12), (16, 15), (17, 16), (19, 10), (33, 16)]:
        shape = an.queue_shape(n, m)
        rows.append([
            f"{n} on {m}",
            shape.t,
            shape.fq,
            shape.sq,
            an.lemma1_steps_bound(n, m),
            an.simulate_balancing_steps(n, m),
            an.min_profitable_s(n, m),
            an.potential_speedup(n, m),
        ])
    print(report.table(
        ["config", "T", "FQ", "SQ", "Lemma 1 bound", "steps (simulated)",
         "min S (B=1)", "potential speedup"],
        rows,
        title="Section 4 model: balancing steps and profitability",
    ))
    print()


def empirical_threshold() -> None:
    """3 threads on 2 cores: S_min = B.  Sweep S across the threshold."""
    b_us = 100_000  # the default balance interval
    rows = []
    for s_us in (5_000, 50_000, 200_000, 500_000):
        def factory(system, s_us=s_us):
            return ep_app(
                system, n_threads=3,
                wait_policy=WaitPolicy(mode=WaitMode.YIELD),
                total_compute_us=1_000_000,
                barrier_period_us=s_us,
            )

        speed = run_app(presets.tigerton, factory, "speed", cores=2, seed=0)
        load = run_app(presets.tigerton, factory, "load", cores=2, seed=0)
        rows.append([
            s_us / b_us,
            speed.elapsed_us / 1e6,
            load.elapsed_us / 1e6,
            load.elapsed_us / speed.elapsed_us,
        ])
    print(report.table(
        ["S / B", "SPEED time (s)", "LOAD time (s)", "LOAD/SPEED"],
        rows,
        title="Empirical check of the profitability threshold "
              "(3 threads, 2 cores, threshold at S/B = 1)",
    ))
    print()
    print("Below the threshold (S/B << 1) the two balancers coincide, as")
    print("the model predicts; above it, speed balancing approaches the")
    print("4/3 potential speedup of the three-on-two scenario.")


if __name__ == "__main__":
    model_table()
    empirical_threshold()
