#!/usr/bin/env python3
"""Asymmetric cores (Turbo-Boost-style) and the speed metric.

Section 3 of the paper motivates speed balancing with systems whose
cores "might run at different clock speeds" (Intel Turbo Boost, or
OS-reserved cores).  This example oversubscribes an 8-core machine
whose clocks span 0.85x..1.3x with 12 SPMD threads and shows that:

* static pinning condemns whichever threads land on the slow cores --
  the barrier makes the whole application wait for them;
* Linux load balancing sees equal queue *lengths* and does nothing;
* speed balancing, with the paper's clock-weighting extension, rotates
  threads so everyone gets a fair share of the fast silicon.

It also prints the per-thread progress spread, the quantity SPMD
performance actually depends on.

Run:  python examples/asymmetric_turbo.py
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.harness import report, run_app
from repro.sched.task import WaitMode
from repro.topology import presets

CLOCKS = [1.3, 1.3, 0.85, 0.85, 1.0, 1.0, 1.0, 1.0]
N_THREADS = 12
PER_THREAD_US = 2_000_000


def factory(system):
    return ep_app(
        system,
        n_threads=N_THREADS,
        wait_policy=WaitPolicy(mode=WaitMode.YIELD),
        total_compute_us=PER_THREAD_US,
    )


def main() -> None:
    capacity = sum(CLOCKS)
    ideal_s = N_THREADS * PER_THREAD_US / capacity / 1e6
    rows = []
    for mode in ("speed", "load", "pinned"):
        res = run_app(presets.asymmetric(CLOCKS), factory, balancer=mode, seed=1)
        rows.append([
            mode.upper(),
            res.elapsed_us / 1e6,
            res.finish_spread,
            res.migrations,
        ])
    print(report.table(
        ["balancer", "time (s)", "finish spread", "migrations"],
        rows,
        title=(
            f"EP, {N_THREADS} threads on 8 cores with clocks {CLOCKS}\n"
            f"(perfect use of the machine's capacity would take {ideal_s:.2f} s)"
        ),
    ))
    print()
    print("The speed metric (executed time / wall time, weighted by the")
    print("relative core clock) captures asymmetry with no special cases:")
    print("a dedicated 0.85x core simply reads as slower than average and")
    print("sheds work to the 1.3x cores.")


if __name__ == "__main__":
    main()
