#!/usr/bin/env python3
"""How synchronization waiting interacts with each balancer.

The paper's Section 3/6.2 insight: the *implementation* of barrier
waiting decides what the OS load balancer can see.

* ``sched_yield`` waiters (default UPC/MPI) stay on the run queue --
  queue-length balancing counts them as load and goes blind;
* sleeping waiters (Intel OpenMP after KMP_BLOCKTIME, or usleep) leave
  the queue -- idle cores pull real work;
* pure polling burns the core outright.

Speed balancing makes the choice irrelevant: "identical levels of
performance can be achieved by calling only sched_yield, irrespective
of the instantaneous system load" -- which also frees runtime authors
from tuning KMP_BLOCKTIME-style knobs per deployment.

Run:  python examples/barrier_waiting.py
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.harness import report, run_app
from repro.topology import presets

POLICIES = {
    "yield (UPC/MPI default)": WaitPolicy.upc_default(),
    "sleep (modified UPC)": WaitPolicy.upc_sleep(),
    "spin (KMP_BLOCKTIME=inf)": WaitPolicy.omp_infinite(),
    "spin 200ms then sleep (OpenMP)": WaitPolicy.omp_default(),
}


def main() -> None:
    rows = []
    for pname, policy in POLICIES.items():
        for mode in ("load", "speed"):
            def factory(system, policy=policy):
                return ep_app(system, n_threads=16, wait_policy=policy,
                              total_compute_us=2_000_000)

            res = run_app(presets.tigerton, factory, balancer=mode,
                          cores=12, seed=1)
            rows.append([pname, mode.upper(), res.speedup, res.spin_fraction])
    print(report.table(
        ["barrier wait", "balancer", "speedup", "wait-burn fraction"],
        rows,
        title="EP, 16 threads on 12 cores: wait policy x balancer (ideal 12)",
    ))
    print()
    print("Under LOAD the wait policy swings performance by ~30%; under")
    print("SPEED all four are equivalent -- the paper's argument that")
    print("speed balancing removes synchronization-implementation")
    print("restrictions in oversubscribed environments.")


if __name__ == "__main__":
    main()
