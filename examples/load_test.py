#!/usr/bin/env python3
"""Closed-loop multi-tenant load driver for the `repro serve` daemon.

Boots a daemon on an ephemeral port (or targets a running one via
``--url``), then runs one closed-loop client thread per tenant: each
submits a batch of distinct simulation specs, waits for every job to
finish, and immediately submits the next batch until the wall-clock
budget runs out.  Tenants get different fair-share weights and batch
sizes, so the run exercises exactly the properties the serving layer
claims:

* speed-aware weighted fair queuing (heavy tenants get proportionally
  more worker time, light tenants are never starved);
* token-bucket backpressure (the greedy tenant sees 429s and backs
  off by the server-suggested ``Retry-After``);
* digest dedup and store caching across repeated submissions.

At the end it prints per-tenant closed-loop stats next to the
daemon's own ``/v1/metrics`` view, then drains gracefully.

Run:  python examples/load_test.py [--duration 10] [--workers 2]
      python examples/load_test.py --url http://127.0.0.1:8421
"""

import argparse
import threading
import time

from repro.apps.workloads import AppSpec
from repro.harness import report
from repro.harness.parallel import RunSpec
from repro.serve import (
    BackgroundServer,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantConfig,
)
from repro.serve import clock as _clock

#: (tenant, weight, submit rate jobs/s, batch size) -- "heavy" is
#: entitled to 4x the worker time of "light" and submits bigger
#: batches; "greedy" floods but has a tight token bucket, so it is the
#: one that sees 429s and backs off
TENANTS = [
    ("heavy", 4.0, 200.0, 6),
    ("light", 1.0, 200.0, 2),
    ("greedy", 1.0, 12.0, 10),
]


def _spec(seed: int) -> RunSpec:
    app = AppSpec(bench="ep.C", n_threads=4, total_compute_us=20_000)
    return RunSpec.make("tigerton", app, balancer="speed", cores=2, seed=seed)


class TenantLoop(threading.Thread):
    """One tenant's closed loop: submit a batch, wait for it, repeat."""

    def __init__(self, url, name, batch, seed_base, deadline):
        super().__init__(name=f"load-{name}", daemon=True)
        self.client = ServeClient(url)
        self.tenant = name
        self.batch = batch
        self.seed_base = seed_base
        self.deadline = deadline
        self.submitted = 0
        self.completed = 0
        self.rejections = 0
        self.batches = 0
        self.errors = []

    def run(self):
        seed = self.seed_base
        try:
            while _clock.monotonic() < self.deadline:
                specs = [_spec(seed + i) for i in range(self.batch)]
                seed += self.batch
                try:
                    resp = self.client.submit(specs, tenant=self.tenant)
                except ServeError as exc:
                    if exc.status != 429:
                        raise
                    self.rejections += 1
                    time.sleep(exc.retry_after_s or 1.0)
                    continue
                self.submitted += len(specs)
                for job in resp["jobs"]:
                    view = self.client.wait(
                        job["digest"], poll_s=0.05, timeout_s=120
                    )
                    if view["state"] in ("done", "cached"):
                        self.completed += 1
                self.batches += 1
        except Exception as exc:  # pragma: no cover - reported in main
            self.errors.append(exc)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="target a running daemon instead of booting one")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="closed-loop driving time in seconds")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the embedded daemon")
    parser.add_argument("--store", default=".repro-loadtest",
                        help="store root for the embedded daemon")
    args = parser.parse_args()

    background = None
    url = args.url
    if url is None:
        background = BackgroundServer(ServeConfig(
            store_root=args.store, port=0, workers=args.workers,
            tenants=tuple(
                TenantConfig(name=name, weight=weight, rate=rate,
                             burst=2 * rate, queue_limit=256)
                for name, weight, rate, _batch in TENANTS
            ),
        )).start()
        url = background.base_url
        print(f"booted daemon at {url} ({args.workers} workers)")

    deadline = _clock.monotonic() + args.duration
    loops = [
        TenantLoop(url, name, batch, seed_base=1000 * i, deadline=deadline)
        for i, (name, _weight, _rate, batch) in enumerate(TENANTS)
    ]
    print(f"driving {len(loops)} tenants for {args.duration:g}s ...")
    for loop in loops:
        loop.start()
    for loop in loops:
        loop.join()

    snapshot = ServeClient(url).metrics()
    rows = []
    for loop in loops:
        stats = snapshot["tenants"].get(loop.tenant, {})
        rows.append([
            loop.tenant,
            loop.batches,
            loop.submitted,
            loop.completed,
            loop.rejections,
            stats.get("weight", "-"),
            stats.get("cached", "-"),
            f"{stats.get('service_rate_busy_s_per_s', 0.0):.3f}",
        ])
    print(report.table(
        ["tenant", "batches", "submitted", "completed", "429 batches",
         "weight", "cached", "busy s/s"],
        rows,
        title="closed-loop load test",
    ))
    latency = snapshot["latency"]
    print(
        f"daemon: {snapshot['completed']} completed, "
        f"{snapshot['rejected']} jobs rejected, "
        f"cache-hit ratio {snapshot['cache_hit_ratio']:.2f}, "
        f"p50 {latency['p50_s']:.3f}s p95 {latency['p95_s']:.3f}s, "
        f"worker utilization {snapshot['workers']['utilization']:.2f}"
    )

    failed = [(loop.tenant, loop.errors) for loop in loops if loop.errors]
    if background is not None:
        background.drain()
        print("daemon drained")
    if failed:
        for tenant, errors in failed:
            print(f"tenant {tenant} failed: {errors[0]!r}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
