#!/usr/bin/env python3
"""NUMA: speed balancing on the Barcelona with blocked node migrations.

Section 6.4 scenario.  On the NUMA AMD Barcelona (4 sockets = 4 memory
nodes), migrating a thread off its node strands its memory: every
access pays the remote penalty *forever*, unlike a one-off cache
refill.  The paper's speedbalancer therefore blocks NUMA-level
migrations and relies on a NUMA-aware initial distribution.

This example runs ft.B (the most memory-bound Table 2 code) with
16 threads on 12 cores (3 nodes) and contrasts:

* SPEED with NUMA blocking (the artifact's default),
* SPEED with NUMA migrations allowed (what naive balancing would do),
* LOAD, whose rare NUMA-level balancing moves threads across nodes and
  leaves them computing against remote memory.

Run:  python examples/numa_barcelona.py
"""


from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import make_nas_app
from repro.core.speed_balancer import SpeedBalancerConfig
from repro.harness import report, run_app
from repro.sched.task import WaitMode
from repro.topology import presets
from repro.topology.machine import DomainLevel

SLEEP = WaitPolicy(mode=WaitMode.SLEEP)
YIELD = WaitPolicy(mode=WaitMode.YIELD)


def factory_with(policy):
    def factory(system):
        return make_nas_app(system, "ft.B", n_threads=16, wait_policy=policy,
                            total_compute_us=800_000)

    return factory


def remote_fraction(system, app_id="ft.B"):
    """Fraction of app threads that ended up off their memory node."""
    tasks = system.tasks_of_app(app_id)
    remote = sum(
        1
        for t in tasks
        if t.home_node is not None
        and t.last_core is not None
        and system.machine.numa_node_of(t.last_core) != t.home_node
    )
    return remote / len(tasks)


def main() -> None:
    numa_open = SpeedBalancerConfig(
        level_enabled=dict.fromkeys(DomainLevel, True)
    )
    configs = [
        ("SPEED (NUMA blocked)", "speed", None, YIELD, "yield"),
        ("SPEED (NUMA open)", "speed", numa_open, YIELD, "yield"),
        ("LOAD", "load", None, YIELD, "yield"),
        ("SPEED (NUMA blocked)", "speed", None, SLEEP, "sleep"),
        ("LOAD", "load", None, SLEEP, "sleep"),
    ]
    rows = []
    for label, mode, cfg, policy, wname in configs:
        res, system = run_app(
            presets.barcelona, factory_with(policy), balancer=mode,
            cores=12, seed=3, speed_config=cfg, return_system=True,
        )
        rows.append([
            label,
            wname,
            res.elapsed_us / 1e6,
            f"{remote_fraction(system):.0%}",
            res.migrations,
        ])
    print(report.table(
        ["configuration", "barrier", "ft.B time (s)", "off-node", "migrations"],
        rows,
        title="ft.B, 16 threads on 12 Barcelona cores (3 NUMA nodes)",
    ))
    print()
    print("Blocking NUMA migrations keeps every thread's memory local; the")
    print("NUMA-aware initial round-robin makes that affordable by spreading")
    print("the thread surplus across nodes up front.  With *sleeping*")
    print("barriers LOAD is competitive (the paper itself measured SPEED ~3%")
    print("behind LOAD in that case); with the default yield barriers LOAD")
    print("cannot see the imbalance and SPEED wins outright.")


if __name__ == "__main__":
    main()
