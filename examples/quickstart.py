#!/usr/bin/env python3
"""Quickstart: speed balancing vs Linux load balancing in 40 lines.

Reproduces the paper's motivating scenario (Section 3): an SPMD
application whose thread count does not divide the core count.  We run
the NAS EP benchmark compiled with 16 threads on 12 of a Tigerton's 16
cores -- exactly what ``taskset -c 0-11 speedbalancer ./ep.C.16``
does on the real system -- and compare all balancers.

Run:  python examples/quickstart.py
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import ep_app
from repro.harness import report, run_app
from repro.sched.task import WaitMode
from repro.topology import presets

N_THREADS = 16
N_CORES = 12
PER_THREAD_US = 2_000_000  # 2 simulated seconds of compute per thread


def ep_factory(system):
    return ep_app(
        system,
        n_threads=N_THREADS,
        wait_policy=WaitPolicy(mode=WaitMode.YIELD),  # UPC-style barrier
        total_compute_us=PER_THREAD_US,
    )


def main() -> None:
    rows = []
    for mode in ("speed", "load", "dwrr", "ule", "pinned"):
        res = run_app(presets.tigerton, ep_factory, balancer=mode,
                      cores=N_CORES, seed=1)
        rows.append([
            mode.upper(),
            res.speedup,
            res.elapsed_us / 1e6,
            res.migrations,
            res.finish_spread,
        ])
    print(report.table(
        ["balancer", "speedup", "time (s)", "migrations", "finish spread"],
        rows,
        title=f"EP, {N_THREADS} threads on {N_CORES} cores (ideal speedup: {N_CORES})",
    ))
    print()
    print("SPEED approaches the ideal because every thread gets an equal")
    print("share of the fast cores; LOAD is stuck at the slowest thread")
    print("(the 2-on-1-core victims) because queue lengths 2 and 1 look")
    print('"balanced" to it.')


if __name__ == "__main__":
    main()
