#!/usr/bin/env python3
"""Non-dedicated environments: parallel app + cpu-hog + make -j.

The paper's Section 6.3 scenario: a parallel application does not own
the machine.  Two co-runner mixes are shown:

1. EP sharing the 16-core Tigerton with a compute-bound "cpu-hog"
   pinned to core 0 (Figure 5): with static one-thread-per-core
   placement the whole application runs at the speed of the thread that
   shares core 0 -- 50%; speed balancing rotates every thread through
   the contended core so each loses only ~1/32.
2. cg.B sharing with a ``make -j 16`` build (Figure 6).

Run:  python examples/shared_machine.py
"""

from repro.apps.barriers import WaitPolicy
from repro.apps.multiprogram import CpuHog, MakeWorkload
from repro.apps.workloads import ep_app, make_nas_app
from repro.harness import report, run_app
from repro.sched.task import WaitMode
from repro.topology import presets

SLEEP = WaitPolicy(mode=WaitMode.SLEEP)


def hog_scenario() -> None:
    def factory(system):
        return ep_app(system, n_threads=16, wait_policy=SLEEP,
                      total_compute_us=2_000_000)

    rows = []
    for mode in ("speed", "load", "pinned"):
        res = run_app(
            presets.tigerton, factory, balancer=mode, cores=16, seed=2,
            corunner_factories=[lambda s: CpuHog(s, core=0)],
        )
        rows.append([mode.upper(), res.speedup, res.finish_spread])
    print(report.table(
        ["balancer", "speedup", "finish spread"],
        rows,
        title="EP (16 threads, 16 cores) + cpu-hog pinned to core 0\n"
              "(a fair split of the remaining capacity would be 15.5)",
    ))
    print()


def make_scenario() -> None:
    def factory(system):
        return make_nas_app(system, "cg.B", wait_policy=SLEEP,
                            total_compute_us=400_000)

    rows = []
    for mode in ("speed", "load"):
        res = run_app(
            presets.tigerton, factory, balancer=mode, cores=16, seed=2,
            corunner_factories=[lambda s: MakeWorkload(s, j=16, jobs=48)],
        )
        rows.append([mode.upper(), res.elapsed_us / 1e6, res.migrations])
    print(report.table(
        ["balancer", "cg.B time (s)", "app migrations"],
        rows,
        title="cg.B (16 threads) sharing all 16 cores with make -j 16",
    ))
    print()
    print("Speed balancing isolates the parallel application from the")
    print("build's churn: cg.B's threads keep equal progress even as make")
    print("jobs come and go (the paper's 'performance isolation' claim).")


if __name__ == "__main__":
    hog_scenario()
    make_scenario()
