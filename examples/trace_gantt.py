#!/usr/bin/env python3
"""Watch the rotation: ASCII Gantt charts of thread placement.

Runs the motivating 3-threads-on-2-cores scenario under LOAD and under
SPEED with execution tracing enabled, and renders who ran where.
Under LOAD one thread pair is locked together for the whole run (the
"balanced" 2-vs-1 queue Linux will not touch); under SPEED the pair
membership visibly rotates every couple of balance intervals, which is
the entire idea of the paper in one picture.

Capitals = compute, lowercase = synchronization waiting, '.' = idle.

Run:  python examples/trace_gantt.py
"""

from repro.apps.workloads import ep_app
from repro.balance.linux import LinuxLoadBalancer
from repro.core.speed_balancer import SpeedBalancer
from repro.metrics.fairness import rotation_fairness
from repro.metrics.trace import ascii_gantt
from repro.system import System
from repro.topology import presets

TOTAL_US = 1_200_000


def run(mode: str):
    system = System(presets.uniform(2), seed=4, trace=True)
    system.set_balancer(LinuxLoadBalancer())
    app = ep_app(system, n_threads=3, total_compute_us=TOTAL_US)
    if mode == "speed":
        system.add_user_balancer(SpeedBalancer(app, cores=[0, 1]))
    app.spawn(cores=[0, 1])
    system.run_until_done([app])
    return system, app


def main() -> None:
    for mode in ("load", "speed"):
        system, app = run(mode)
        fairness = rotation_fairness(
            system.trace, [t.tid for t in app.tasks],
            100_000, TOTAL_US,
        )
        print(f"--- {mode.upper()}  (elapsed {app.elapsed_us/1e6:.2f}s, "
              f"Jain fairness of CPU shares {fairness:.3f}) ---")
        print(ascii_gantt(system.trace, 2, width=76))
        print()
    print("Under LOAD, two threads share core 0 for the entire run at half")
    print("speed while the third owns core 1 (and then busy-waits at the")
    print("final barrier, lowercase).  Under SPEED the letters visibly")
    print("rotate between the cores every ~200 ms, every thread progresses")
    print("at ~2/3 speed, and the run ends earlier.  The Jain index")
    print("quantifies the difference.")


if __name__ == "__main__":
    main()
