"""Legacy shim so `pip install -e .` works with older setuptools.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
