"""repro: a reproduction of *Load Balancing on Speed* (PPoPP 2010).

Hofmeyr, Iancu and Blagojevic propose **speed balancing**: a
user-level load balancer for SPMD parallel applications that equalizes
the *speed* (executed time / wall time) of an application's threads by
pulling threads from slow cores to fast ones, instead of equalizing
run-queue lengths the way Linux, FreeBSD and Windows do.

This package contains a from-scratch implementation of the algorithm
and of everything it is evaluated against, on top of a deterministic
discrete-event multicore simulator (the substitution for the paper's
real 16-core machines; see DESIGN.md):

* :mod:`repro.sim` -- the event engine and seeded rng;
* :mod:`repro.topology` -- machines (Tigerton, Barcelona, Nehalem,
  asymmetric), caches, scheduling domains;
* :mod:`repro.sched` -- tasks and the per-core CFS scheduler;
* :mod:`repro.balance` -- the baselines: Linux load balancing,
  FreeBSD ULE, DWRR, static pinning;
* :mod:`repro.core` -- **the contribution**: the speed metric, the
  speed balancer and the Section 4 analytical model;
* :mod:`repro.apps` -- SPMD applications, barrier wait policies
  (spin / yield / sleep / KMP_BLOCKTIME), the NAS-like catalog,
  cpu-hog and make co-runners;
* :mod:`repro.mem` -- migration pricing and NUMA residence;
* :mod:`repro.metrics`, :mod:`repro.harness` -- results, repeats,
  scenarios and text reports for every figure and table of the paper.

Quickstart
----------
>>> from repro.harness import run_app
>>> from repro.apps.workloads import ep_app
>>> from repro.topology import presets
>>> res = run_app(
...     presets.tigerton,
...     lambda system: ep_app(system, n_threads=16, total_compute_us=100_000),
...     balancer="speed",
...     cores=12,
... )
>>> 0 < res.speedup <= 12
True
"""

from repro.system import System
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.harness.experiment import repeat_run, run_app

__version__ = "1.0.0"

__all__ = [
    "SpeedBalancer",
    "SpeedBalancerConfig",
    "System",
    "__version__",
    "repeat_run",
    "run_app",
]
