"""Correctness tooling for the simulator: static lint + runtime invariants.

The whole value of this reproduction rests on two properties that
ordinary tests check only indirectly:

* **bit-reproducibility** -- the integer-microsecond engine plus the
  stream-separated :class:`~repro.sim.rng.SimRng` make every run a pure
  function of its seed.  One stray iteration over an unordered ``set``
  in a scheduling decision path, one ``time.time()`` call, or one float
  creeping into an engine timestamp silently breaks that.
* **the paper's invariants** -- ``speed = t_exec / t_real`` is only
  meaningful if ``t_exec <= t_real`` and busy time is conserved; the
  speed balancer's two-interval migration block and NUMA-domain fence
  are only reproductions of the artifact if they actually hold.

This package provides one layer per property, plus a third that audits
the artifacts both are judged from:

* :mod:`repro.analysis.lint` -- an AST-based determinism linter
  (``python -m repro.analysis lint src/repro``) with rules SIM001..
  SIM006, per-line suppression comments and a per-rule allowlist file;
* :mod:`repro.analysis.flow` -- a whole-program flow analyzer
  (``python -m repro.analysis flow``) that builds a name-resolved call
  graph and runs an interprocedural taint fixpoint, closing the SIM
  rules' cross-function blind spots (rules FLOW001..FLOW005, with a
  committed strict-ratchet findings baseline);
* :mod:`repro.analysis.invariants` -- an opt-in runtime
  :class:`~repro.analysis.invariants.InvariantChecker` hooked into
  :class:`~repro.sim.engine.Engine` and :class:`~repro.system.System`
  (``repro check --invariants``), enabled for the whole test suite by
  a conftest fixture;
* :mod:`repro.analysis.sanitizer` -- a post-hoc schedule sanitizer
  (``repro sanitize``) that recomputes races, double charges and
  conservation from the *recorded trace* (rules SAN001..SAN007) and
  replays the recorded migration history against the speed balancer's
  policy, with :mod:`repro.analysis.differential` re-running scenarios
  under perturbations (hash seed, observers, worker processes) and
  comparing canonical digests (SAN008).

See ``docs/analysis.md`` for the rule catalogues.
"""

from __future__ import annotations

from repro.analysis.invariants import (
    InvariantConfig,
    InvariantChecker,
    InvariantViolation,
    install_invariant_checker,
)
from repro.analysis.flow import FLOW_RULES, FlowFinding, FlowRule, flow_paths
from repro.analysis.lint import Finding, LintRule, lint_paths, lint_source
from repro.analysis.sanitizer import (
    SAN_RULES,
    PullPolicy,
    SanFinding,
    analyze_trace,
    run_digest,
    sanitize_system,
    trace_digest,
)

__all__ = [
    "Finding",
    "LintRule",
    "lint_paths",
    "lint_source",
    "FLOW_RULES",
    "FlowFinding",
    "FlowRule",
    "flow_paths",
    "InvariantConfig",
    "InvariantChecker",
    "InvariantViolation",
    "install_invariant_checker",
    "SAN_RULES",
    "SanFinding",
    "PullPolicy",
    "analyze_trace",
    "sanitize_system",
    "trace_digest",
    "run_digest",
]
