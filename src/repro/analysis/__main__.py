"""``python -m repro.analysis`` entry point.

Subcommands::

    python -m repro.analysis lint [paths...]     # per-file determinism linter
    python -m repro.analysis flow [paths...]     # whole-program flow analyzer
    python -m repro.analysis kernel [paths...]   # compiled-kernel readiness
    python -m repro.analysis rules               # print the rule catalogues

The runtime invariant checker is reached through the main CLI
(``repro check --invariants``) because it needs a simulation to run.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.analysis.flow import FLOW_RULES
from repro.analysis.flow.cli import main as flow_main
from repro.analysis.invariants import INVARIANTS
from repro.analysis.kernel import KERN_RULES
from repro.analysis.kernel.cli import main as kernel_main
from repro.analysis.lint import RULES, main as lint_main
from repro.analysis.sanitizer import SAN_RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "lint":
        return lint_main(rest)
    if command == "flow":
        return flow_main(rest)
    if command == "kernel":
        return kernel_main(rest)
    if command == "rules":
        print("Static determinism lint rules (repro.analysis.lint):")
        for rule in RULES.values():
            print(f"  {rule.id}  {rule.summary}")
        print("Whole-program flow rules (repro.analysis.flow, `flow`):")
        for fid, flow_rule in FLOW_RULES.items():
            print(f"  {fid}  {flow_rule.summary}")
        print("Compiled-kernel readiness rules (repro.analysis.kernel, `kernel`):")
        for kid, kern_rule in KERN_RULES.items():
            print(f"  {kid}  {kern_rule.summary}")
        print("Runtime invariants (repro.analysis.invariants):")
        for rid, summary in INVARIANTS.items():
            print(f"  {rid}  {summary}")
        print("Schedule sanitizer rules (repro.analysis.sanitizer, `repro sanitize`):")
        for rid, summary in SAN_RULES.items():
            print(f"  {rid}  {summary}")
        return 0
    print(
        f"repro.analysis: unknown command {command!r} "
        "(expected 'lint', 'flow', 'kernel' or 'rules')",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
