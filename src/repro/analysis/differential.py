"""Differential determinism checking: perturb a run, compare digests.

The simulator's headline guarantee is bit-reproducibility: the same
scenario and seed produce the same schedule, always.  The test suite
asserts this for re-runs inside one process, but the strongest bugs
hide in what a single process cannot vary -- hash randomization
(``PYTHONHASHSEED`` changes dict/set iteration order wherever a set
sneaks into a decision path), observer instrumentation (a checker that
perturbs what it observes), and process fan-out (parallel workers
re-deriving state from pickled specs).

This module re-runs a scenario smoke under controlled perturbations and
compares :func:`~repro.analysis.sanitizer.run_digest` values.  Any
divergence is a SAN008 finding with both digests cited.

Perturbation legs
-----------------
``hashseed``
    Two fresh subprocesses run ``python -m repro sanitize --digest`` on
    the same scenario under *different* ``PYTHONHASHSEED`` values.
    Full digest (results + trace + engine fingerprint).
``observers``
    The same scenario in-process with and without a
    :class:`~repro.analysis.invariants.InvariantChecker` installed.
    Observers must be pure observation; a digest shift means the
    instrumentation perturbed the schedule.  Full digest.
``workers``
    :func:`~repro.harness.experiment.repeat_run` serially and with two
    worker processes.  Results-only digest (traces do not cross the
    process boundary), over every seed's canonical JSON.  Skipped for
    smokes whose co-runner factories close over system state that does
    not pickle.
``engines``
    The same scenario in-process under the ``heap`` backend and every
    other *available* event-dispatch backend (:mod:`repro.sim.backends`)
    -- ``batched`` always, ``native`` when a C toolchain exists.  The
    backends are digest-equivalent by contract -- same events, same
    order, same floats -- so any divergence means a batching (or
    compiled) fast path changed simulated behaviour.  Full digest.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.sanitizer import SanFinding, run_digest
from repro.harness.scenarios import ScenarioSmoke, scenario_smokes

__all__ = [
    "DIFFERENTIAL_LEGS",
    "scenario_digest",
    "subprocess_digest",
    "compare_digests",
    "differential_check",
]

DIFFERENTIAL_LEGS = ("hashseed", "observers", "workers", "engines")


def scenario_digest(
    name: str, seed: int = 0, observers: bool = False, engine: str = "heap"
) -> str:
    """Run one scenario smoke in-process and return its canonical digest.

    ``observers=True`` installs the runtime invariant checker before the
    run (the perturbation the ``observers`` leg compares against);
    ``engine`` selects the event-dispatch backend (the ``engines`` leg
    compares a ``heap`` digest against every other available backend's).
    """
    smoke = scenario_smokes()[name]
    instrument = None
    if observers:
        from repro.analysis.invariants import install_invariant_checker

        instrument = lambda system: install_invariant_checker(system)  # noqa: E731
    result, system = smoke.run(seed=seed, instrument=instrument, engine=engine)
    return run_digest(result, system.trace, system.engine)


def subprocess_digest(
    name: str, seed: int = 0, hashseed: Optional[int] = None,
    timeout: int = 300, engine: str = "heap"
) -> str:
    """Digest of a scenario computed by a fresh interpreter.

    Runs ``python -m repro sanitize --digest`` in a child process, with
    ``PYTHONHASHSEED`` pinned when given, so the child's dict/set hash
    order differs from the parent's.  The child prints nothing but the
    hex digest.
    """
    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    if hashseed is not None:
        env["PYTHONHASHSEED"] = str(hashseed)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "sanitize", "--digest", name,
         "--seed", str(seed), "--engine", engine],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"digest subprocess for {name!r} failed "
            f"(exit {proc.returncode}): {proc.stderr.strip()}"
        )
    return proc.stdout.strip()


def compare_digests(
    leg: str, a: str, b: str, context: str = ""
) -> list[SanFinding]:
    """SAN008 iff two perturbed digests of one scenario differ.

    Pure comparison, split out so fault-injection tests can feed it
    divergent digests without arranging a real nondeterminism bug.
    """
    if a == b:
        return []
    return [
        SanFinding(
            code="SAN008",
            severity="error",
            message=(
                f"differential determinism divergence on the {leg!r} leg: "
                "perturbed re-runs produced different canonical digests"
            ),
            context=context,
            citations=(f"digest A: {a}", f"digest B: {b}"),
        )
    ]


def _workers_digest(
    smoke: ScenarioSmoke, workers: int, seeds, engine: str = "heap"
) -> str:
    """Results-only digest of a repeat_run fan-out, in seed order."""
    import hashlib

    from repro.harness.experiment import repeat_run
    from repro.harness.parallel import resolve_machine

    rep = repeat_run(
        resolve_machine(smoke.machine),
        smoke.app,
        balancer=smoke.balancer,
        cores=smoke.cores,
        seeds=seeds,
        workers=workers,
        speed_config=smoke.speed_config,
        engine=engine,
    )
    h = hashlib.sha256()
    for r in rep.runs:
        h.update(r.canonical_json().encode())
        h.update(b"\n")
    return h.hexdigest()


def differential_check(
    name: str,
    seed: int = 0,
    legs: Sequence[str] = DIFFERENTIAL_LEGS,
    hashseeds: tuple[int, int] = (1, 2),
    engine: str = "heap",
) -> list[SanFinding]:
    """Run the differential determinism legs for one scenario smoke.

    Returns SAN008 findings (empty when every perturbation reproduced
    the run bit-identically).  Unknown leg names raise; the ``workers``
    leg silently narrows to smokes without co-runners (co-runner
    factories are module-level and pickle fine, but the leg's value is
    in re-deriving the *app* path across processes, and keeping it
    uniform keeps digests comparable).  ``engine`` is the backend the
    hashseed/observers/workers perturbations run under; the ``engines``
    leg always compares heap against every other available backend
    regardless (``batched``, plus ``native`` when a toolchain exists).
    """
    unknown = [leg for leg in legs if leg not in DIFFERENTIAL_LEGS]
    if unknown:
        raise ValueError(
            f"unknown differential legs {unknown}; expected from {DIFFERENTIAL_LEGS}"
        )
    smoke = scenario_smokes()[name]
    findings: list[SanFinding] = []
    if "hashseed" in legs:
        a = subprocess_digest(name, seed=seed, hashseed=hashseeds[0], engine=engine)
        b = subprocess_digest(name, seed=seed, hashseed=hashseeds[1], engine=engine)
        findings += compare_digests("hashseed", a, b, context=name)
    if "observers" in legs:
        a = scenario_digest(name, seed=seed, observers=False, engine=engine)
        b = scenario_digest(name, seed=seed, observers=True, engine=engine)
        findings += compare_digests("observers", a, b, context=name)
    if "workers" in legs and not smoke.corunners:
        a = _workers_digest(smoke, workers=1, seeds=range(seed, seed + 2),
                            engine=engine)
        b = _workers_digest(smoke, workers=2, seeds=range(seed, seed + 2),
                            engine=engine)
        findings += compare_digests("workers", a, b, context=name)
    if "engines" in legs:
        from repro.sim.backends import backend_available, backend_names

        a = scenario_digest(name, seed=seed, engine="heap")
        for other in backend_names():
            if other == "heap" or not backend_available(other):
                continue
            b = scenario_digest(name, seed=seed, engine=other)
            findings += compare_digests(
                "engines", a, b, context=f"{name}[heap-vs-{other}]"
            )
    return findings
