"""Whole-program determinism flow analyzer (FLOW rules).

Where :mod:`repro.analysis.lint` checks one file at a time, this
package parses every module under the given paths once, builds a
name-resolved call graph, computes per-function taint summaries and
runs an interprocedural fixpoint -- closing the blind spots a
per-file linter cannot see (``t = engine.now; helper(t)`` where the
float division happens inside ``helper``).

Layering: ``modules`` (parse + name) -> ``callgraph`` (program index)
-> ``summaries`` (taint fixpoint) -> ``rules``/``baseline``/``cli``
(reporting).  Suppressions and allowlists reuse the shared
:mod:`repro.analysis.suppress` conventions, so ``# sim-lint:
ignore[FLOW004]`` works exactly like its SIM counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import suppress
from repro.analysis.flow.callgraph import build_index
from repro.analysis.flow.modules import load_modules
from repro.analysis.flow.rules import FLOW_RULES, FlowFinding, FlowRule
from repro.analysis.flow.summaries import FlowAnalysis

__all__ = [
    "FLOW_RULES",
    "FlowRule",
    "FlowFinding",
    "FlowReport",
    "DEFAULT_ALLOWLIST",
    "DEFAULT_BASELINE",
    "analyze_paths",
    "flow_paths",
    "flow_source",
]

#: shipped zero-entry allowlist, next to the linter's
DEFAULT_ALLOWLIST = Path(__file__).resolve().parent.parent / "flow_allowlist.txt"
#: committed findings baseline (strict ratchet; see ``flow.baseline``)
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "flow_baseline.txt"


@dataclass
class FlowReport:
    """The outcome of one whole-program analysis."""

    findings: list[FlowFinding]
    errors: list[tuple[str, int, int, str]]  # unparseable files
    modules: int
    functions: int
    rounds: int  # fixpoint rounds until convergence


def analyze_paths(
    paths: Iterable[str | Path],
    allowlist: Sequence[tuple[str, str]] = (),
) -> FlowReport:
    """Run the full pipeline over every ``*.py`` under ``paths``."""
    modules = load_modules(paths)
    program = build_index(modules)
    analysis = FlowAnalysis(program)
    analysis.solve()
    raw = analysis.report()

    by_path = {str(m.path): m for m in modules}
    findings: list[FlowFinding] = []
    for f in raw:
        module = by_path.get(f.path)
        if module is not None:
            if suppress.has_skip_file(module.source):
                continue
            if suppress.is_suppressed(f.rule, f.line, module.lines):
                continue
        if suppress.allowlisted(f.rule, f.path, allowlist):
            continue
        findings.append(f)
    return FlowReport(
        findings=findings,
        errors=list(modules.errors),
        modules=len(modules),
        functions=len(program.functions),
        rounds=analysis.rounds,
    )


def flow_paths(
    paths: Iterable[str | Path],
    allowlist: Sequence[tuple[str, str]] = (),
) -> list[FlowFinding]:
    """Findings for ``paths`` (the test-friendly entry point)."""
    return analyze_paths(paths, allowlist).findings


def flow_source(tree_files: dict[str, str], root: Path) -> list[FlowFinding]:
    """Analyze an in-memory file tree materialized under ``root``.

    Test helper: writes ``relative-path -> source`` pairs below
    ``root`` (creating packages as given) and analyzes the tree.
    """
    for rel, source in tree_files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return flow_paths([root])
