"""Committed findings baseline with strict-ratchet semantics.

The baseline file pins the analyzer's known findings as stable
fingerprints (``RULE repro-relative-path:function-qual``, with an
``xN`` multiplicity suffix when a function trips the same rule at N
sites).  The ratchet is strict in *both* directions:

* a finding **not** in the baseline fails the run (no new debt);
* a baseline entry with **no** matching finding also fails the run
  (fixed debt must be deleted from the baseline, so the file only
  ever shrinks -- it cannot silently mask future regressions).

``--write-baseline`` regenerates the file from the current findings.
Fingerprints use line-independent components only, so refactors that
move code inside a function do not churn the baseline.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path, PurePosixPath
from typing import AbstractSet, Iterable, Sequence

from repro.analysis.flow.rules import FlowFinding

__all__ = [
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "format_baseline",
    "write_baseline",
]

_HEADER = """\
# Findings baseline for the flow analyzer (strict ratchet).
#
# One fingerprint per line: RULE repro-relative-path:function-qual [xN]
# New findings not listed here FAIL the run; listed entries with no
# matching finding ALSO fail (delete fixed debt).  Regenerate with:
#   python -m repro.analysis flow --write-baseline
"""


def _norm_path(path: str) -> str:
    """Path relative to the innermost ``repro`` directory.

    Makes fingerprints stable between ``src/repro/...`` checkouts and
    installed-package layouts.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    if "repro" in parts:
        last = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        parts = parts[last:]
    return "/".join(parts)


def fingerprint(finding: FlowFinding) -> str:
    return f"{finding.rule} {_norm_path(finding.path)}:{finding.function}"


def load_baseline(path: Path, known_rules: AbstractSet[str]) -> Counter:
    """Parse the baseline into fingerprint -> allowed count."""
    allowed: Counter = Counter()
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        count = 1
        if len(parts) == 3 and parts[2].startswith("x") and parts[2][1:].isdigit():
            count = int(parts[2][1:])
            parts = parts[:2]
        if len(parts) != 2 or parts[0] not in known_rules:
            raise ValueError(
                f"{path}:{lineno}: expected '<RULE> <path:function> [xN]', got {raw!r}"
            )
        allowed[f"{parts[0]} {parts[1]}"] += count
    return allowed


def apply_baseline(
    findings: Sequence[FlowFinding], allowed: Counter
) -> tuple[list[FlowFinding], list[str]]:
    """Split findings into (new, stale-baseline-entries).

    The first ``allowed[fp]`` findings per fingerprint are baselined;
    any excess is new.  Entries whose budget is not fully consumed are
    stale and must be removed from the file.
    """
    remaining = Counter(allowed)
    new: list[FlowFinding] = []
    for f in findings:
        fp = fingerprint(f)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
        else:
            new.append(f)
    stale = sorted(fp for fp, n in remaining.items() if n > 0)
    return new, stale


def format_baseline(findings: Iterable[FlowFinding]) -> str:
    counts = Counter(fingerprint(f) for f in findings)
    lines = [_HEADER]
    for fp in sorted(counts):
        n = counts[fp]
        lines.append(fp if n == 1 else f"{fp} x{n}")
    return "\n".join(lines) + "\n"


def write_baseline(findings: Sequence[FlowFinding], path: Path) -> None:
    path.write_text(format_baseline(findings))
