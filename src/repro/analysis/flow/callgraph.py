"""Name-resolved program index: modules, classes, functions, bindings.

The flow rules only work if a call site in one module can be traced to
the function object it names in another, through the import forms the
codebase actually uses:

* plain and aliased imports (``import repro.sim.rng as rng`` followed
  by ``rng.SimRng(...)``);
* from-imports and **re-export chains** (``from repro.balance import
  LinuxLoadBalancer`` where ``repro/balance/__init__.py`` itself does
  ``from repro.balance.linux import LinuxLoadBalancer``);
* relative imports (``from .linux import ...``);
* module-level aliases (``balance = compute_balance``);
* method calls on ``self`` and on locals whose class is known from a
  constructor call or an annotation, including methods inherited from
  resolvable base classes.

Resolution is *best effort and conservative*: anything that cannot be
pinned to an in-index definition becomes an ``external`` target
carrying its dotted name (still useful -- the store-key sink matches
``repro.store.keys`` functions by dotted name even when the store
package is outside the analyzed tree).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.flow.modules import ModuleIndex, SourceModule

__all__ = [
    "Target",
    "FunctionInfo",
    "ClassInfo",
    "GlobalVar",
    "GlobalWrite",
    "ProgramIndex",
    "build_index",
]

#: constructors whose module-level result is mutable state (FLOW004)
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
    }
)

#: constructors producing stateful iterators (advancing one *is* a write)
_ITERATOR_CONSTRUCTORS = frozenset({"count", "cycle", "chain"})


@dataclass(frozen=True)
class Target:
    """Where a name points after resolution."""

    kind: str  # "module" | "function" | "class" | "external" | "unknown"
    ref: str  # module name, "mod:qual", or a dotted external path

    @property
    def dotted(self) -> str:
        """The target as a plain dotted path (for name-based sinks)."""
        return self.ref.replace(":", ".")


UNKNOWN = Target("unknown", "")


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    qual: str  # "repro.balance.linux:LinuxLoadBalancer.balance"
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qual: Optional[str] = None
    is_static: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> tuple[str, ...]:
        """Bindable parameter names, minus the implicit self/cls."""
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args]
        if self.class_qual is not None and not self.is_static and names:
            names = names[1:]
        names.extend(p.arg for p in a.kwonlyargs)
        return tuple(names)

    @property
    def self_name(self) -> Optional[str]:
        """The receiver parameter name of a bound method, if any."""
        if self.class_qual is None or self.is_static:
            return None
        a = self.node.args
        first = (a.posonlyargs + a.args)[:1]
        return first[0].arg if first else None


@dataclass
class ClassInfo:
    """One class definition with its methods and (unresolved) bases."""

    qual: str
    module: SourceModule
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)  # name -> func qual


@dataclass(frozen=True)
class GlobalVar:
    """A module-level name bound to a mutable object at import time."""

    module: str
    name: str
    lineno: int
    kind: str  # "container" | "iterator"

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass(frozen=True)
class GlobalWrite:
    """One mutation of module-level state found inside a function."""

    var: GlobalVar
    lineno: int
    col: int
    how: str  # human phrase: "rebinds", "calls .append() on", ...


class ProgramIndex:
    """The whole-program name space the analyzer resolves against."""

    def __init__(self, modules: ModuleIndex) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module name -> local name -> raw binding (lazily resolved)
        self._bindings: dict[str, dict[str, str]] = {}
        self._resolve_cache: dict[str, Target] = {}
        self._mutable_globals: dict[str, GlobalVar] = {}  # "mod:name" -> var

    # -- construction ---------------------------------------------------
    def collect(self, module: SourceModule) -> None:
        bindings: dict[str, str] = {}
        self._bindings[module.name] = bindings
        for node in module.tree.body:
            self._collect_stmt(module, bindings, node)

    def _collect_stmt(
        self, module: SourceModule, bindings: dict[str, str], node: ast.stmt
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module.name}:{node.name}"
            self.functions[qual] = FunctionInfo(qual, module, node)
        elif isinstance(node, ast.ClassDef):
            self._collect_class(module, node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = self._import_base(module, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, ast.Assign):
            self._collect_global_assign(module, bindings, node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._collect_global_assign(module, bindings, [node.target], node.value)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks still bind names
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._collect_stmt(module, bindings, child)

    def _collect_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        qual = f"{module.name}:{node.name}"
        info = ClassInfo(qual, module, node)
        self.classes[qual] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = f"{qual}.{item.name}"
                is_static = any(
                    isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in item.decorator_list
                )
                self.functions[fq] = FunctionInfo(
                    fq, module, item, class_qual=qual, is_static=is_static
                )
                info.methods[item.name] = fq

    @staticmethod
    def _import_base(module: SourceModule, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # relative import: strip `level` trailing components of the
        # importing module's package path
        parts = module.name.split(".")
        # a module's own name counts as one component beyond its package
        keep = len(parts) - node.level
        if module.path.stem == "__init__":
            keep = len(parts) - node.level + 1
        base = ".".join(parts[: max(keep, 0)])
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _collect_global_assign(
        self,
        module: SourceModule,
        bindings: dict[str, str],
        targets: list[ast.expr],
        value: ast.expr,
    ) -> None:
        kind = self._mutable_kind(value)
        for t in targets:
            if not isinstance(t, ast.Name):
                continue
            if kind is not None:
                var = GlobalVar(module.name, t.id, t.lineno, kind)
                self._mutable_globals[var.key] = var
            elif isinstance(value, ast.Name):
                # module-level alias: X = Y
                bindings[t.id] = value.id

    @staticmethod
    def _mutable_kind(value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.SetComp)):
            return "container"
        if isinstance(value, (ast.ListComp, ast.DictComp)):
            return "container"
        if isinstance(value, ast.Call):
            name = None
            if isinstance(value.func, ast.Name):
                name = value.func.id
            elif isinstance(value.func, ast.Attribute):
                name = value.func.attr
            if name in _MUTABLE_CONSTRUCTORS:
                return "container"
            if name in _ITERATOR_CONSTRUCTORS:
                return "iterator"
        return None

    # -- resolution -----------------------------------------------------
    def mutable_global(self, module: str, name: str) -> Optional[GlobalVar]:
        return self._mutable_globals.get(f"{module}:{name}")

    def resolve_name(self, module: str, name: str) -> Target:
        """What ``name`` denotes at module scope of ``module``."""
        qual = f"{module}:{name}"
        if qual in self.functions:
            return Target("function", qual)
        if qual in self.classes:
            return Target("class", qual)
        bindings = self._bindings.get(module, {})
        if name in bindings:
            dotted = bindings[name]
            if "." not in dotted and dotted != name:
                # module-level alias to another local name
                return self.resolve_name(module, dotted)
            return self.resolve_dotted(dotted)
        if f"{module}.{name}" in self.modules:
            return Target("module", f"{module}.{name}")
        return UNKNOWN

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Target:
        """Resolve a dotted path against the index (longest module prefix)."""
        if _depth > 16 or not dotted:
            return UNKNOWN
        cached = self._resolve_cache.get(dotted)
        if cached is not None:
            return cached
        self._resolve_cache[dotted] = Target("external", dotted)  # cycle guard
        parts = dotted.split(".")
        target: Optional[Target] = None
        rest: list[str] = []
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                target = Target("module", prefix)
                rest = parts[cut:]
                break
        if target is None:
            result = Target("external", dotted)
        else:
            result = target
            for attr in rest:
                result = self.resolve_attr(result, attr, _depth + 1)
        self._resolve_cache[dotted] = result
        return result

    def resolve_attr(self, target: Target, attr: str, _depth: int = 0) -> Target:
        """Step one attribute off a resolved target."""
        if _depth > 16:
            return UNKNOWN
        if target.kind == "module":
            mod = target.ref
            qual = f"{mod}:{attr}"
            if qual in self.functions:
                return Target("function", qual)
            if qual in self.classes:
                return Target("class", qual)
            if f"{mod}.{attr}" in self.modules:
                return Target("module", f"{mod}.{attr}")
            bindings = self._bindings.get(mod, {})
            if attr in bindings:
                return self.resolve_dotted(bindings[attr], _depth + 1)
            return Target("external", f"{mod}.{attr}")
        if target.kind == "class":
            fq = self.method_on(target.ref, attr)
            if fq is not None:
                return Target("function", fq)
            return UNKNOWN
        if target.kind == "external":
            return Target("external", f"{target.ref}.{attr}")
        return UNKNOWN

    def expr_target(self, module: str, expr: ast.expr) -> Target:
        """Resolve a Name/Attribute expression at module scope."""
        if isinstance(expr, ast.Name):
            return self.resolve_name(module, expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.expr_target(module, expr.value)
            if base.kind == "unknown":
                return UNKNOWN
            return self.resolve_attr(base, expr.attr)
        return UNKNOWN

    def method_on(self, class_qual: str, name: str, _depth: int = 0) -> Optional[str]:
        """Look ``name`` up on a class and its resolvable bases."""
        if _depth > 16:
            return None
        info = self.classes.get(class_qual)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.node.bases:
            t = self.expr_target(info.module.name, base)
            if t.kind == "class":
                found = self.method_on(t.ref, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def constructor_of(self, class_qual: str) -> Optional[FunctionInfo]:
        fq = self.method_on(class_qual, "__init__")
        return self.functions.get(fq) if fq is not None else None


def build_index(modules: ModuleIndex) -> ProgramIndex:
    """Collect every module's definitions and bindings into one index."""
    index = ProgramIndex(modules)
    for module in modules:
        index.collect(module)
    return index
