"""Module discovery and parsing for the flow analyzer.

The analyzer is whole-program: it parses every module under the given
paths exactly once, names each one by walking up the ``__init__.py``
chain (so ``src/repro/balance/linux.py`` becomes
``repro.balance.linux`` no matter where the tree sits on disk), and
hands the resulting index to the call-graph builder.  Discovery order
is sorted -- the analyzer itself must satisfy SIM006.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

__all__ = ["SourceModule", "ModuleIndex", "module_name_for", "load_modules"]


@dataclass
class SourceModule:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.balance.linux"
    path: Path
    source: str
    tree: ast.Module
    lines: tuple[str, ...] = field(default_factory=tuple)

    @property
    def dir_parts(self) -> tuple[str, ...]:
        """Directory components of the path (scope checks key off these)."""
        return self.path.parts[:-1]

    def in_dirs(self, names: frozenset[str]) -> bool:
        """Is the module inside any directory named in ``names``?"""
        return bool(names.intersection(self.dir_parts))


def module_name_for(path: Path) -> str:
    """Dotted module name from the ``__init__.py`` chain above ``path``.

    A file outside any package keeps its bare stem, so single-file
    fixtures still analyze.
    """
    path = path.resolve()
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    d = path.parent
    while (d / "__init__.py").exists():
        parts.insert(0, d.name)
        parent = d.parent
        if parent == d:  # filesystem root; defensive
            break
        d = parent
    return ".".join(parts) or path.stem


def _iter_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


class ModuleIndex:
    """Name -> parsed module, plus the parse failures as findings fuel."""

    def __init__(self) -> None:
        self.modules: dict[str, SourceModule] = {}
        #: (path, lineno, col, message) per unparseable file
        self.errors: list[tuple[str, int, int, str]] = []

    def add(self, module: SourceModule) -> None:
        self.modules[module.name] = module

    def get(self, name: str) -> Optional[SourceModule]:
        return self.modules.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)


def load_modules(paths: Iterable[str | Path]) -> ModuleIndex:
    """Parse every ``*.py`` under ``paths`` into a :class:`ModuleIndex`."""
    index = ModuleIndex()
    for f in _iter_files(paths):
        source = f.read_text()
        try:
            tree = ast.parse(source, filename=str(f))
        except SyntaxError as exc:
            index.errors.append(
                (str(f), exc.lineno or 1, (exc.offset or 0) + 1, f"syntax error: {exc.msg}")
            )
            continue
        index.add(
            SourceModule(
                name=module_name_for(f),
                path=f,
                source=source,
                tree=tree,
                lines=tuple(source.splitlines()),
            )
        )
    return index
