"""The FLOW rule catalogue and finding type.

Each FLOW rule is the *interprocedural* closure of a blind spot in the
per-file SIM linter: the same determinism property, enforced across
function, method and module boundaries by the taint fixpoint instead
of per-line pattern matching.

======== =============================================================
FLOW001  Float contamination reaching engine timestamps through
         aliases, call chains and returns (interprocedural SIM004):
         a value derived from ``engine.now`` is true-divided or
         ``float()``-ed in an engine-time module -- possibly inside a
         helper that received it as a parameter -- or a float-valued
         expression produced by a callee flows into an
         ``Engine.schedule``/``schedule_at`` time argument.
FLOW002  Global or unseeded randomness flowing into a scheduling
         decision via intermediaries (interprocedural SIM002): a
         function anywhere draws from the global :mod:`random` module
         (or ``numpy.random``, or an unseeded ``random.Random()``) and
         the value reaches code in ``balance/``, ``sched/`` or
         ``core/`` through calls or returns.
FLOW003  An unordered ``set``/``frozenset``/``.keys()`` value escapes
         the function that built it and is iterated in a
         scheduling-decision module (interprocedural SIM001) -- either
         a decision-module caller iterates a set-returning callee's
         result, or a set is passed into a decision-module function
         that iterates its parameter.
FLOW004  Module-level mutable state written from a hot scheduling or
         harness-worker code path: process-global containers and
         iterators mutated by functions reachable from ``sched/``,
         ``core/``, ``balance/``, ``sim/`` or the worker entry modules
         break fork-safety for ``repeat_run``/``sweep workers=N`` and
         any future serving daemon.
FLOW005  A lambda, closure or local function flows into
         :mod:`repro.store` spec-key construction (``spec_digest``,
         ``canonical_value``, ``function_ref``, ...), which raises
         ``UnstorableSpecError`` at runtime -- this rule surfaces it
         statically, including through intermediaries.
======== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowRule", "FLOW_RULES", "FlowFinding"]


@dataclass(frozen=True)
class FlowRule:
    """One rule of the FLOW catalogue."""

    id: str
    summary: str


FLOW_RULES: dict[str, FlowRule] = {
    r.id: r
    for r in (
        FlowRule(
            "FLOW001",
            "float arithmetic reaching an engine timestamp across call boundaries",
        ),
        FlowRule(
            "FLOW002",
            "global/unseeded randomness flowing into a scheduling decision",
        ),
        FlowRule(
            "FLOW003",
            "unordered set escaping into iteration in a decision module",
        ),
        FlowRule(
            "FLOW004",
            "module-level mutable state written on a hot or worker path",
        ),
        FlowRule(
            "FLOW005",
            "lambda/closure flowing into store spec-key construction",
        ),
    )
}


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural determinism violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    function: str  # qualified name of the function containing the sink

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "function": self.function,
        }
