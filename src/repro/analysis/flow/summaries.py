"""Per-function taint summaries and the interprocedural fixpoint.

The analyzer models five taint kinds:

* ``timestamp`` -- values derived from ``engine.now``.  Timestamp
  algebra matters: ``ts - ts`` is a *duration* (the paper's speed
  metric divides durations by design, so subtraction clears the
  taint), while ``ts + k``/``ts // k``/``min(ts, ts)`` stay
  timestamps.
* ``random`` -- values drawn from the global :mod:`random` module,
  ``numpy.random`` or an unseeded ``random.Random()``.  Draws from a
  *seeded* ``random.Random(seed)`` (the :class:`~repro.sim.rng.SimRng`
  discipline) are clean.
* ``unordered`` -- ``set``/``frozenset`` values and ``.keys()`` views,
  whose iteration order is arbitrary.
* ``localfn`` -- lambdas and functions defined inside a function,
  which have no stable identity for store keys.
* ``float`` -- float-valued expressions (division results, float
  returns), which must not reach engine schedule times.

Parameters are seeded with symbolic ``param:<name>`` tokens, so one
interpretation pass yields both the function's *transfer function*
(which parameters flow to the return value, which reach a sink) and
its *intrinsic* effects (returns a set, draws randomness, mutates a
module global).  Summaries are recomputed round-robin until no
summary or class-attribute taint changes -- the standard bottom-up
fixpoint, which handles recursion and mutual calls.

Findings are only emitted on a final reporting pass over the converged
summaries, so every message reflects the fixpoint, not a half-built
intermediate state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.flow.callgraph import (
    FunctionInfo,
    GlobalVar,
    GlobalWrite,
    ProgramIndex,
    Target,
)
from repro.analysis.flow.rules import FlowFinding

__all__ = [
    "TS",
    "RAND",
    "UNORD",
    "LOCALFN",
    "FLOATV",
    "Origin",
    "Summary",
    "FlowAnalysis",
    "DECISION_DIRS",
    "TIME_DIRS",
    "WORKER_MODULES",
]

# taint kind tokens
TS = "timestamp"
RAND = "random"
UNORD = "unordered"
LOCALFN = "localfn"
FLOATV = "float"
_PARAM = "param:"

#: scheduling-decision directories (FLOW002/FLOW003 sink scope, = SIM001's)
DECISION_DIRS = frozenset({"balance", "sched", "core"})

#: engine-time directories (FLOW001 sink scope): modules where a value
#: derived from engine.now must stay integer microseconds
TIME_DIRS = frozenset({"sim", "sched", "core", "balance"})

#: hot directories + worker entry modules (FLOW004 reachability roots):
#: functions here run per event/dispatch or inside pool worker processes
HOT_DIRS = frozenset({"sched", "core", "balance", "sim"})
WORKER_MODULES = frozenset(
    {
        "repro.harness.parallel",
        "repro.harness.experiment",
        "repro.harness.sweeps",
        "repro.service.jobs",
        "repro.serve.workers",
    }
)

#: container methods that mutate the receiver (FLOW004)
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "appendleft",
        "popleft",
    }
)

#: store spec-key constructors (FLOW005 sinks), matched by dotted name so
#: they work whether or not repro.store is inside the analyzed tree
_SPEC_SINK_NAMES = frozenset(
    {
        "spec_key",
        "spec_digest",
        "digest_of",
        "canonical_value",
        "sweep_cell_key",
        "function_ref",
    }
)

_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})
_ORDER_INSENSITIVE = frozenset({"min", "max", "sum", "any", "all", "abs"})
_INT_COERCIONS = frozenset({"int", "round"})
_PLAIN_RESULT = frozenset({"len", "bool", "str", "repr", "format", "id", "hash"})


@dataclass(frozen=True)
class Origin:
    """Where a taint token came from, and whether it crossed a call."""

    desc: str
    inter: bool = False


#: a taint set: token -> first-seen origin
Taints = dict  # dict[str, Origin]


def merge(*many: Taints) -> Taints:
    out: Taints = {}
    for t in many:
        for token, origin in t.items():
            out.setdefault(token, origin)
    return out


def minus(t: Taints, *tokens: str) -> Taints:
    return {k: v for k, v in t.items() if k not in tokens}


def _params_in(t: Taints) -> list[str]:
    return [k[len(_PARAM) :] for k in t if k.startswith(_PARAM)]


def _via(origin: Origin, callee: str) -> Origin:
    desc = origin.desc
    if len(desc) < 120:
        desc = f"{desc}, via {callee}()"
    return Origin(desc, inter=True)


@dataclass
class Summary:
    """The converged transfer function of one analyzed function."""

    returns: Taints = field(default_factory=dict)
    float_div_params: frozenset = frozenset()
    sched_time_params: frozenset = frozenset()
    iter_params: frozenset = frozenset()
    spec_sink_params: frozenset = frozenset()
    calls: frozenset = frozenset()
    global_writes: tuple = ()

    def signature(self) -> tuple:
        return (
            frozenset(self.returns),
            self.float_div_params,
            self.sched_time_params,
            self.iter_params,
            self.spec_sink_params,
            self.calls,
            self.global_writes,
        )


EMPTY_SUMMARY = Summary()


def _mentions_now(node: ast.expr) -> bool:
    """Syntactic SIM004 territory: the expression names ``now`` itself."""
    for n in ast.walk(node):
        if isinstance(n, ast.Attribute) and n.attr == "now":
            return True
        if isinstance(n, ast.Name) and n.id == "now":
            return True
    return False


class FlowAnalysis:
    """Drives the summary fixpoint and the final reporting pass."""

    def __init__(self, program: ProgramIndex, max_rounds: int = 20):
        self.program = program
        self.max_rounds = max_rounds
        self.summaries: dict[str, Summary] = {}
        #: class qual -> attribute -> taints (monotone across the fixpoint)
        self.attr_taints: dict[str, dict[str, Taints]] = {}
        self.findings: list[FlowFinding] = []
        self._seen: set = set()
        self._attrs_changed = False
        self.rounds = 0

    # -- fixpoint -------------------------------------------------------
    def solve(self) -> None:
        quals = sorted(self.program.functions)
        for _ in range(self.max_rounds):
            self.rounds += 1
            changed = False
            self._attrs_changed = False
            for qual in quals:
                fn = self.program.functions[qual]
                summary = _Interp(self, fn, emit=False).run()
                old = self.summaries.get(qual)
                if old is None or old.signature() != summary.signature():
                    changed = True
                self.summaries[qual] = summary
            if not changed and not self._attrs_changed:
                break

    def report(self) -> list[FlowFinding]:
        """The final emitting pass plus the FLOW004 reachability rule."""
        for qual in sorted(self.program.functions):
            _Interp(self, self.program.functions[qual], emit=True).run()
        self._report_global_writes()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self.findings

    # -- shared state ---------------------------------------------------
    def summary_of(self, qual: str) -> Summary:
        return self.summaries.get(qual, EMPTY_SUMMARY)

    def attr_read(self, class_qual: str, attr: str) -> Taints:
        return self.attr_taints.get(class_qual, {}).get(attr, {})

    def attr_write(self, class_qual: str, attr: str, taints: Taints) -> None:
        table = self.attr_taints.setdefault(class_qual, {})
        current = table.setdefault(attr, {})
        for token, origin in taints.items():
            if token not in current:
                current[token] = origin
                self._attrs_changed = True

    def emit(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        rule: str,
        message: str,
    ) -> None:
        path = str(fn.module.path)
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        key = (path, line, col, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            FlowFinding(
                path=path, line=line, col=col, rule=rule,
                message=message, function=fn.qual,
            )
        )

    # -- FLOW004: reachability from hot/worker entries ------------------
    def _hot_entry(self, fn: FunctionInfo) -> bool:
        return fn.module.in_dirs(HOT_DIRS) or fn.module.name in WORKER_MODULES

    def _report_global_writes(self) -> None:
        # BFS over the converged call graph from every hot/worker function
        witness: dict[str, str] = {}
        frontier: list[str] = []
        for qual in sorted(self.program.functions):
            if self._hot_entry(self.program.functions[qual]):
                witness[qual] = qual
                frontier.append(qual)
        while frontier:
            next_frontier: list[str] = []
            for qual in frontier:
                for callee in sorted(self.summary_of(qual).calls):
                    if callee not in witness and callee in self.program.functions:
                        witness[callee] = witness[qual]
                        next_frontier.append(callee)
            frontier = next_frontier

        for qual in sorted(self.program.functions):
            if qual not in witness:
                continue
            fn = self.program.functions[qual]
            for write in self.summary_of(qual).global_writes:
                entry = witness[qual]
                how_reached = (
                    "runs on the hot scheduling/worker path"
                    if entry == qual
                    else f"is reachable from hot/worker entry {entry}"
                )
                self.emit(
                    fn,
                    _FakeNode(write.lineno, write.col),
                    "FLOW004",
                    f"{write.how} module-global "
                    f"`{write.var.module}.{write.var.name}` (bound at "
                    f"{write.var.module}:{write.var.lineno}) but {fn.name}() "
                    f"{how_reached}; process-global mutable state breaks "
                    "fork-safety for repeat_run/sweep workers and the "
                    "serving daemon -- make it per-System state",
                )


@dataclass(frozen=True)
class _FakeNode:
    lineno: int
    col_offset: int

    def __post_init__(self) -> None:
        # emit() reads col_offset + 1; GlobalWrite stores 1-based already
        object.__setattr__(self, "col_offset", self.col_offset - 1)


class _Interp:
    """One abstract interpretation of a function body."""

    def __init__(self, analysis: FlowAnalysis, fn: FunctionInfo, emit: bool):
        self.an = analysis
        self.program = analysis.program
        self.fn = fn
        self.module = fn.module
        self.emitting = emit
        self.decision = fn.module.in_dirs(DECISION_DIRS)
        self.time_scope = fn.module.in_dirs(TIME_DIRS)

        self.env: dict[str, Taints] = {}
        self.instance: dict[str, str] = {}  # local name -> class qual
        self.assigned: set[str] = set()  # locally (re)bound names
        self.global_decls: set[str] = set()
        self.ret: Taints = {}
        self.float_div_params: set[str] = set()
        self.sched_time_params: set[str] = set()
        self.iter_params: set[str] = set()
        self.spec_sink_params: set[str] = set()
        self.calls: set[str] = set()
        self.global_writes: list[GlobalWrite] = []
        self._last_call_class: Optional[str] = None

        for p in fn.params:
            self.env[p] = {f"{_PARAM}{p}": Origin(f"parameter {p!r}")}
            self.assigned.add(p)
        self_name = fn.self_name
        if self_name is not None and fn.class_qual is not None:
            self.instance[self_name] = fn.class_qual
            self.env.setdefault(self_name, {})
            self.assigned.add(self_name)
            # parameter annotations naming in-index classes enable method
            # resolution on arguments too
        for arg in fn.node.args.posonlyargs + fn.node.args.args + fn.node.args.kwonlyargs:
            if arg.annotation is not None and arg.arg in self.env:
                t = self._annotation_class(arg.annotation)
                if t is not None:
                    self.instance[arg.arg] = t

    def _annotation_class(self, annotation: ast.expr) -> Optional[str]:
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            node = node.value
        target = self.program.expr_target(self.module.name, node)
        return target.ref if target.kind == "class" else None

    # -- driver ---------------------------------------------------------
    def run(self) -> Summary:
        # two passes so loop-carried and forward flows stabilize locally;
        # interprocedural effects stabilize in the outer fixpoint
        for _ in range(2):
            for stmt in self.fn.node.body:
                self.exec(stmt)
        return Summary(
            returns=dict(self.ret),
            float_div_params=frozenset(self.float_div_params),
            sched_time_params=frozenset(self.sched_time_params),
            iter_params=frozenset(self.iter_params),
            spec_sink_params=frozenset(self.spec_sink_params),
            calls=frozenset(self.calls),
            global_writes=tuple(dict.fromkeys(self.global_writes)),
        )

    # -- statements -----------------------------------------------------
    def exec(self, node: ast.stmt) -> None:
        method = getattr(self, f"exec_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        # default: evaluate child expressions, execute child statements
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.exec(child)
            elif isinstance(child, ast.expr):
                self.eval(child)

    def exec_block(self, stmts: list) -> None:
        for s in stmts:
            self.exec(s)

    def exec_Assign(self, node: ast.Assign) -> None:
        taints = self.eval(node.value)
        cls = self._last_call_class
        for target in node.targets:
            self.assign_to(target, taints, cls)

    def exec_AnnAssign(self, node: ast.AnnAssign) -> None:
        taints = self.eval(node.value) if node.value is not None else {}
        cls = self._last_call_class if node.value is not None else None
        if cls is None:
            cls_from_ann = self._annotation_class(node.annotation)
            cls = cls_from_ann
        self.assign_to(node.target, taints, cls)

    def exec_AugAssign(self, node: ast.AugAssign) -> None:
        current = self.eval(node.target)
        value = self.eval(node.value)
        if isinstance(node.op, ast.Div):
            self._check_division(node, merge(current, value))
        self.assign_to(node.target, merge(current, value))

    def exec_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.ret = merge(self.ret, self.eval(node.value))

    def exec_Global(self, node: ast.Global) -> None:
        self.global_decls.update(node.names)

    def exec_For(self, node: ast.For) -> None:
        self._iterate(node.iter)
        self.assign_to(node.target, minus(self.eval(node.iter), UNORD))
        self.exec_block(node.body)
        self.exec_block(node.orelse)

    exec_AsyncFor = exec_For

    def exec_While(self, node: ast.While) -> None:
        self.eval(node.test)
        self.exec_block(node.body)
        self.exec_block(node.orelse)

    def exec_If(self, node: ast.If) -> None:
        self.eval(node.test)
        self.exec_block(node.body)
        self.exec_block(node.orelse)

    def exec_With(self, node: ast.With) -> None:
        for item in node.items:
            t = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self.assign_to(item.optional_vars, t)
        self.exec_block(node.body)

    exec_AsyncWith = exec_With

    def exec_Try(self, node: ast.Try) -> None:
        self.exec_block(node.body)
        for handler in node.handlers:
            self.exec_block(handler.body)
        self.exec_block(node.orelse)
        self.exec_block(node.finalbody)

    def exec_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                var = self._global_for(target.value)
                if var is not None:
                    self._record_write(target, var, "deletes an item of")

    def exec_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_function(node)

    def exec_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_function(node)

    def _nested_function(self, node) -> None:
        self.env[node.name] = {
            LOCALFN: Origin(f"local function {node.name!r} defined at line {node.lineno}")
        }
        self.assigned.add(node.name)
        # analyze the nested body for sinks with the enclosing env as the
        # closure environment; its calls and global writes count as ours
        nested_info = FunctionInfo(
            qual=f"{self.fn.qual}.<locals>.{node.name}",
            module=self.module,
            node=node,
            class_qual=None,
        )
        sub = _Interp(self.an, nested_info, emit=self.emitting)
        for name, taints in self.env.items():
            sub.env.setdefault(name, dict(taints))
        sub.instance.update(
            {k: v for k, v in self.instance.items() if k not in sub.assigned}
        )
        summary = sub.run()
        self.calls.update(summary.calls)
        self.global_writes.extend(summary.global_writes)

    def exec_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # local classes are out of scope

    def exec_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    # -- assignment targets ---------------------------------------------
    def assign_to(
        self, target: ast.expr, taints: Taints, cls: Optional[str] = None
    ) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.global_decls:
                var = self.program.mutable_global(self.module.name, name)
                if var is not None:
                    self._record_write(target, var, "rebinds")
                else:
                    # rebinding *any* declared global is module-state write
                    anon = GlobalVar(self.module.name, name, target.lineno, "container")
                    self._record_write(target, anon, "rebinds")
                return
            self.env[name] = dict(taints)
            self.assigned.add(name)
            if cls is not None:
                self.instance[name] = cls
            elif name in self.instance:
                del self.instance[name]
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id in self.instance:
                self.an.attr_write(self.instance[base.id], target.attr, taints)
            else:
                var = self._module_attr_global(target)
                if var is not None:
                    self._record_write(target, var, "rebinds")
        elif isinstance(target, ast.Subscript):
            base = target.value
            var = self._global_for(base)
            if var is not None:
                self._record_write(target, var, "assigns an item of")
            if isinstance(base, ast.Name) and base.id in self.env:
                self.env[base.id] = merge(self.env[base.id], taints)
            elif isinstance(base, ast.Attribute):
                inner = base.value
                if isinstance(inner, ast.Name) and inner.id in self.instance:
                    self.an.attr_write(self.instance[inner.id], base.attr, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_to(elt, taints)
        elif isinstance(target, ast.Starred):
            self.assign_to(target.value, taints)

    # -- FLOW004 helpers -------------------------------------------------
    def _global_for(self, expr: ast.expr) -> Optional[GlobalVar]:
        """The module-level mutable global behind an expression, if any."""
        if isinstance(expr, ast.Name):
            if expr.id in self.assigned and expr.id not in self.global_decls:
                return None  # locally shadowed
            return self.program.mutable_global(self.module.name, expr.id)
        if isinstance(expr, ast.Attribute):
            return self._module_attr_global(expr)
        return None

    def _module_attr_global(self, expr: ast.Attribute) -> Optional[GlobalVar]:
        """``othermod.GLOBAL`` reached through an imported module alias."""
        base = self.program.expr_target(self.module.name, expr.value) if isinstance(
            expr.value, (ast.Name, ast.Attribute)
        ) else None
        if base is not None and base.kind == "module":
            return self.program.mutable_global(base.ref, expr.attr)
        return None

    def _record_write(self, node: ast.AST, var: GlobalVar, how: str) -> None:
        self.global_writes.append(
            GlobalWrite(
                var=var,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                how=how,
            )
        )

    # -- iteration (FLOW003 sink) ----------------------------------------
    def _iterate(self, iter_expr: ast.expr) -> None:
        taints = self.eval(iter_expr)
        for p in _params_in(taints):
            self.iter_params.add(p)
        origin = taints.get(UNORD)
        if (
            origin is not None
            and origin.inter
            and self.decision
            and self.emitting
        ):
            self.an.emit(
                self.fn,
                iter_expr,
                "FLOW003",
                f"iteration over an unordered set that escaped its defining "
                f"function ({origin.desc}); scheduling decisions must scan "
                "deterministically ordered data -- sort at the boundary",
            )

    # -- expressions ------------------------------------------------------
    def eval(self, node: Optional[ast.expr]) -> Taints:
        if node is None:
            return {}
        method = getattr(self, f"eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # default: union of child expression taints
        out: Taints = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = merge(out, self.eval(child))
        return out

    def eval_Name(self, node: ast.Name) -> Taints:
        return dict(self.env.get(node.id, {}))

    def eval_Constant(self, node: ast.Constant) -> Taints:
        if isinstance(node.value, float):
            return {FLOATV: Origin(f"float literal {node.value!r}")}
        return {}

    def eval_Attribute(self, node: ast.Attribute) -> Taints:
        if node.attr == "now":
            return {TS: Origin(f"engine.now read at line {node.lineno}")}
        base = node.value
        if isinstance(base, ast.Name) and base.id in self.instance:
            stored = self.an.attr_read(self.instance[base.id], node.attr)
            return merge(dict(stored), minus(self.env.get(base.id, {}), UNORD))
        return minus(self.eval(base), UNORD)

    def eval_Lambda(self, node: ast.Lambda) -> Taints:
        self.eval(node.body)  # sinks inside the body still count
        return {LOCALFN: Origin(f"lambda defined at line {node.lineno}")}

    def eval_BinOp(self, node: ast.BinOp) -> Taints:
        left, right = self.eval(node.left), self.eval(node.right)
        both = merge(left, right)
        if isinstance(node.op, ast.Div):
            self._check_division(node, both)
            for p in _params_in(both):
                self.float_div_params.add(p)
            return merge(minus(both, TS), {FLOATV: Origin("true-division result")})
        if isinstance(node.op, (ast.Sub, ast.Mod)):
            if TS in both:
                # timestamp - timestamp = duration, the sanctioned form.
                # A non-constant other operand is treated as a paired
                # timestamp too (``now - prev`` where prev is a stored
                # snapshot or parameter); only constant offsets keep the
                # taint, since ``now - 5`` is still a timestamp.
                ts_minus_const = (
                    isinstance(node.op, ast.Sub)
                    and (
                        (TS in left and TS not in right and isinstance(node.right, ast.Constant))
                        or (TS in right and TS not in left and isinstance(node.left, ast.Constant))
                    )
                )
                if not ts_minus_const:
                    return minus(both, TS)
            return both
        return both

    def _check_division(self, node: ast.AST, taints: Taints) -> None:
        origin = taints.get(TS)
        if origin is None or not self.time_scope or not self.emitting:
            return
        if isinstance(node, ast.expr) and _mentions_now(node):
            return  # SIM004 already flags the syntactic form
        self.an.emit(
            self.fn,
            node,
            "FLOW001",
            f"true division on a value derived from engine.now "
            f"({origin.desc}); engine time is integer microseconds -- "
            "use // or subtract timestamps into a duration first",
        )

    def eval_UnaryOp(self, node: ast.UnaryOp) -> Taints:
        return self.eval(node.operand)

    def eval_BoolOp(self, node: ast.BoolOp) -> Taints:
        return merge(*(self.eval(v) for v in node.values))

    def eval_Compare(self, node: ast.Compare) -> Taints:
        self.eval(node.left)
        for c in node.comparators:
            self.eval(c)
        return {}

    def eval_IfExp(self, node: ast.IfExp) -> Taints:
        self.eval(node.test)
        return merge(self.eval(node.body), self.eval(node.orelse))

    def eval_Subscript(self, node: ast.Subscript) -> Taints:
        self.eval(node.slice)
        return minus(self.eval(node.value), UNORD)

    def eval_Await(self, node: ast.Await) -> Taints:
        return self.eval(node.value)

    def eval_Yield(self, node: ast.Yield) -> Taints:
        if node.value is not None:
            self.ret = merge(self.ret, self.eval(node.value))
        return {}

    def eval_YieldFrom(self, node: ast.YieldFrom) -> Taints:
        self.ret = merge(self.ret, self.eval(node.value))
        return {}

    def eval_Tuple(self, node: ast.Tuple) -> Taints:
        return merge(*(self.eval(e) for e in node.elts)) if node.elts else {}

    eval_List = eval_Tuple

    def eval_Set(self, node: ast.Set) -> Taints:
        inner = merge(*(self.eval(e) for e in node.elts)) if node.elts else {}
        return merge(inner, {UNORD: Origin(f"set literal at line {node.lineno}")})

    def eval_Dict(self, node: ast.Dict) -> Taints:
        parts = [self.eval(k) for k in node.keys if k is not None]
        parts += [self.eval(v) for v in node.values]
        return merge(*parts) if parts else {}

    def _eval_comprehension(self, node, elts: list) -> Taints:
        out: Taints = {}
        for gen in node.generators:
            self._iterate(gen.iter)
            t_iter = self.eval(gen.iter)
            self.assign_to(gen.target, minus(t_iter, UNORD))
            for cond in gen.ifs:
                self.eval(cond)
            out = merge(out, {UNORD: t_iter[UNORD]} if UNORD in t_iter else {})
        for e in elts:
            out = merge(out, self.eval(e))
        return out

    def eval_ListComp(self, node: ast.ListComp) -> Taints:
        return self._eval_comprehension(node, [node.elt])

    def eval_GeneratorExp(self, node: ast.GeneratorExp) -> Taints:
        return self._eval_comprehension(node, [node.elt])

    def eval_SetComp(self, node: ast.SetComp) -> Taints:
        inner = self._eval_comprehension(node, [node.elt])
        return merge(
            inner, {UNORD: Origin(f"set comprehension at line {node.lineno}")}
        )

    def eval_DictComp(self, node: ast.DictComp) -> Taints:
        return self._eval_comprehension(node, [node.key, node.value])

    def eval_JoinedStr(self, node: ast.JoinedStr) -> Taints:
        for v in node.values:
            self.eval(v)
        return {}

    def eval_Starred(self, node: ast.Starred) -> Taints:
        return self.eval(node.value)

    # -- calls -------------------------------------------------------------
    def eval_Call(self, node: ast.Call) -> Taints:
        self._last_call_class = None
        pos = [self.eval(a.value if isinstance(a, ast.Starred) else a) for a in node.args]
        kws = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg is not None
        }
        anon_kw = [self.eval(kw.value) for kw in node.keywords if kw.arg is None]
        all_args = pos + list(kws.values()) + anon_kw
        func = node.func

        builtin = self._eval_builtin(node, func, pos, all_args)
        if builtin is not None:
            return builtin

        if isinstance(func, ast.Attribute):
            special = self._eval_attr_call(node, func, pos, kws, all_args)
            if special is not None:
                return special

        callee, target = self._resolve_callee(func)
        if target.kind in ("function", "class", "external"):
            self._check_spec_sink(node, target, pos, kws, all_args)
        if target.kind == "external" and self._is_random_source(target, node):
            return {
                RAND: Origin(f"global randomness from {target.dotted} at line {node.lineno}")
            }

        if callee is not None:
            return self._apply_summary(node, callee, pos, kws)

        # unknown callee: pass taints through conservatively, except the
        # kinds that would smear.  Timestamps survive the *receiver* of a
        # method call (`self._last.get(tid)` returns what the dict holds)
        # but not the arguments -- `now` is handed to every program hook
        # without the result being a timestamp (resolved calls keep
        # precise summaries either way).
        base_taints: Taints = {}
        if isinstance(func, ast.Attribute):
            base_taints = self.eval(func.value)
        arg_taints = minus(merge(*all_args) if all_args else {}, TS)
        return minus(merge(base_taints, arg_taints), UNORD, LOCALFN)

    def _eval_builtin(
        self,
        node: ast.Call,
        func: ast.expr,
        pos: list,
        all_args: list,
    ) -> Optional[Taints]:
        if not isinstance(func, ast.Name) or func.id in self.assigned:
            return None
        name = func.id
        if name == "sorted":
            return minus(merge(*all_args) if all_args else {}, UNORD)
        if name in ("set", "frozenset"):
            inner = merge(*all_args) if all_args else {}
            return merge(
                inner, {UNORD: Origin(f"{name}(...) constructed at line {node.lineno}")}
            )
        if name in _ORDER_PRESERVING:
            return merge(*all_args) if all_args else {}
        if name in _ORDER_INSENSITIVE:
            return minus(merge(*all_args) if all_args else {}, UNORD)
        if name in _INT_COERCIONS:
            return minus(merge(*all_args) if all_args else {}, FLOATV)
        if name in _PLAIN_RESULT:
            for t in all_args:
                pass  # arguments were already evaluated for sinks
            return {}
        if name == "float":
            t = merge(*all_args) if all_args else {}
            origin = t.get(TS)
            if (
                origin is not None
                and self.time_scope
                and self.emitting
                and node.args
                and not _mentions_now(node.args[0])
            ):
                self.an.emit(
                    self.fn,
                    node,
                    "FLOW001",
                    f"float() applied to a value derived from engine.now "
                    f"({origin.desc}); engine time is integer microseconds",
                )
            for p in _params_in(t):
                self.float_div_params.add(p)
            return merge(t, {FLOATV: Origin("float() conversion")})
        if name == "next" and len(node.args) == 1 and isinstance(node.args[0], ast.Name):
            var = self._global_for(node.args[0])
            if var is not None and var.kind == "iterator":
                self._record_write(node, var, "advances")
            return {}
        return None

    def _eval_attr_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        pos: list,
        kws: dict,
        all_args: list,
    ) -> Optional[Taints]:
        attr = func.attr
        if attr == "keys" and not node.args:
            base = self.eval(func.value)
            return merge(
                minus(base, UNORD),
                {UNORD: Origin(f".keys() view at line {node.lineno}")},
            )
        if attr in ("schedule", "schedule_at"):
            self.eval(func.value)
            time_arg: Optional[Taints] = None
            for kw_name in ("delay", "time"):
                if kw_name in kws:
                    time_arg = kws[kw_name]
                    break
            if time_arg is None and pos:
                time_arg = pos[0]
            if time_arg is not None:
                origin = time_arg.get(FLOATV)
                if origin is not None and origin.inter and self.emitting:
                    self.an.emit(
                        self.fn,
                        node,
                        "FLOW001",
                        f"float-valued time reaches {attr}() across a call "
                        f"boundary ({origin.desc}); engine time is integer "
                        "microseconds -- coerce with int()/math.ceil() at "
                        "the producer",
                    )
                for p in _params_in(time_arg):
                    self.sched_time_params.add(p)
            return None  # fall through for callee resolution
        if attr in ("ceil", "floor", "trunc"):
            base = self.program.expr_target(self.module.name, func.value) if isinstance(
                func.value, (ast.Name, ast.Attribute)
            ) else None
            if base is not None and base.kind == "external" and base.ref == "math":
                return minus(merge(*all_args) if all_args else {}, FLOATV)
        if attr in _MUTATORS:
            var = self._global_for(func.value)
            if var is not None:
                self._record_write(node, var, f"calls .{attr}() on")
        return None

    def _resolve_callee(
        self, func: ast.expr
    ) -> tuple[Optional[FunctionInfo], Target]:
        program = self.program
        target = Target("unknown", "")
        if isinstance(func, ast.Name):
            if func.id in self.assigned:
                return None, target
            target = program.resolve_name(self.module.name, func.id)
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in self.instance:
                fq = program.method_on(self.instance[base.id], func.attr)
                if fq is not None:
                    return program.functions.get(fq), Target("function", fq)
                return None, target
            target = program.expr_target(self.module.name, func)
        if target.kind == "function":
            return program.functions.get(target.ref), target
        if target.kind == "class":
            self._last_call_class = target.ref
            return program.constructor_of(target.ref), target
        return None, target

    def _is_random_source(self, target: Target, node: ast.Call) -> bool:
        dotted = target.dotted
        if dotted == "random.Random" and node.args:
            return False  # seeded generator: the SimRng discipline
        if dotted == "random" or dotted.startswith("random."):
            return True
        if dotted == "numpy.random" or dotted.startswith(("numpy.random.", "np.random.")):
            return True
        return False

    def _check_spec_sink(
        self,
        node: ast.Call,
        target: Target,
        pos: list,
        kws: dict,
        all_args: list,
    ) -> None:
        dotted = target.dotted
        leaf = dotted.rsplit(".", 1)[-1]
        is_sink = (
            leaf in _SPEC_SINK_NAMES and ".store" in f".{dotted}"
        ) or dotted.endswith(("RunSpec.make", ".RunSpec"))
        if not is_sink:
            return
        for t in all_args:
            origin = t.get(LOCALFN)
            if origin is not None and self.emitting:
                self.an.emit(
                    self.fn,
                    node,
                    "FLOW005",
                    f"{origin.desc} flows into store spec-key construction "
                    f"({leaf}); closures have no stable identity, so this "
                    "raises UnstorableSpecError at run time -- pass a "
                    "module-level function or an AppSpec instead",
                )
            for p in _params_in(t):
                self.spec_sink_params.add(p)

    def _apply_summary(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        pos: list,
        kws: dict,
    ) -> Taints:
        summary = self.an.summary_of(callee.qual)
        self.calls.add(callee.qual)
        params = callee.params
        bound: dict[str, Taints] = {}
        for i, t in enumerate(pos):
            if i < len(params):
                bound[params[i]] = t
        for name, t in kws.items():
            if name in params:
                bound[name] = t

        callee_decision = callee.module.in_dirs(DECISION_DIRS)
        callee_time = callee.module.in_dirs(TIME_DIRS)
        for pname, t in sorted(bound.items()):
            if pname in summary.float_div_params and TS in t and callee_time:
                if self.emitting:
                    self.an.emit(
                        self.fn,
                        node,
                        "FLOW001",
                        f"engine-timestamp value ({t[TS].desc}) passed to "
                        f"{callee.name}(), which applies float arithmetic to "
                        f"parameter {pname!r}; engine time is integer "
                        "microseconds",
                    )
            if pname in summary.sched_time_params and FLOATV in t:
                if self.emitting:
                    self.an.emit(
                        self.fn,
                        node,
                        "FLOW001",
                        f"float-valued expression ({t[FLOATV].desc}) passed to "
                        f"{callee.name}(), which forwards parameter {pname!r} "
                        "to an engine schedule time; engine time is integer "
                        "microseconds",
                    )
            if pname in summary.iter_params and UNORD in t and callee_decision:
                if self.emitting:
                    self.an.emit(
                        self.fn,
                        node,
                        "FLOW003",
                        f"unordered set ({t[UNORD].desc}) passed to "
                        f"{callee.name}() in a scheduling-decision module, "
                        f"which iterates parameter {pname!r}; sort before "
                        "handing sets to decision code",
                    )
            if pname in summary.spec_sink_params and LOCALFN in t:
                if self.emitting:
                    self.an.emit(
                        self.fn,
                        node,
                        "FLOW005",
                        f"{t[LOCALFN].desc} passed to {callee.name}(), which "
                        f"forwards parameter {pname!r} into store spec-key "
                        "construction; closures raise UnstorableSpecError -- "
                        "pass a module-level function instead",
                    )
            if RAND in t and callee_decision:
                if self.emitting:
                    self.an.emit(
                        self.fn,
                        node,
                        "FLOW002",
                        f"value carrying global randomness ({t[RAND].desc}) "
                        f"passed into scheduling-decision code "
                        f"({callee.name}()); draw from the seeded "
                        "repro.sim.rng.SimRng streams instead",
                    )
            # transitive sink summaries for our own parameters
            for caller_param in _params_in(t):
                if pname in summary.float_div_params:
                    self.float_div_params.add(caller_param)
                if pname in summary.sched_time_params:
                    self.sched_time_params.add(caller_param)
                if pname in summary.iter_params and callee_decision:
                    self.iter_params.add(caller_param)
                if pname in summary.spec_sink_params:
                    self.spec_sink_params.add(caller_param)

        result: Taints = {}
        for token, origin in summary.returns.items():
            if token.startswith(_PARAM):
                pname = token[len(_PARAM) :]
                if pname in bound:
                    for tok, orig in bound[pname].items():
                        result.setdefault(tok, _via(orig, callee.name))
            else:
                result.setdefault(token, _via(origin, callee.name))

        if RAND in result and self.decision and self.emitting:
            self.an.emit(
                self.fn,
                node,
                "FLOW002",
                f"call to {callee.name}() returns a value carrying global "
                f"randomness ({result[RAND].desc}) into a scheduling-decision "
                "module; draw from the seeded repro.sim.rng.SimRng streams "
                "instead",
            )
        return result
