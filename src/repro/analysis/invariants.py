"""Runtime invariant checking for the scheduling simulator.

The paper's speed metric and the balancer's correctness rest on
properties that ordinary assertions scattered through the code cannot
see whole: execution-time accounting must conserve busy time, the
event clock must never run backwards, and the speed balancer's
migration policy (two-interval post-migration block, NUMA-domain
fence) must actually hold at every migration, not just in the code
that tries to enforce it.

:class:`InvariantChecker` is an opt-in observer installed on a
:class:`~repro.system.System` (and its engine).  It validates, at each
event dispatch and each migration:

======== ==============================================================
INV001   Event time is monotonically non-decreasing.
INV002   Per-task ``t_exec <= t_real``: a task cannot have occupied
         cores for longer than the wall-clock time since it started
         (``speed = t_exec / t_real`` must lie in [0, 1] modulo
         measurement noise, which is added downstream).
INV003   Per-core busy-time conservation: the sum of charged execution
         slices equals the core's accumulated ``busy_us``.
INV004   At most one running task per core, and the running task's
         ``state``/``cur_core`` agree with the core that hosts it.
INV005   The speed balancer's post-migration block: a ``speed.pull``
         migration may not involve a core that was itself involved in
         a pull within the block window (two balance intervals by
         default, scaled by the per-level multiplier).
INV006   Domain fences: a ``speed.pull`` migration may not cross a
         scheduling-domain level that every managing balancer has
         disabled (by default, NUMA -- "on NUMA systems we prevent
         inter-NUMA-domain migration").
======== ==============================================================

Violations raise :class:`InvariantViolation` (a
:class:`~repro.sim.engine.SimulationError`) carrying the rule id and
the most recent event trace, so a failing run points at *where* the
simulation went wrong rather than at mysteriously wrong Figure 3/4
numbers at the end.

Usage::

    system = System(machine, seed=0)
    checker = install_invariant_checker(system)   # opt in
    ... run ...
    checker.stats  # {'events': ..., 'charges': ..., 'migrations': ...}

The test suite installs a checker on every :class:`System` it builds
(see ``tests/conftest.py``), and ``repro check --invariants`` runs a
smoke matrix of balancer/workload combinations under it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.task import Task, TaskState
from repro.sim.engine import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.core import CoreSim
    from repro.system import MigrationRecord, System

__all__ = [
    "INVARIANTS",
    "InvariantViolation",
    "InvariantConfig",
    "InvariantChecker",
    "install_invariant_checker",
]

#: rule id -> one-line description (mirrors the module docstring table)
INVARIANTS: dict[str, str] = {
    "INV001": "event time must be monotonically non-decreasing",
    "INV002": "per-task t_exec must not exceed t_real",
    "INV003": "per-core busy time must equal the sum of charged slices",
    "INV004": "at most one running task per core, with consistent state",
    "INV005": "no speed.pull involving a core inside its migration-block window",
    "INV006": "no speed.pull across a fenced scheduling domain (NUMA by default)",
}


class InvariantViolation(SimulationError):
    """A runtime invariant failed.

    Attributes
    ----------
    rule:
        The violated rule id (``"INV001"`` .. ``"INV006"``).
    time:
        Simulation time (microseconds) at detection.
    trace:
        The most recent dispatched events, oldest first, as
        ``"t=<us> <label>"`` strings -- the offending event last.
    """

    def __init__(self, rule: str, message: str, time: int, trace: list[str]):
        self.rule = rule
        self.time = time
        self.trace = trace
        tail = "\n  ".join(trace) if trace else "(no events dispatched yet)"
        super().__init__(
            f"{rule} violated at t={time}us: {message}\n"
            f"  [{INVARIANTS.get(rule, '?')}]\n"
            f"recent events:\n  {tail}"
        )


@dataclass
class InvariantConfig:
    """Tunables of the checker.

    Attributes
    ----------
    scan_stride:
        Full consistency scans (INV004 walks every core and task) run
        once per this many dispatched events; cheap O(1) checks run on
        every event/charge.  1 scans at every event -- exact but slow
        on long runs.  Scans additionally run at every migration.
    trace_len:
        How many recent events the violation trace keeps.
    check_balancer_policy:
        Enable INV005/INV006 (requires attached speed balancers; the
        pure-mechanism invariants INV001..INV004 are always checked).
    """

    scan_stride: int = 32
    trace_len: int = 16
    check_balancer_policy: bool = True


class InvariantChecker:
    """Observer enforcing INV001..INV006 on a live :class:`System`."""

    def __init__(self, system: "System", config: Optional[InvariantConfig] = None):
        self.system = system
        self.config = config or InvariantConfig()
        self._trace: deque[str] = deque(maxlen=self.config.trace_len)
        self._last_event_time: int = system.engine.now
        self._events_until_scan: int = self.config.scan_stride
        # busy-time conservation baselines: the checker may be installed
        # on a system that has already run
        self._busy_baseline: dict[int, int] = {}
        self._charged: dict[int, int] = {}
        self._installed = False
        self.stats: dict[str, int] = {"events": 0, "charges": 0, "migrations": 0, "scans": 0}

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "InvariantChecker":
        """Register the observer hooks.  Idempotent."""
        if self._installed:
            return self
        for core in self.system.cores:
            self._busy_baseline[core.cid] = core.stats.busy_us
            self._charged[core.cid] = 0
        self.system.engine.observers.append(self._on_event)
        self.system.charge_observers.append(self._on_charge)
        self.system.migration_observers.append(self._on_migration)
        self.system.invariant_checker = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Remove the observer hooks."""
        if not self._installed:
            return
        self.system.engine.observers.remove(self._on_event)
        self.system.charge_observers.remove(self._on_charge)
        self.system.migration_observers.remove(self._on_migration)
        if self.system.invariant_checker is self:
            self.system.invariant_checker = None
        self._installed = False

    # ------------------------------------------------------------------
    def _fail(self, rule: str, message: str) -> None:
        raise InvariantViolation(
            rule, message, self.system.engine.now, list(self._trace)
        )

    # ------------------------------------------------------------------
    # engine hook: every dispatched event
    # ------------------------------------------------------------------
    def _on_event(self, ev: Event) -> None:
        self.stats["events"] += 1
        self._trace.append(f"t={ev.time} {ev.label or '<unlabelled>'}")
        if ev.time < self._last_event_time:
            self._fail(
                "INV001",
                f"event {ev.label!r} fires at t={ev.time} after the clock "
                f"reached t={self._last_event_time}",
            )
        self._last_event_time = ev.time
        self._events_until_scan -= 1
        if self._events_until_scan <= 0:
            self._events_until_scan = self.config.scan_stride
            self._scan_running_state()

    # ------------------------------------------------------------------
    # system hook: every execution-time charge
    # ------------------------------------------------------------------
    def _on_charge(self, core: "CoreSim", task: Task, dt: int) -> None:
        self.stats["charges"] += 1
        now = self.system.engine.now
        if dt < 0:
            self._fail("INV003", f"negative charge of {dt}us to {task.name}")
        # INV002: t_exec <= t_real
        if task.started_at is not None:
            t_real = now - task.started_at
            if task.exec_us > t_real:
                self._fail(
                    "INV002",
                    f"task {task.name} has t_exec={task.exec_us}us > "
                    f"t_real={t_real}us (started at t={task.started_at}); "
                    f"speed would exceed 1",
                )
        # INV003: charged slices must account for all busy time
        charged = self._charged[core.cid] = self._charged[core.cid] + dt
        busy = core.stats.busy_us - self._busy_baseline[core.cid]
        if charged != busy:
            self._fail(
                "INV003",
                f"core {core.cid} busy_us advanced by {busy}us but the sum "
                f"of charged task slices is {charged}us (drift "
                f"{busy - charged:+d}us)",
            )

    # ------------------------------------------------------------------
    # system hook: every migration
    # ------------------------------------------------------------------
    def _on_migration(self, task: Task, rec: "MigrationRecord") -> None:
        self.stats["migrations"] += 1
        self._scan_running_state()
        if not self.config.check_balancer_policy:
            return
        if rec.reason != "speed.pull" or rec.src is None:
            return
        balancers = self._managing_balancers(task, rec.src, rec.dst)
        if not balancers:
            return  # pull by an actor the checker cannot attribute
        self._check_pull_block(rec, balancers)
        self._check_domain_fence(rec, balancers)

    def _managing_balancers(self, task: Task, src: int, dst: int) -> list:
        """Speed balancers that manage ``task`` and span both cores."""
        out = []
        for b in self.system.user_balancers:
            app = getattr(b, "app", None)
            cores = getattr(b, "requested_cores", None)
            cfg = getattr(b, "config", None)
            if app is None or cores is None or cfg is None:
                continue
            if task in getattr(app, "tasks", []) and src in cores and dst in cores:
                out.append(b)
        return out

    def _check_pull_block(self, rec: "MigrationRecord", balancers: list) -> None:
        """INV005: both involved cores must be outside their block window.

        Mirrors ``SpeedBalancer._try_pull``: the destination's window is
        scaled by the same-core multiplier (1.0), the source's by the
        (dst, src) domain-level multiplier.  The balancer records the
        involvement *after* the migration succeeds, so at this point
        ``last_migration_at`` still holds the previous involvement.
        """
        now = self.system.engine.now
        assert rec.src is not None
        never = -(10**12)
        for b in balancers:
            cfg = b.config
            block = cfg.post_migration_block_intervals * cfg.interval_us
            dst_gap = now - b.last_migration_at.get(rec.dst, never)
            src_gap = now - b.last_migration_at.get(rec.src, never)
            if dst_gap >= block * b._block_mult(rec.dst, rec.dst) and src_gap >= (
                block * b._block_mult(rec.dst, rec.src)
            ):
                return  # at least one managing balancer legitimizes the pull
        self._fail(
            "INV005",
            f"speed.pull of {rec.task_name} from core {rec.src} to core "
            f"{rec.dst} inside the post-migration block window "
            f"(last involvements: "
            f"src={max(b.last_migration_at.get(rec.src, never) for b in balancers)}, "
            f"dst={max(b.last_migration_at.get(rec.dst, never) for b in balancers)})",
        )

    def _check_domain_fence(self, rec: "MigrationRecord", balancers: list) -> None:
        """INV006: the crossed domain level must be enabled somewhere."""
        assert rec.src is not None
        level = self.system.machine.domain_level_between(rec.src, rec.dst)
        if level is None:
            return
        if any(b.config.level_enabled.get(level, True) for b in balancers):
            return
        self._fail(
            "INV006",
            f"speed.pull of {rec.task_name} crossed the fenced "
            f"{level.name} domain boundary (core {rec.src} -> {rec.dst}); "
            f"every managing balancer has {level.name} migrations disabled",
        )

    # ------------------------------------------------------------------
    # full consistency scan (INV004)
    # ------------------------------------------------------------------
    def _scan_running_state(self) -> None:
        self.stats["scans"] += 1
        running_on: dict[int, Task] = {}
        for task in self.system.tasks:
            if task.state != TaskState.RUNNING:
                continue
            cid = task.cur_core
            if cid is None:
                self._fail(
                    "INV004", f"running task {task.name} is not placed on any core"
                )
                continue  # pragma: no cover - _fail always raises
            other = running_on.get(cid)
            if other is not None:
                self._fail(
                    "INV004",
                    f"two running tasks on core {cid}: {other.name} and {task.name}",
                )
            running_on[cid] = task
        for core in self.system.cores:
            cur = core.current
            expected = running_on.get(core.cid)
            if cur is not None:
                if cur.state != TaskState.RUNNING or cur.cur_core != core.cid:
                    self._fail(
                        "INV004",
                        f"core {core.cid} believes it runs {cur.name} but the "
                        f"task is {cur.state.value} on core {cur.cur_core}",
                    )
            elif expected is not None:
                self._fail(
                    "INV004",
                    f"task {expected.name} is RUNNING on core {core.cid} but "
                    f"the core is not executing it",
                )

    def __repr__(self) -> str:
        return (
            f"<InvariantChecker events={self.stats['events']} "
            f"charges={self.stats['charges']} migrations={self.stats['migrations']}>"
        )


def install_invariant_checker(
    system: "System", config: Optional[InvariantConfig] = None
) -> InvariantChecker:
    """Create and install a checker on ``system`` (the one-call opt-in)."""
    return InvariantChecker(system, config).install()
