"""Compiled-kernel readiness analyzer (KERN rules).

The ROADMAP's remaining raw-speed item is a mypyc-/Cython-compiled
``sim.engine`` + ``sched.core`` kernel registered as a third engine
backend.  That port only works if the kernel zone (``repro.sim.*``,
``repro.sched.*``, ``repro.balance.*``, ``repro.mem.*``) is a
*compilable subset*: fixed class layouts, type-stable attributes,
fully annotated hot signatures, no per-event closures, no dynamic
dispatch probes.  This package proves those properties statically,
reusing the FLOW analyzer's module loader, name-resolved call graph
and converged call summaries (the fixpoint provides the
dispatch-reachability edges).

Layering mirrors :mod:`repro.analysis.flow`: ``rules`` (catalogue +
finding type) -> ``analyzer`` (the three analysis passes) ->
``baseline``/``cli`` (strict ratchet + reporting).  Suppressions and
allowlists reuse the shared :mod:`repro.analysis.suppress`
conventions, so ``# sim-lint: ignore[KERN005]`` works exactly like
its SIM/FLOW counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import suppress
from repro.analysis.flow.callgraph import build_index
from repro.analysis.flow.modules import load_modules
from repro.analysis.flow.summaries import FlowAnalysis
from repro.analysis.kernel.analyzer import (
    KERN007_BUDGET,
    KERNEL_ZONE,
    KernelAnalysis,
    kernel_module,
)
from repro.analysis.kernel.rules import KERN_RULES, KernelFinding, KernelRule

__all__ = [
    "KERN_RULES",
    "KernelRule",
    "KernelFinding",
    "KernelReport",
    "KERNEL_ZONE",
    "KERN007_BUDGET",
    "DEFAULT_ALLOWLIST",
    "DEFAULT_BASELINE",
    "kernel_module",
    "analyze_paths",
    "kernel_paths",
]

#: shipped zero-entry allowlist, next to the linter's and flow's
DEFAULT_ALLOWLIST = Path(__file__).resolve().parent.parent / "kernel_allowlist.txt"
#: committed findings baseline (strict ratchet; see ``kernel.baseline``)
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "kernel_baseline.txt"


@dataclass
class KernelReport:
    """The outcome of one kernel readiness analysis."""

    findings: list[KernelFinding]
    errors: list[tuple[str, int, int, str]]  # unparseable files
    modules: int  # modules analyzed (whole tree, for name resolution)
    kernel_modules: int  # modules inside the kernel zone
    reachable: int  # dispatch-reachable functions


def analyze_paths(
    paths: Iterable[str | Path],
    allowlist: Sequence[tuple[str, str]] = (),
) -> KernelReport:
    """Run the full pipeline over every ``*.py`` under ``paths``.

    The whole tree is loaded (cross-zone calls must resolve) but
    findings are only emitted for kernel-zone modules.
    """
    modules = load_modules(paths)
    program = build_index(modules)
    flow = FlowAnalysis(program)
    flow.solve()
    analysis = KernelAnalysis(program, flow)
    raw = analysis.run()

    by_path = {str(m.path): m for m in modules}
    findings: list[KernelFinding] = []
    for f in raw:
        module = by_path.get(f.path)
        if module is not None:
            if suppress.has_skip_file(module.source):
                continue
            if suppress.is_suppressed(f.rule, f.line, module.lines):
                continue
        if suppress.allowlisted(f.rule, f.path, allowlist):
            continue
        findings.append(f)
    return KernelReport(
        findings=findings,
        errors=list(modules.errors),
        modules=len(modules),
        kernel_modules=sum(1 for m in modules if kernel_module(m.name)),
        reachable=len(analysis.reachable),
    )


def kernel_paths(
    paths: Iterable[str | Path],
    allowlist: Sequence[tuple[str, str]] = (),
) -> list[KernelFinding]:
    """Findings for ``paths`` (the test-friendly entry point)."""
    return analyze_paths(paths, allowlist).findings
