"""The compiled-kernel readiness analysis (KERN001..KERN008).

Three passes over the program index the FLOW analyzer already builds:

1. **Attribute discipline** (KERN001/KERN002).  Every kernel-zone
   class gets an attribute table: the declared set (``__slots__``,
   class-level assignments, dataclass fields, everything ``self.x =``
   in ``__init__``/``__post_init__`` -- of the class *and its
   resolvable bases*) and, per attribute, the set of statically
   inferable assigned types.  The scan covers *all* kernel-zone
   functions, not just methods: a helper holding a typed reference to
   an instance (parameter annotation or constructor call) that invents
   an attribute or assigns a conflicting type is the cross-function
   case a per-class scan misses.
2. **Module hygiene** (KERN006).  A syntactic walk of each kernel
   module for constructs no Python compiler accepts: ``eval``/
   ``exec``/``locals()``/``globals()``/``vars()``/``compile``/
   ``__import__``, ``metaclass=`` arguments and dynamic attribute
   hooks.
3. **Dispatch reachability** (KERN003/004/005/007/008).  Entry points
   are the engine-loop surface (``run``/``step``/``dispatch``/
   ``_drain`` in ``repro.sim.*``) plus every *escaped callback*: a
   kernel-zone function whose bound reference appears in a value
   position anywhere in the program (``self._oce = self._on_core_event``,
   ``core.idle_callbacks.append(self._idle_steal)``) or that is called
   from inside a lambda/nested def (the closure itself escapes into
   the event system, so its callees run at dispatch time).  A BFS over
   the converged FLOW call summaries -- augmented with typed-attribute
   edges (``self.rq.push(...)`` resolves through the ``__init__``
   assignment ``self.rq = CfsRunQueue()``) and subclass override
   propagation -- marks the hot set; the per-event rules fire only
   inside it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.flow.callgraph import FunctionInfo, ProgramIndex
from repro.analysis.flow.summaries import FlowAnalysis
from repro.analysis.kernel.rules import KernelFinding

__all__ = [
    "KERNEL_ZONE",
    "ENTRY_NAMES",
    "KERN007_BUDGET",
    "KernelAnalysis",
    "kernel_module",
]

#: module-name prefixes that make up the kernel (compilation) zone
KERNEL_ZONE = ("repro.sim", "repro.sched", "repro.balance", "repro.mem")

#: engine-loop surface: functions with these names in ``repro.sim.*``
#: are dispatch roots even without an escaped reference
ENTRY_NAMES = frozenset({"run", "step", "dispatch", "_drain"})

#: per-function budget of in-loop container allocations (KERN007); the
#: heap triple ``(time, seq, event)`` and one scratch container are the
#: sanctioned per-event allocations
KERN007_BUDGET = 2

#: constructors that allocate a container (KERN007)
_CONTAINER_CALLS = frozenset(
    {"list", "dict", "set", "frozenset", "tuple", "bytearray", "deque"}
)

#: names whose call is never compilable (KERN006)
_FORBIDDEN_CALLS = frozenset(
    {"eval", "exec", "locals", "globals", "vars", "compile", "__import__"}
)

#: defining any of these on a kernel class is dynamic-attribute
#: machinery the compiler cannot see through (KERN006)
_DYNAMIC_HOOKS = frozenset(
    {"__getattr__", "__getattribute__", "__setattr__", "__delattr__"}
)

#: methods that may create instance attributes (KERN001 exemption)
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__init_subclass__"})

#: builtin container types KERN002 can name from a literal/constructor
_LITERAL_TYPES = {
    ast.List: "list",
    ast.ListComp: "list",
    ast.Dict: "dict",
    ast.DictComp: "dict",
    ast.Set: "set",
    ast.SetComp: "set",
    ast.Tuple: "tuple",
}


def kernel_module(name: str) -> bool:
    """Is dotted module ``name`` inside the kernel zone?"""
    return any(name == z or name.startswith(z + ".") for z in KERNEL_ZONE)


@dataclass
class _AttrSite:
    """One ``<instance>.attr = value`` assignment."""

    fn: FunctionInfo
    node: ast.AST
    method: Optional[str]  # method name when assigned via self, else None
    typ: Optional[str]  # inferred type, None = not inferable


@dataclass
class _ClassTable:
    """Attribute discipline state for one kernel class."""

    declared: set[str] = field(default_factory=set)  # __init__/slots/class level
    has_slots: bool = False
    sites: dict[str, list[_AttrSite]] = field(default_factory=dict)

    def record(self, attr: str, site: _AttrSite) -> None:
        self.sites.setdefault(attr, []).append(site)


class KernelAnalysis:
    """Drives the three passes and collects the findings."""

    def __init__(self, program: ProgramIndex, flow: FlowAnalysis):
        self.program = program
        self.flow = flow
        self.findings: list[KernelFinding] = []
        self._seen: set = set()
        self.tables: dict[str, _ClassTable] = {}
        #: class qual -> attr -> class quals the attr may hold
        self.attr_classes: dict[str, dict[str, frozenset[str]]] = {}
        self.reachable: dict[str, str] = {}  # qual -> witness entry point
        self._ancestry_cache: dict[str, list[str]] = {}
        self._env_cache: dict[str, dict[str, frozenset[str]]] = {}

    # -- shared ----------------------------------------------------------
    def emit(self, fn_qual: str, module, node: ast.AST, rule: str, message: str) -> None:
        path = str(module.path)
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        key = (path, line, col, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            KernelFinding(
                path=path, line=line, col=col, rule=rule,
                message=message, function=fn_qual,
            )
        )

    def _kernel_functions(self) -> Iterator[FunctionInfo]:
        for qual in sorted(self.program.functions):
            fn = self.program.functions[qual]
            if kernel_module(fn.module.name):
                yield fn

    def run(self) -> list[KernelFinding]:
        self._collect_attr_types()
        self._env_cache.clear()  # final envs must see the settled map
        self._collect_attr_tables()
        self._report_attr_rules()
        self._report_module_hygiene()
        self._compute_reachability()
        self._report_hot_rules()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self.findings

    # ------------------------------------------------------------------
    # class hierarchy helpers
    # ------------------------------------------------------------------
    def _ancestry(self, class_qual: str) -> list[str]:
        """The class and its resolvable bases, nearest first."""
        cached = self._ancestry_cache.get(class_qual)
        if cached is not None:
            return cached
        out: list[str] = []
        frontier = [class_qual]
        while frontier:
            q = frontier.pop(0)
            if q in out:
                continue
            out.append(q)
            info = self.program.classes.get(q)
            if info is None:
                continue
            for base in info.node.bases:
                t = self.program.expr_target(info.module.name, base)
                if t.kind == "class":
                    frontier.append(t.ref)
        self._ancestry_cache[class_qual] = out
        return out

    def _same_class_family(self, cls: str, class_qual: str) -> bool:
        """Is ``class_qual`` the same class as ``cls`` or a subclass?"""
        return cls in self._ancestry(class_qual)

    def _declared_attrs(self, class_qual: str) -> set[str]:
        declared: set[str] = set()
        for q in self._ancestry(class_qual):
            table = self.tables.get(q)
            if table is not None:
                declared |= table.declared
        return declared

    def _attr_classes_of(self, class_qual: str, attr: str) -> frozenset[str]:
        for q in self._ancestry(class_qual):
            found = self.attr_classes.get(q, {}).get(attr)
            if found:
                return found
        return frozenset()

    # ------------------------------------------------------------------
    # typed-attribute map: class -> attr -> classes it may hold
    # ------------------------------------------------------------------
    def _collect_attr_types(self) -> None:
        # two rounds so one level of attribute-read chaining settles
        # (``self.engine = system.engine`` needs System's map first);
        # cached envs resolve through attr_classes, so drop them between
        # rounds while the map is still growing
        for _ in range(2):
            self._env_cache.clear()
            for qual in sorted(self.program.classes):
                info = self.program.classes[qual]
                table = self.attr_classes.setdefault(qual, {})
                for item in info.node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        cls = self._annotation_class(item.annotation, info.module.name)
                        if cls is not None:
                            table.setdefault(item.target.id, frozenset({cls}))
                ctor = self.program.constructor_of(qual)
                if ctor is None:
                    continue
                self_name = ctor.self_name
                if self_name is None:
                    continue
                env = self._typed_env(ctor)
                for node in ast.walk(ctor.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    ann: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value, ann = node.target, node.value, node.annotation
                    else:
                        continue
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        continue
                    classes: frozenset[str] = frozenset()
                    if ann is not None:
                        cls = self._annotation_class(ann, ctor.module.name)
                        if cls is not None:
                            classes = frozenset({cls})
                    if not classes and value is not None:
                        classes = self._value_classes(value, ctor, env)
                    if classes:
                        current = table.get(target.attr, frozenset())
                        table[target.attr] = current | classes

    def _value_classes(
        self, value: ast.expr, fn: FunctionInfo, env: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        """Which in-index classes a value expression may construct."""
        if isinstance(value, ast.IfExp):
            return self._value_classes(value.body, fn, env) | self._value_classes(
                value.orelse, fn, env
            )
        if isinstance(value, ast.Call):
            target = self.program.expr_target(fn.module.name, value.func)
            if target.kind == "class":
                return frozenset({target.ref})
            if target.kind == "function":
                callee = self.program.functions.get(target.ref)
                if callee is not None and callee.node.returns is not None:
                    cls = self._annotation_class(
                        callee.node.returns, callee.module.name
                    )
                    if cls is not None:
                        return frozenset({cls})
            return frozenset()
        if isinstance(value, (ast.Name, ast.Attribute)):
            return self._expr_instance_classes(value, fn, env)
        return frozenset()

    def _typed_env(self, fn: FunctionInfo) -> dict[str, frozenset[str]]:
        """Local name -> possible in-index classes, for call edges."""
        cached = self._env_cache.get(fn.qual)
        if cached is not None:
            return cached
        env: dict[str, frozenset[str]] = {}
        if fn.class_qual is not None and fn.self_name is not None:
            env[fn.self_name] = frozenset({fn.class_qual})
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                cls = self._annotation_class(arg.annotation, fn.module.name)
                if cls is not None:
                    env[arg.arg] = frozenset({cls})
        # two rounds so ``rq = self.rq`` settles after ``self``
        for _ in range(2):
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    continue
                name = node.targets[0].id
                if name in env:
                    continue
                classes = self._value_classes(node.value, fn, env)
                if classes:
                    env[name] = classes
        self._env_cache[fn.qual] = env
        return env

    def _expr_instance_classes(
        self, expr: ast.expr, fn: FunctionInfo, env: dict[str, frozenset[str]], _depth: int = 0
    ) -> frozenset[str]:
        """Classes an expression may be an instance of (depth-capped)."""
        if _depth > 4:
            return frozenset()
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            out: set[str] = set()
            for base_cls in self._expr_instance_classes(
                expr.value, fn, env, _depth + 1
            ):
                out |= self._attr_classes_of(base_cls, expr.attr)
            return frozenset(out)
        return frozenset()

    # ------------------------------------------------------------------
    # pass 1: attribute discipline (KERN001/KERN002)
    # ------------------------------------------------------------------
    def _collect_attr_tables(self) -> None:
        for qual in sorted(self.program.classes):
            info = self.program.classes[qual]
            if not kernel_module(info.module.name):
                continue
            table = self.tables.setdefault(qual, _ClassTable())
            for item in info.node.body:
                if isinstance(item, ast.Assign):
                    for t in item.targets:
                        if isinstance(t, ast.Name):
                            if t.id == "__slots__":
                                table.has_slots = True
                                table.declared.update(self._slot_names(item.value))
                            else:
                                table.declared.add(t.id)
                elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    # class-level annotation: a declared (dataclass) field
                    table.declared.add(item.target.id)

        # first the constructors (they define the declared set), then
        # every other kernel function (they may only touch declared attrs)
        ctor_fns, other_fns = [], []
        for fn in self._kernel_functions():
            if fn.class_qual is not None and fn.name in _CTOR_METHODS:
                ctor_fns.append(fn)
            else:
                other_fns.append(fn)
        for fn in ctor_fns:
            self._scan_function_attrs(fn, declaring=True)
        for fn in other_fns:
            self._scan_function_attrs(fn, declaring=False)

    @staticmethod
    def _slot_names(value: ast.expr) -> list[str]:
        names: list[str] = []
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append(elt.value)
        elif isinstance(value, ast.Constant) and isinstance(value.value, str):
            names.append(value.value)
        return names

    def _scan_function_attrs(self, fn: FunctionInfo, declaring: bool) -> None:
        instance = self._instance_map(fn)
        if not instance:
            return
        method = fn.name if fn.class_qual is not None else None
        for node in ast.walk(fn.node):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value, annotation = [node.target], node.value, node.annotation
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], None
            else:
                continue
            for t in targets:
                if not (isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)):
                    continue
                cls = instance.get(t.value.id)
                if cls is None or cls not in self.tables:
                    continue
                table = self.tables[cls]
                via_self = (
                    fn.class_qual is not None
                    and t.value.id == fn.self_name
                    and self._same_class_family(cls, fn.class_qual)
                )
                typ = (
                    self._annotation_type(annotation, fn)
                    if annotation is not None
                    else self._infer_type(value, fn)
                )
                site = _AttrSite(fn=fn, node=t, method=method if via_self else None, typ=typ)
                table.record(t.attr, site)
                if declaring and via_self:
                    table.declared.add(t.attr)

    def _instance_map(self, fn: FunctionInfo) -> dict[str, str]:
        """Local name -> kernel-class qual, from self/annotations/ctors.

        Single-class resolution only: the attribute rules need one
        definite class to charge a site to (ambiguous receivers would
        produce speculative findings).
        """
        instance: dict[str, str] = {}
        if fn.class_qual is not None and fn.self_name is not None:
            instance[fn.self_name] = fn.class_qual
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                cls = self._annotation_class(arg.annotation, fn.module.name)
                if cls is not None:
                    instance[arg.arg] = cls
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                target = self.program.expr_target(fn.module.name, node.value.func)
                if target.kind == "class":
                    instance[node.targets[0].id] = target.ref
        return instance

    def _annotation_class(self, annotation: ast.expr, module_name: str) -> Optional[str]:
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # C | None / None | C keeps the class
            left, right = node.left, node.right
            if isinstance(left, ast.Constant) and left.value is None:
                node = right
            elif isinstance(right, ast.Constant) and right.value is None:
                node = left
            else:
                return None
        if isinstance(node, ast.Subscript):
            # Optional[C] keeps the class; other generics do not name an
            # instance whose attributes we can track
            base = node.value
            leaf = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
            if leaf != "Optional":
                return None
            node = node.slice
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                try:
                    node = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return None
        if not isinstance(node, (ast.Name, ast.Attribute)):
            return None
        target = self.program.expr_target(module_name, node)
        return target.ref if target.kind == "class" else None

    # -- KERN002 type inference -----------------------------------------
    def _infer_type(self, value: Optional[ast.expr], fn: FunctionInfo) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, ast.Constant):
            if value.value is None:
                return "None"
            if value.value is True or value.value is False:
                return "int"  # bool is an int subtype; stable under mypyc
            return type(value.value).__name__
        if isinstance(value, ast.UnaryOp) and isinstance(value.op, (ast.USub, ast.UAdd)):
            return self._infer_type(value.operand, fn)
        for node_type, name in _LITERAL_TYPES.items():
            if isinstance(value, node_type):
                return name
        if isinstance(value, ast.Lambda):
            return "callable"
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id in _CONTAINER_CALLS | {
                "int",
                "float",
                "str",
                "bool",
                "bytes",
            }:
                return "int" if func.id == "bool" else func.id
            target = self.program.expr_target(fn.module.name, func)
            if target.kind == "class":
                return target.ref.rsplit(":", 1)[-1].rsplit(".", 1)[-1]
            if target.kind == "function":
                callee = self.program.functions.get(target.ref)
                if callee is not None and callee.node.returns is not None:
                    return self._annotation_type(callee.node.returns, callee)
        return None

    def _annotation_type(self, annotation: Optional[ast.expr], fn: FunctionInfo) -> Optional[str]:
        """Normalize an annotation to a KERN002 type name (best effort)."""
        if annotation is None:
            return None
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = node.value
            leaf = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
            if leaf == "Optional":
                return self._annotation_type(node.slice, fn)
            return leaf.lower() if leaf is not None else None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # X | None / None | X -> X; anything else is a union we skip
            left = self._annotation_type(node.left, fn)
            right = self._annotation_type(node.right, fn)
            if left == "None":
                return right
            if right == "None":
                return left
            return None
        if isinstance(node, ast.Constant) and node.value is None:
            return "None"
        if isinstance(node, (ast.Name, ast.Attribute)):
            target = self.program.expr_target(fn.module.name, node)
            if target.kind == "class":
                return target.ref.rsplit(":", 1)[-1].rsplit(".", 1)[-1]
            leaf = node.id if isinstance(node, ast.Name) else node.attr
            return "int" if leaf == "bool" else leaf
        return None

    # -- reporting -------------------------------------------------------
    def _report_attr_rules(self) -> None:
        for cls in sorted(self.tables):
            cls_name = cls.rsplit(":", 1)[-1]
            declared = self._declared_attrs(cls)
            own_sites = self.tables[cls].sites
            for attr in sorted(own_sites):
                if not attr.startswith("__"):
                    self._check_kern001(cls_name, declared, attr, own_sites[attr])
                # KERN002 sees the whole family: a subclass method
                # re-typing an attribute declared by the base is exactly
                # the instability a per-class view would miss
                family_sites = list(own_sites[attr])
                for q in self._ancestry(cls)[1:]:
                    family_sites.extend(self.tables.get(q, _ClassTable()).sites.get(attr, []))
                self._check_kern002(cls_name, attr, family_sites)

    def _check_kern001(
        self,
        cls_name: str,
        declared: set[str],
        attr: str,
        sites: list[_AttrSite],
    ) -> None:
        if attr in declared:
            return
        # every assignment to an undeclared attribute is a creation site
        for site in sites:
            where = (
                f"method {site.method}()"
                if site.method is not None
                else f"{site.fn.name}() via a typed reference"
            )
            self.emit(
                site.fn.qual,
                site.fn.module,
                site.node,
                "KERN001",
                f"attribute `{attr}` created on kernel class {cls_name} in "
                f"{where}, outside __init__/__slots__; compiled classes have "
                "a fixed layout -- declare it in the constructor",
            )

    def _check_kern002(self, cls_name: str, attr: str, sites: list[_AttrSite]) -> None:
        typed = [(s, s.typ) for s in sites if s.typ is not None]
        kinds = sorted({t for _, t in typed})
        non_none = [t for t in kinds if t != "None"]
        if len(non_none) <= 1:
            return
        first_of: dict[str, _AttrSite] = {}
        for s, t in typed:
            first_of.setdefault(t, s)
        # anchor at the site introducing the second distinct type
        anchor = first_of[non_none[1]]
        self.emit(
            anchor.fn.qual,
            anchor.fn.module,
            anchor.node,
            "KERN002",
            f"attribute `{attr}` of kernel class {cls_name} is assigned "
            f"incompatible types across the class ({', '.join(non_none)}); "
            "type-unstable fields cannot be unboxed -- pick one type "
            "(None plus one type is fine)",
        )

    # ------------------------------------------------------------------
    # pass 2: module hygiene (KERN006)
    # ------------------------------------------------------------------
    def _report_module_hygiene(self) -> None:
        for module in sorted(self.program.modules, key=lambda m: m.name):
            if not kernel_module(module.name):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id in _FORBIDDEN_CALLS:
                        self.emit(
                            module.name,
                            module,
                            node,
                            "KERN006",
                            f"call to {node.func.id}() in a kernel module; "
                            "dynamic code execution/frame introspection is "
                            "not compilable",
                        )
                elif isinstance(node, ast.ClassDef):
                    for kw in node.keywords:
                        if kw.arg == "metaclass":
                            self.emit(
                                f"{module.name}:{node.name}",
                                module,
                                node,
                                "KERN006",
                                f"kernel class {node.name} uses a metaclass; "
                                "compiled classes must use plain `type`",
                            )
                    for item in node.body:
                        if (
                            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and item.name in _DYNAMIC_HOOKS
                        ):
                            self.emit(
                                f"{module.name}:{node.name}.{item.name}",
                                module,
                                item,
                                "KERN006",
                                f"kernel class {node.name} defines "
                                f"{item.name}; dynamic attribute hooks "
                                "defeat the fixed compiled layout",
                            )

    # ------------------------------------------------------------------
    # pass 3: dispatch reachability (KERN003/004/005/007/008)
    # ------------------------------------------------------------------
    def _entry_points(self) -> dict[str, str]:
        """qual -> reason, for every dispatch entry point."""
        roots: dict[str, str] = {}
        for fn in self._kernel_functions():
            if fn.name in ENTRY_NAMES and fn.module.name.startswith("repro.sim"):
                roots.setdefault(fn.qual, "engine-loop entry")
        for qual in sorted(self.program.functions):
            fn = self.program.functions[qual]
            for escaped in sorted(set(self._escaped_refs(fn))):
                if kernel_module(self.program.functions[escaped].module.name):
                    roots.setdefault(
                        escaped, f"callback reference escapes in {fn.name}()"
                    )
        return roots

    def _escaped_refs(self, fn: FunctionInfo) -> Iterator[str]:
        """In-index functions whose bound reference escapes from ``fn``.

        A reference escapes when it appears outside call position
        (stored, passed, returned), or when it is *called* from inside
        a lambda or nested def -- the closure is handed to the event
        system, so everything it calls runs at dispatch time.
        """
        env = self._typed_env(fn)

        def resolve(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Name):
                target = self.program.resolve_name(fn.module.name, expr.id)
                if target.kind == "function":
                    return target.ref
                return None
            if isinstance(expr, ast.Attribute):
                for cls in self._expr_instance_classes(expr.value, fn, env):
                    meth = self.program.method_on(cls, expr.attr)
                    if meth is not None:
                        return meth
                target = self.program.expr_target(fn.module.name, expr)
                if target.kind == "function":
                    return target.ref
            return None

        def walk(node: ast.AST, in_closure: bool) -> Iterator[str]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.Call):
                    # the callee itself is escape-exempt unless we are
                    # already inside an escaping closure
                    if in_closure:
                        ref = resolve(child.func)
                        if ref is not None:
                            yield ref
                    else:
                        # still look *inside* the callee expression
                        # (e.g. a subscripted table of methods)
                        for sub in ast.iter_child_nodes(child.func):
                            yield from walk_expr(sub, in_closure)
                    for arg in child.args:
                        yield from walk_expr(arg, in_closure)
                    for kw in child.keywords:
                        yield from walk_expr(kw.value, in_closure)
                elif isinstance(child, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from walk(child, True)
                else:
                    yield from walk_expr(child, in_closure)

        def walk_expr(node: ast.AST, in_closure: bool) -> Iterator[str]:
            if isinstance(node, (ast.Name, ast.Attribute)):
                ref = resolve(node)
                if ref is not None:
                    yield ref
                    return
            if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(node, True)
                return
            yield from walk(node, in_closure)

        yield from walk(fn.node, False)

    def _overrides_of(self, qual: str) -> Iterator[str]:
        """Same-named methods on subclasses of the method's class."""
        fn = self.program.functions.get(qual)
        if fn is None or fn.class_qual is None:
            return
        for cls_qual in sorted(self.program.classes):
            if cls_qual == fn.class_qual:
                continue
            if not self._same_class_family(fn.class_qual, cls_qual):
                continue
            info = self.program.classes[cls_qual]
            if fn.name in info.methods:
                yield info.methods[fn.name]

    def _typed_call_edges(self, fn: FunctionInfo) -> Iterator[str]:
        """Call edges through typed attributes (``self.rq.push(...)``)."""
        env = self._typed_env(fn)
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            for cls in sorted(self._expr_instance_classes(node.func.value, fn, env)):
                meth = self.program.method_on(cls, node.func.attr)
                if meth is not None:
                    yield meth

    def _compute_reachability(self) -> None:
        witness = self.reachable
        frontier: list[str] = []
        for qual, reason in sorted(self._entry_points().items()):
            if qual not in witness:
                witness[qual] = reason
                frontier.append(qual)
        while frontier:
            next_frontier: list[str] = []
            for qual in frontier:
                fn = self.program.functions[qual]
                neighbours = list(sorted(self.flow.summary_of(qual).calls))
                neighbours.extend(sorted(set(self._typed_call_edges(fn))))
                neighbours.extend(self._overrides_of(qual))
                for callee in neighbours:
                    if callee not in witness and callee in self.program.functions:
                        witness[callee] = witness[qual]
                        next_frontier.append(callee)
            frontier = next_frontier

    # -- the per-event rules ---------------------------------------------
    def _report_hot_rules(self) -> None:
        for fn in self._kernel_functions():
            if fn.qual not in self.reachable:
                continue
            via = self.reachable[fn.qual]
            self._check_kern003(fn, via)
            self._check_kern004(fn, via)
            self._check_kern005(fn, via)
            self._check_kern007(fn, via)
            self._check_kern008(fn, via)

    @staticmethod
    def _is_any(annotation: ast.expr) -> bool:
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.strip() in ("Any", "typing.Any")
        if isinstance(node, ast.Name):
            return node.id == "Any"
        return isinstance(node, ast.Attribute) and node.attr == "Any"

    def _check_kern003(self, fn: FunctionInfo, via: str) -> None:
        args = fn.node.args
        params = list(args.posonlyargs + args.args + args.kwonlyargs)
        if fn.class_qual is not None and not fn.is_static and params:
            params = params[1:]  # self/cls needs no annotation
        missing = [p.arg for p in params if p.annotation is None]
        anys = [p.arg for p in params if p.annotation is not None and self._is_any(p.annotation)]
        no_return = fn.node.returns is None
        any_return = fn.node.returns is not None and self._is_any(fn.node.returns)
        if not (missing or anys or no_return or any_return):
            return
        problems = []
        if missing:
            problems.append(f"un-annotated parameter(s) {', '.join(sorted(missing))}")
        if anys:
            problems.append(f"Any-typed parameter(s) {', '.join(sorted(anys))}")
        if no_return:
            problems.append("missing return annotation")
        if any_return:
            problems.append("Any return annotation")
        self.emit(
            fn.qual,
            fn.module,
            fn.node,
            "KERN003",
            f"{fn.name}() is dispatch-reachable ({via}) but has "
            f"{'; '.join(problems)}; hot calls need precise static types "
            "to compile",
        )

    def _check_kern004(self, fn: FunctionInfo, via: str) -> None:
        args = fn.node.args
        if args.vararg is not None or args.kwarg is not None:
            star = "*" + args.vararg.arg if args.vararg is not None else "**" + args.kwarg.arg
            self.emit(
                fn.qual,
                fn.module,
                fn.node,
                "KERN004",
                f"{fn.name}() is dispatch-reachable ({via}) but takes "
                f"`{star}`; variadic signatures stay boxed when compiled -- "
                "spell the parameters out",
            )
        for node in self._own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            splat = any(isinstance(a, ast.Starred) for a in node.args) or any(
                kw.arg is None for kw in node.keywords
            )
            if splat:
                self.emit(
                    fn.qual,
                    fn.module,
                    node,
                    "KERN004",
                    f"argument splat in dispatch-reachable {fn.name}() "
                    f"({via}); *-/**-calls allocate a tuple/dict per call -- "
                    "pass arguments positionally",
                )

    def _check_kern005(self, fn: FunctionInfo, via: str) -> None:
        for node in ast.walk(fn.node):
            if node is fn.node:
                continue
            if isinstance(node, ast.Lambda):
                self.emit(
                    fn.qual,
                    fn.module,
                    node,
                    "KERN005",
                    f"lambda created in dispatch-reachable {fn.name}() "
                    f"({via}); per-event closures allocate and defeat "
                    "direct calls -- hoist to a method or precompute",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.emit(
                    fn.qual,
                    fn.module,
                    node,
                    "KERN005",
                    f"nested def {node.name}() in dispatch-reachable "
                    f"{fn.name}() ({via}); per-event closures allocate -- "
                    "hoist to a method",
                )

    def _own_nodes(self, fn: FunctionInfo) -> Iterator[ast.AST]:
        """Walk ``fn``'s body without descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # KERN005's territory
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_kern007(self, fn: FunctionInfo, via: str) -> None:
        allocations: list[ast.AST] = []
        loops: list[ast.AST] = []
        for node in self._own_nodes(fn):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                loops.append(node)
        for loop in loops:
            body = loop.body + getattr(loop, "orelse", [])
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(
                        node,
                        (
                            ast.List,
                            ast.Dict,
                            ast.Set,
                            ast.ListComp,
                            ast.DictComp,
                            ast.SetComp,
                            ast.GeneratorExp,
                        ),
                    ):
                        allocations.append(node)
                    elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
                        allocations.append(node)
                    elif (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in _CONTAINER_CALLS
                    ):
                        allocations.append(node)
        if len(allocations) <= KERN007_BUDGET:
            return
        allocations.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
        first_over = allocations[KERN007_BUDGET]
        self.emit(
            fn.qual,
            fn.module,
            first_over,
            "KERN007",
            f"{len(allocations)} container allocations inside loops of "
            f"dispatch-reachable {fn.name}() ({via}), over the "
            f"per-function budget of {KERN007_BUDGET}; the per-event inner "
            "loop must run allocation-free -- hoist or reuse buffers",
        )

    def _check_kern008(self, fn: FunctionInfo, via: str) -> None:
        for node in self._own_nodes(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("isinstance", "hasattr")
            ):
                probe = node.func.id
                fix = (
                    "use a `type(x) is C` check on a known class or an "
                    "explicit kind field"
                    if probe == "isinstance"
                    else "declare the attribute in __init__ and test an "
                    "explicit flag"
                )
                self.emit(
                    fn.qual,
                    fn.module,
                    node,
                    "KERN008",
                    f"{probe}() probe in dispatch-reachable {fn.name}() "
                    f"({via}); runtime type/attribute dispatch defeats "
                    f"static binding -- {fix}",
                )
