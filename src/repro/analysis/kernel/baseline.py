"""Strict-ratchet baseline for the kernel analyzer.

Same semantics as the FLOW baseline (one fingerprint per line, new
findings AND stale entries both fail, ``--write-baseline`` regenerates)
-- the fingerprinting, parsing and ratchet application are imported
from :mod:`repro.analysis.flow.baseline`, which only reads the
``rule``/``path``/``function`` fields both finding types share.  Only
the file header differs, so a regenerated kernel baseline names the
right tool.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.flow.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
)
from repro.analysis.kernel.rules import KernelFinding

__all__ = [
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "format_baseline",
    "write_baseline",
]

_HEADER = """\
# Findings baseline for the kernel readiness analyzer (strict ratchet).
#
# One fingerprint per line: RULE repro-relative-path:function-qual [xN]
# New findings not listed here FAIL the run; listed entries with no
# matching finding ALSO fail (delete fixed debt).  Regenerate with:
#   python -m repro.analysis kernel --write-baseline
"""


def format_baseline(findings: Iterable[KernelFinding]) -> str:
    counts = Counter(fingerprint(f) for f in findings)
    lines = [_HEADER]
    for fp in sorted(counts):
        n = counts[fp]
        lines.append(fp if n == 1 else f"{fp} x{n}")
    return "\n".join(lines) + "\n"


def write_baseline(findings: Sequence[KernelFinding], path: Path) -> None:
    path.write_text(format_baseline(findings))
