"""Command line entry point: ``python -m repro.analysis kernel``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import reporting, suppress
from repro.analysis.kernel import (
    DEFAULT_ALLOWLIST,
    DEFAULT_BASELINE,
    KERN_RULES,
    analyze_paths,
)
from repro.analysis.kernel.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis kernel",
        description=(
            "Compiled-kernel readiness analyzer: proves the hot core "
            "(repro.sim/sched/balance/mem) is a type-stable, compilable "
            "subset (KERN rules)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze "
        "(default: src/repro, or the installed repro package)",
    )
    reporting.add_format_argument(parser)
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=DEFAULT_ALLOWLIST,
        help="RULE path-glob allowlist file (default: the shipped one)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore the allowlist entirely",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="findings baseline file (default: the shipped one)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="restrict to these KERN rule ids (repeatable)",
    )
    return parser


def _default_paths() -> list[str]:
    if Path("src/repro").is_dir():
        return ["src/repro"]
    import repro

    return [str(Path(repro.__file__).resolve().parent)]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    paths = args.paths or _default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"kernel: error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.select:
        unknown = sorted(set(args.select) - set(KERN_RULES))
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    allowlist: list[tuple[str, str]] = []
    if not args.no_allowlist and args.allowlist.exists():
        allowlist = suppress.load_allowlist(args.allowlist, frozenset(KERN_RULES))

    report = analyze_paths(paths, allowlist)
    findings = report.findings
    if args.select:
        selected = set(args.select)
        findings = [f for f in findings if f.rule in selected]

    for path, line, col, message in report.errors:
        print(f"{path}:{line}:{col}: {message}", file=sys.stderr)

    if args.write_baseline:
        write_baseline(findings, args.baseline)
        print(
            f"kernel: wrote {len(findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    stale: list[str] = []
    if not args.no_baseline and args.baseline.exists():
        allowed = load_baseline(args.baseline, frozenset(KERN_RULES))
        findings, stale = apply_baseline(findings, allowed)

    reporting.emit_findings(findings, args.format)
    for fp in stale:
        print(
            f"stale baseline entry (finding fixed -- delete it): {fp}",
            file=sys.stderr,
        )

    failed = bool(findings) or bool(stale) or bool(report.errors)
    if args.format == "text":
        summary = (
            f"kernel: {len(findings)} new finding(s), {len(stale)} stale "
            f"baseline entr{'y' if len(stale) == 1 else 'ies'} across "
            f"{report.kernel_modules} kernel module(s) "
            f"({report.modules} loaded), {report.reachable} "
            "dispatch-reachable function(s)"
        )
        print(summary, file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
