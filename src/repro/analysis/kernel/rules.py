"""The KERN rule catalogue and finding type.

The KERN rules prove the kernel zone (``repro.sim.*``, ``repro.sched.*``,
``repro.balance.*``, ``repro.mem.*``) is a *compilable subset*: the
restrictions a mypyc- or Cython-compiled engine core imposes, enforced
statically before the port is attempted so the compiled backend cannot
diverge from the interpreted one.  KERN001/002/006 apply to every
kernel-zone class and module; KERN003/004/005/007/008 apply only to
functions reachable from an engine/dispatch entry point (the same
call-graph BFS the FLOW004 rule uses).

======== =============================================================
KERN001  Attribute created outside ``__init__``/``__slots__`` on a
         kernel class -- including monkeypatched methods and dynamic
         attributes attached to an instance from another function.
         Compiled classes have a fixed struct layout; late attribute
         creation is an AttributeError under mypyc.
KERN002  Attribute assigned incompatible types across the class (or
         across functions that hold a typed reference to an
         instance): type-unstable slots force boxed "object" fields
         and defeat unboxing.  ``None`` plus exactly one other type
         is tolerated (an Optional field).
KERN003  Un-annotated or ``Any``-typed function reachable from an
         engine/dispatch entry point: every hot call must have a
         precise static signature for the compiler to specialize.
KERN004  ``*args``/``**kwargs`` in a hot function's signature, or an
         argument-splat call on a hot call chain: variadic calling
         conventions stay generic (tuple/dict boxing) when compiled.
KERN005  Lambda, closure or nested def created inside a
         dispatch-reachable function: per-event closure allocation
         stays a heap-allocated PyObject under the compiler and
         blocks the direct-call optimization.
KERN006  Non-compilable construct in a kernel module: ``eval``,
         ``exec``, ``locals()``, ``globals()``, ``vars()``,
         ``compile``, ``__import__``, a ``metaclass=`` argument, or a
         dynamic attribute hook (``__getattr__``,
         ``__getattribute__``, ``__setattr__``, ``__delattr__``).
KERN007  Container allocation (list/dict/set/tuple literal or
         comprehension) inside a loop of a dispatch-reachable
         function beyond the per-function budget: the per-event
         inner loop must run allocation-free to hit the compiled
         target.
KERN008  ``isinstance``/``hasattr`` probing in dispatch-reachable
         code: type- or attribute-existence dispatch defeats static
         method binding -- use an explicit flag attribute or a
         ``type(x) is C`` check on a known class.
======== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelRule", "KERN_RULES", "KernelFinding"]


@dataclass(frozen=True)
class KernelRule:
    """One rule of the KERN catalogue."""

    id: str
    summary: str


KERN_RULES: dict[str, KernelRule] = {
    r.id: r
    for r in (
        KernelRule(
            "KERN001",
            "attribute created outside __init__/__slots__ on a kernel class",
        ),
        KernelRule(
            "KERN002",
            "attribute assigned incompatible types across the class",
        ),
        KernelRule(
            "KERN003",
            "un-annotated or Any-typed function on a dispatch-reachable path",
        ),
        KernelRule(
            "KERN004",
            "*args/**kwargs signature or argument splat on a hot call chain",
        ),
        KernelRule(
            "KERN005",
            "closure/lambda/nested def created on a per-event path",
        ),
        KernelRule(
            "KERN006",
            "non-compilable construct (eval/exec/locals/metaclass/dynamic hooks)",
        ),
        KernelRule(
            "KERN007",
            "container allocation in a dispatch-reachable loop beyond budget",
        ),
        KernelRule(
            "KERN008",
            "isinstance/hasattr dispatch in dispatch-reachable code",
        ),
    )
}


@dataclass(frozen=True)
class KernelFinding:
    """One violation of the compilable-subset discipline."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    function: str  # qualified name of the offending function or class

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "function": self.function,
        }
