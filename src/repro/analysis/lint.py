"""AST-based determinism linter for the simulator sources.

The simulator promises bit-reproducible runs: integer-microsecond event
time, seeded stream-separated randomness, and scheduling decisions that
depend only on deterministically ordered data.  This module enforces
the coding rules that promise rests on, as a custom linter (generic
tools cannot know that ``repro.sim.rng`` is the only legal randomness
source, or that ``engine.now`` must stay an ``int``).

Rule catalogue
--------------
======== =============================================================
SIM001   Iteration over an unordered ``set``/``frozenset`` (or a
         ``.keys()`` view) in a *scheduling-decision module* -- any
         file under ``balance/``, ``sched/`` or ``core/``.  Iteration
         order of a set is arbitrary, so a victim/candidate scan over
         one makes migration decisions irreproducible.  Use
         ``sorted(...)`` or an explicitly ordered container.
SIM002   Use of the global :mod:`random` module (or ``numpy.random``)
         instead of the seeded, stream-separated
         :class:`repro.sim.rng.SimRng`.
SIM003   Wall-clock reads -- ``time.time()``, ``time.monotonic()``,
         ``datetime.now()`` and friends.  Simulation code must use
         ``engine.now`` exclusively.
SIM004   Float arithmetic on engine timestamps: true division applied
         to ``engine.now`` (or a bare ``now``), ``float(...now)``, or
         a float-valued delay passed to ``Engine.schedule`` /
         ``Engine.schedule_at``.  Engine time is integer microseconds.
SIM005   Mutable default argument (``def f(x=[])``): shared mutable
         state across calls is a classic source of run-order coupling.
SIM006   Unordered filesystem iteration -- ``os.listdir``,
         ``os.scandir``, ``glob.glob``/``iglob``, ``Path.iterdir``/
         ``glob``/``rglob`` -- in a *harness or analysis module*
         without an enclosing ``sorted(...)``.  Directory order is
         filesystem-dependent, so scenario discovery, result loading
         and trace analysis would differ between machines.
SIM007   O(n) aggregate recomputation in a *hot scheduling module*
         (``sched/`` or ``core/``): ``sum``/``min``/``max``/``any``/
         ``all`` over a task or core population (``rq``, ``.tasks``,
         ``.cores``, ``runnable_tasks``).  These run per dispatch or
         per balancer wake; the aggregate must be maintained
         incrementally at mutation time instead (the way the run
         queues maintain ``total_weight``/``max_vruntime`` and the
         system maintains the per-scope memory-intensity index).
======== =============================================================

Suppression
-----------
Append a trailing comment on the offending line::

    for cid in candidate_set:  # sim-lint: ignore[SIM001]

``# sim-lint: ignore`` (no rule list) suppresses every rule on the
line; ``# sim-lint: skip-file`` anywhere in a file skips the file.

Allowlist
---------
A plain-text file of ``RULE  path-glob`` pairs (fnmatch against the
POSIX form of the file path) silences a rule for whole files.  The
shipped default (``lint_allowlist.txt`` next to this module) contains
exactly two entries: ``repro/sim/rng.py`` may import :mod:`random`, as
it *is* the sanctioned wrapper, and ``repro/harness/bench.py`` may
read the wall clock, as it measures the simulator from outside rather
than participating in simulated time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis import reporting, suppress

__all__ = [
    "RULES",
    "Finding",
    "LintRule",
    "DEFAULT_ALLOWLIST",
    "load_allowlist",
    "lint_source",
    "lint_paths",
    "main",
]

#: directories whose modules make scheduling decisions (SIM001 scope)
DECISION_DIRS = frozenset({"balance", "sched", "core"})

#: directories on the per-dispatch / per-wake hot path (SIM007 scope);
#: the allowlist policy keeps these at zero entries -- an O(n)
#: recomputation there is fixed by maintaining the aggregate, not excused
HOT_AGG_DIRS = frozenset({"sched", "core"})

#: aggregator builtins whose population-wide use SIM007 flags
_AGGREGATORS = frozenset({"sum", "min", "max", "any", "all"})

#: names/attributes denoting a task or core population (SIM007): the
#: run queue, task snapshots, and full-core sweeps
_POPULATION_NAMES = frozenset({"rq", "tasks", "cores", "runnable_tasks"})

#: directories whose modules enumerate the filesystem (SIM006 scope):
#: the harness discovers scenarios/results on disk, the analysis layer
#: walks sources and traces -- both must see files in a fixed order.
FS_ORDER_DIRS = frozenset({"harness", "analysis", "store", "service", "serve"})

#: filesystem-enumeration callables with platform-dependent order
#: (SIM006); matched as ``os.listdir``-style attributes, ``.iterdir()``
#: -style methods and bare names bound by ``from os import listdir``.
_FS_ITER_FUNCS = frozenset(
    {"listdir", "scandir", "glob", "iglob", "iterdir", "rglob"}
)

#: wall-clock functions of the ``time`` module (SIM003)
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: wall-clock constructors on ``datetime``/``date`` objects (SIM003)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: calls that consume an iterable order-insensitively (SIM001 exempt)
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "frozenset", "set"}
)

#: calls whose result keeps the argument's (arbitrary) iteration order
_ORDER_PRESERVING_CALLS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: int-producing wrappers that launder float arithmetic back to engine
#: time (SIM004 exempt when they enclose the flagged expression)
_INT_COERCIONS = frozenset({"int", "round", "ceil", "floor", "len"})


@dataclass(frozen=True)
class LintRule:
    """One rule of the catalogue."""

    id: str
    summary: str


RULES: dict[str, LintRule] = {
    r.id: r
    for r in (
        LintRule("SIM001", "unordered set/dict-view iteration in a decision module"),
        LintRule("SIM002", "global `random` module used instead of repro.sim.rng"),
        LintRule("SIM003", "wall-clock read in simulation code"),
        LintRule("SIM004", "float arithmetic on an engine timestamp"),
        LintRule("SIM005", "mutable default argument"),
        LintRule("SIM006", "unordered filesystem iteration in a harness/analysis module"),
        LintRule("SIM007", "O(n) aggregate recomputation in a hot scheduling module"),
    )
}


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# allowlist and suppression comments (conventions shared with the flow
# analyzer; see repro.analysis.suppress)
# ----------------------------------------------------------------------
DEFAULT_ALLOWLIST = Path(__file__).with_name("lint_allowlist.txt")


def load_allowlist(path: Path) -> list[tuple[str, str]]:
    """Parse ``RULE  glob`` lines; ``#`` comments and blanks ignored."""
    return suppress.load_allowlist(path, frozenset(RULES))


def _allowlisted(finding: Finding, allowlist: Sequence[tuple[str, str]]) -> bool:
    return suppress.allowlisted(finding.rule, finding.path, allowlist)


def _is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    return suppress.is_suppressed(finding.rule, finding.line, lines)


# ----------------------------------------------------------------------
# the visitor
# ----------------------------------------------------------------------
def _is_decision_module(path: Path) -> bool:
    return bool(DECISION_DIRS.intersection(path.parts[:-1]))


def _is_fs_order_module(path: Path) -> bool:
    return bool(FS_ORDER_DIRS.intersection(path.parts[:-1]))


def _is_hot_module(path: Path) -> bool:
    return bool(HOT_AGG_DIRS.intersection(path.parts[:-1]))


def _mentions_population(node: ast.expr) -> bool:
    """Does this expression reach into a task/core population?"""
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id in _POPULATION_NAMES:
            return True
        if isinstance(n, ast.Attribute) and n.attr in _POPULATION_NAMES:
            return True
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _SetTracker:
    """Best-effort inference of which names/attributes hold sets.

    Tracks straightforward evidence only: set literals/comprehensions,
    ``set(...)``/``frozenset(...)`` calls, and ``set``/``frozenset``/
    ``Set``/``FrozenSet``/``AbstractSet`` annotations -- on plain names
    and on ``self.x`` attributes.  No flow analysis: once a name has
    been seen holding a set anywhere in the file it is treated as one.
    """

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.set_attrs: set[str] = set()

    # -- classification ------------------------------------------------
    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name) and node.id in self.set_names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in self.set_attrs:
            return True
        return False

    @staticmethod
    def _annotation_is_set(node: ast.expr) -> bool:
        # set[int], frozenset[int], Set[int], typing.AbstractSet[int], "set[int]"
        target = node
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Constant) and isinstance(target.value, str):
            name = target.value.split("[", 1)[0].strip()
        else:
            return False
        return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")

    # -- evidence collection -------------------------------------------
    def note_assign(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if value is None or not self.is_set_expr(value):
            return
        if isinstance(target, ast.Name):
            self.set_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.set_attrs.add(target.attr)

    def note_annotation(self, target: ast.expr, annotation: ast.expr) -> None:
        if not self._annotation_is_set(annotation):
            return
        if isinstance(target, ast.Name):
            self.set_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.set_attrs.add(target.attr)


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path):
        self.path = path
        self.decision = _is_decision_module(path)
        self.fs_order = _is_fs_order_module(path)
        self.hot = _is_hot_module(path)
        self.findings: list[Finding] = []
        self.sets = _SetTracker()
        self._time_alias: set[str] = set()  # names bound to the time module
        self._dt_alias: set[str] = set()  # names bound to datetime/date classes
        self._random_alias: set[str] = set()  # names bound to the random module
        self._fs_alias: set[str] = set()  # names bound to os/glob-style fs funcs
        #: call nodes appearing as a direct argument of sorted(...) --
        #: their arbitrary order is laundered away (SIM006 exempt);
        #: populated when the enclosing sorted() call is visited, which
        #: precedes the visit of its children.
        self._sorted_args: set[int] = set()

    # -- helpers -------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # -- evidence pre-pass ---------------------------------------------
    def collect_evidence(self, tree: ast.AST) -> None:
        """One pass collecting set-typed names before judging iteration."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    self.sets.note_assign(t, node.value)
            elif isinstance(node, ast.AnnAssign):
                self.sets.note_annotation(node.target, node.annotation)
                self.sets.note_assign(node.target, node.value)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                self.sets.note_annotation(ast.Name(id=node.arg), node.annotation)

    # -- imports (SIM002 / SIM003 aliases) ------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            bound = alias.asname or root
            if root == "random":
                self._random_alias.add(bound)
                self._emit(
                    node,
                    "SIM002",
                    "import of the global `random` module; draw from "
                    "repro.sim.rng.SimRng streams instead",
                )
            elif root == "time":
                self._time_alias.add(bound)
            elif root == "datetime":
                self._dt_alias.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = (node.module or "").split(".", 1)[0]
        if mod == "random":
            self._emit(
                node,
                "SIM002",
                "import from the global `random` module; draw from "
                "repro.sim.rng.SimRng streams instead",
            )
        elif mod == "numpy" and any(a.name == "random" for a in node.names):
            self._emit(
                node,
                "SIM002",
                "numpy.random is unseeded global state; use repro.sim.rng",
            )
        elif mod == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self._emit(
                        node,
                        "SIM003",
                        f"wall-clock import time.{alias.name}; simulation code "
                        "must use engine.now",
                    )
        elif mod == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._dt_alias.add(alias.asname or alias.name)
        if mod in ("os", "glob"):
            for alias in node.names:
                if alias.name in _FS_ITER_FUNCS:
                    self._fs_alias.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls (SIM002 / SIM003 / SIM004 / SIM006) ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sorted":
            for arg in node.args:
                self._sorted_args.add(id(arg))
        self._check_fs_iteration(node)
        self._check_aggregate_sweep(node)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if owner in self._random_alias or owner == "random":
                self._emit(node, "SIM002", f"call to global random.{attr}()")
            elif owner in self._time_alias and attr in _TIME_FUNCS:
                self._emit(
                    node, "SIM003", f"wall-clock call {owner}.{attr}(); use engine.now"
                )
            elif owner in self._dt_alias and attr in _DATETIME_FUNCS:
                self._emit(
                    node, "SIM003", f"wall-clock call {owner}.{attr}(); use engine.now"
                )
            elif attr == "random" and owner in ("np", "numpy"):
                self._emit(node, "SIM002", "numpy.random call; use repro.sim.rng")
        # float(<timestamp>)
        if isinstance(func, ast.Name) and func.id == "float" and node.args:
            if _mentions_timestamp(node.args[0]):
                self._emit(
                    node,
                    "SIM004",
                    "float() applied to an engine timestamp; engine time is "
                    "integer microseconds",
                )
        # schedule/schedule_at with float-ish delay
        if isinstance(func, ast.Attribute) and func.attr in ("schedule", "schedule_at"):
            delay = self._schedule_time_arg(node)
            if delay is not None and _floatish(delay):
                self._emit(
                    node,
                    "SIM004",
                    f"float-valued time passed to {func.attr}(); engine time is "
                    "integer microseconds (wrap in int()/math.ceil())",
                )
        self.generic_visit(node)

    def _check_fs_iteration(self, node: ast.Call) -> None:
        """SIM006: unsorted filesystem enumeration in harness/analysis."""
        if not self.fs_order or id(node) in self._sorted_args:
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id not in self._fs_alias:
                return
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _FS_ITER_FUNCS:
            name = func.attr
        else:
            return
        self._emit(
            node,
            "SIM006",
            f"{name}() yields entries in filesystem-dependent order; wrap "
            "the call in sorted(...) so discovery is reproducible",
        )

    def _check_aggregate_sweep(self, node: ast.Call) -> None:
        """SIM007: population-wide aggregation in a hot scheduling module.

        Flags ``sum``/``min``/``max``/``any``/``all`` whose argument
        is a comprehension iterating a task/core population, or which
        consume such a population directly (``max(cores, key=...)``).
        Two-or-more positional scalars (``min(a, b)``) are exempt --
        that is scalar arithmetic, not a sweep.
        """
        if not self.hot:
            return
        func = node.func
        if not (isinstance(func, ast.Name) and func.id in _AGGREGATORS):
            return
        if not node.args:
            return
        arg = node.args[0]
        hit = False
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            hit = any(_mentions_population(gen.iter) for gen in arg.generators)
        elif len(node.args) == 1:
            hit = _mentions_population(arg)
        if hit:
            self._emit(
                node,
                "SIM007",
                f"{func.id}() recomputes an aggregate over a task/core "
                "population on the hot path; maintain it incrementally at "
                "mutation time (as the run queues do for total_weight/"
                "max_vruntime)",
            )

    @staticmethod
    def _schedule_time_arg(node: ast.Call) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg in ("delay", "time"):
                return kw.value
        return node.args[0] if node.args else None

    # -- division on timestamps (SIM004) --------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            for side in (node.left, node.right):
                if _is_timestamp_expr(side):
                    self._emit(
                        node,
                        "SIM004",
                        "true division on an engine timestamp produces a float; "
                        "use // for integer time",
                    )
                    break
        self.generic_visit(node)

    # -- iteration (SIM001) ---------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_iters
    visit_SetComp = visit_comprehension_iters
    visit_DictComp = visit_comprehension_iters
    visit_GeneratorExp = visit_comprehension_iters

    def _check_iteration(self, it: ast.expr) -> None:
        if not self.decision:
            return
        if self._is_unordered_iterable(it):
            self._emit(
                it,
                "SIM001",
                "iteration over an unordered set/dict view in a scheduling-"
                "decision module; wrap in sorted(...) for a reproducible order",
            )

    def _is_unordered_iterable(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name == "keys" and isinstance(node.func, ast.Attribute):
                return True
            if name in _ORDER_PRESERVING_CALLS and node.args:
                return self._is_unordered_iterable(node.args[0])
            if name in ("set", "frozenset"):
                return True
            return False
        return self.sets.is_set_expr(node)

    # -- mutable defaults (SIM005) --------------------------------------
    def _check_defaults(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                self._emit(
                    default,
                    "SIM005",
                    "mutable default argument; use None and create inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)


def _is_timestamp_expr(node: ast.expr) -> bool:
    """Does this expression *denote* an engine timestamp?

    Conservative: ``<anything>.now`` attribute reads (``engine.now``,
    ``self.engine.now``) and the bare conventional name ``now``.
    """
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    if isinstance(node, ast.Name) and node.id == "now":
        return True
    return False


def _mentions_timestamp(node: ast.expr) -> bool:
    return any(_is_timestamp_expr(n) for n in ast.walk(node))


def _floatish(node: ast.expr) -> bool:
    """Could this expression be a float?  (For schedule() delays.)

    Flags float literals and true division anywhere inside, unless an
    enclosing int-coercion call (``int``, ``round``, ``math.ceil``...)
    launders the result back to an integer.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _INT_COERCIONS:
            return False
        return any(_floatish(a) for a in node.args) or any(
            _floatish(kw.value) for kw in node.keywords
        )
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _floatish(node.left) or _floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand)
    if isinstance(node, (ast.IfExp,)):
        return _floatish(node.body) or _floatish(node.orelse)
    return False


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def lint_source(source: str, path: str | Path) -> list[Finding]:
    """Lint one module's source text.  Suppression comments applied."""
    p = Path(path)
    if suppress.has_skip_file(source):
        return []
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(p),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="SIM000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(p)
    visitor.collect_evidence(tree)
    visitor.visit(tree)
    lines = source.splitlines()
    out = [f for f in visitor.findings if not _is_suppressed(f, lines)]
    out.sort(key=lambda f: (f.line, f.col, f.rule))
    return out


def lint_paths(
    paths: Iterable[str | Path],
    allowlist: Optional[Sequence[tuple[str, str]]] = None,
) -> list[Finding]:
    """Lint files and directory trees; returns surviving findings."""
    if allowlist is None:
        allowlist = (
            load_allowlist(DEFAULT_ALLOWLIST) if DEFAULT_ALLOWLIST.exists() else []
        )
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: list[Finding] = []
    for f in files:
        for finding in lint_source(f.read_text(), f):
            if not _allowlisted(finding, allowlist):
                findings.append(finding)
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body for ``python -m repro.analysis lint``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis lint",
        description="Determinism linter for the scheduling simulator (SIM001..SIM007)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"], help="files or directories")
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help=f"per-rule allowlist file (default: {DEFAULT_ALLOWLIST})",
    )
    parser.add_argument(
        "--no-allowlist", action="store_true", help="ignore every allowlist entry"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to report (default: all)",
    )
    reporting.add_format_argument(parser)
    args = parser.parse_args(argv)

    if args.no_allowlist:
        allowlist: Optional[list[tuple[str, str]]] = []
    elif args.allowlist is not None:
        allowlist = load_allowlist(args.allowlist)
    else:
        allowlist = None  # shipped default
    findings = lint_paths(args.paths, allowlist=allowlist)
    if args.select:
        wanted = {r.strip() for r in args.select.split(",")}
        findings = [f for f in findings if f.rule in wanted]
    reporting.emit_findings(findings, args.format)
    n = len(findings)
    if n:
        if args.format == "text":
            print(f"sim-lint: {n} finding{'s' if n != 1 else ''}")
        return 1
    return 0
