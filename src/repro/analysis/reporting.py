"""Shared finding reporter for the static analyzers.

The linter (:mod:`repro.analysis.lint`) and the flow analyzer
(:mod:`repro.analysis.flow`) both emit findings shaped as
``path:line:col: RULE message``; this module renders any such finding
stream in either of two formats so every tool exposes the same
``--format text|json`` contract:

* ``text`` -- one ``Finding.format()`` line per finding (the grep- and
  editor-friendly form CI logs show);
* ``json`` -- a JSON array of plain dicts (``as_dict()`` when the
  finding type provides it, else the standard five fields), for
  dashboards and structured diffing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Any, Iterable, Optional, Protocol

__all__ = [
    "ReportableFinding",
    "FORMATS",
    "add_format_argument",
    "finding_dict",
    "render_json",
    "render_text",
    "emit_findings",
]

FORMATS = ("text", "json")


class ReportableFinding(Protocol):
    """What the reporter needs from a finding object."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str: ...


def add_format_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--format text|json`` option."""
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report findings as text lines (default) or a JSON array",
    )


def finding_dict(finding: ReportableFinding) -> dict[str, Any]:
    """A finding's JSON-ready dict (``as_dict()`` when available)."""
    as_dict = getattr(finding, "as_dict", None)
    if callable(as_dict):
        return dict(as_dict())
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
    }


def render_text(findings: Iterable[ReportableFinding]) -> list[str]:
    """One formatted line per finding."""
    return [f.format() for f in findings]


def render_json(findings: Iterable[ReportableFinding]) -> str:
    """The findings as an indented, key-sorted JSON array."""
    return json.dumps(
        [finding_dict(f) for f in findings], indent=2, sort_keys=True
    )


def emit_findings(
    findings: Iterable[ReportableFinding],
    fmt: str = "text",
    stream: Optional[IO[str]] = None,
) -> None:
    """Print the findings in ``fmt`` to ``stream`` (default stdout).

    In text mode callers follow up with their own summary line; in JSON
    mode the array is the entire output, so machine consumers never
    have to strip trailers.
    """
    out = sys.stdout if stream is None else stream
    if fmt == "json":
        print(render_json(findings), file=out)
        return
    for line in render_text(findings):
        print(line, file=out)
