"""Schedule sanitizer: post-hoc race/conservation analysis of traces.

PR 1's linter guards the *source* and its invariant checker guards the
*live* engine state; this module guards the third artifact everything
downstream is computed from -- the **recorded trace**.  Every figure,
metric and ``repro bench`` number is derived from
:class:`~repro.metrics.trace.TraceRecorder` segments and per-task
accounting, so a recording bug (or an engine bug the live checker's
sampling missed) silently corrupts results without failing anything.
The sanitizer analyzes a completed run's trace the way TSan analyzes a
threaded execution: it recomputes the properties the simulator promises
and reports each breach as a machine-readable finding.

Rule catalogue
--------------
======== =============================================================
SAN001   Migration race: the same task charged on two different cores
         in overlapping time intervals.  A task occupies one core at a
         time; overlap means a migration path charged it twice.
SAN002   Double charge: two segments on one core overlap in time.  A
         core runs one task at a time; overlap inflates ``busy_us``.
SAN003   Per-task conservation drift: a task's ``t_exec`` recomputed
         from its trace segments diverges from the accounting
         (``task.exec_us``/``AppRunResult.thread_exec_us``) that the
         speed metric ``speed = t_exec / t_real`` is built on.
SAN004   Per-core conservation drift: a core's busy time recomputed
         from the trace diverges from ``CoreStats.busy_us``.
SAN005   Recorded policy violation: a ``speed.pull`` migration event
         inside the post-migration block window implied by the
         *recorded* pull history (the trace-level cross-check of the
         live INV005).
SAN006   Recorded policy violation: a ``speed.pull`` across a
         scheduling-domain level every managing balancer has disabled
         (NUMA by default; the trace-level cross-check of INV006).
SAN007   Truncated trace: the recorder dropped segments or migration
         events beyond its limit, so every trace-derived metric of
         this run is computed from an incomplete history.
SAN008   Differential determinism divergence: two perturbed re-runs of
         the same scenario (different ``PYTHONHASHSEED`` subprocesses,
         serial vs parallel workers, observers on vs off) produced
         different canonical digests.  Emitted by
         :mod:`repro.analysis.differential`.
======== =============================================================

SAN001--SAN007 are pure functions of a finished run's artifacts; use
:func:`sanitize_system` on a traced :class:`~repro.system.System` (the
``repro sanitize`` CLI does this for every scenario smoke), or call the
individual ``check_*`` functions on hand-built traces -- the fault-
injection tests do exactly that.

Canonical digests
-----------------
:func:`trace_digest` and :func:`run_digest` reduce a run to a SHA-256
hex string over a canonical byte serialization: segments and migration
events in recorded order (with task ids renumbered densely in order of
first appearance, so the process-global tid counter cannot leak
between otherwise identical runs), the result's
:meth:`~repro.metrics.results.AppRunResult.canonical_json` and the
engine :meth:`~repro.sim.engine.Engine.fingerprint`.  Equal digests ==
bit-identical schedules; the differential checker enforces exactly
that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.metrics.trace import MigrationEvent, Segment, TraceRecorder
from repro.topology.machine import DomainLevel, Machine

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.results import AppRunResult
    from repro.sim.engine import Engine
    from repro.store import ResultStore
    from repro.system import System

__all__ = [
    "SAN_RULES",
    "SanFinding",
    "PullPolicy",
    "check_overlaps",
    "check_conservation",
    "check_pull_policy",
    "check_truncation",
    "analyze_trace",
    "sanitize_system",
    "sanitize_stored",
    "trace_digest",
    "run_digest",
]

#: rule id -> one-line description (mirrors the module docstring table)
SAN_RULES: dict[str, str] = {
    "SAN001": "migration race: one task charged on two cores in overlapping intervals",
    "SAN002": "double charge: overlapping segments on one core",
    "SAN003": "per-task t_exec from the trace diverges from the accounting",
    "SAN004": "per-core busy time from the trace diverges from the accounting",
    "SAN005": "speed.pull recorded inside the post-migration block window",
    "SAN006": "speed.pull recorded across a fenced scheduling domain",
    "SAN007": "trace truncated: records dropped beyond the recorder limit",
    "SAN008": "differential determinism divergence between perturbed runs",
}

#: cap on findings emitted per rule per analysis -- a systematically
#: corrupt trace yields thousands of identical overlaps; the first few
#: localize the bug and the count is reported in the last finding.
MAX_FINDINGS_PER_RULE = 16


@dataclass(frozen=True)
class SanFinding:
    """One sanitizer finding.

    ``citations`` are the offending trace records rendered as strings
    (segments as ``tid@core [start,end) kind``, migrations as the
    :class:`~repro.metrics.trace.MigrationEvent` fields), so a finding
    is actionable without re-running anything.
    """

    code: str  #: "SAN001" .. "SAN008"
    severity: str  #: "error" | "warning"
    message: str
    context: str = ""  #: scenario / run label
    citations: tuple[str, ...] = ()

    def format(self) -> str:
        where = f"{self.context}: " if self.context else ""
        cites = "".join(f"\n    {c}" for c in self.citations)
        return f"{where}{self.code} [{self.severity}] {self.message}{cites}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "context": self.context,
            "citations": list(self.citations),
            "rule": SAN_RULES.get(self.code, "?"),
        }


def _cite_segment(s: Segment) -> str:
    return f"segment tid={s.tid} ({s.task_name}) core={s.core} [{s.start},{s.end}) {s.kind}"


def _cite_migration(m: MigrationEvent) -> str:
    return (
        f"migration t={m.time} tid={m.tid} ({m.task_name}) "
        f"{m.src}->{m.dst} reason={m.reason!r}"
    )


class _Collector:
    """Accumulates findings with the per-rule cap applied."""

    def __init__(self, context: str):
        self.context = context
        self.findings: list[SanFinding] = []
        self._per_rule: dict[str, int] = {}

    def emit(
        self,
        code: str,
        message: str,
        citations: Sequence[str] = (),
        severity: str = "error",
    ) -> None:
        n = self._per_rule.get(code, 0) + 1
        self._per_rule[code] = n
        if n > MAX_FINDINGS_PER_RULE:
            return
        if n == MAX_FINDINGS_PER_RULE:
            message += f" (further {code} findings suppressed)"
        self.findings.append(
            SanFinding(
                code=code,
                severity=severity,
                message=message,
                context=self.context,
                citations=tuple(citations),
            )
        )


# ----------------------------------------------------------------------
# SAN001 / SAN002: overlap detection
# ----------------------------------------------------------------------
def _overlapping_pairs(
    segments: list[Segment],
) -> Iterable[tuple[Segment, Segment]]:
    """Adjacent-in-time overlapping pairs of an interval set.

    Sorts by (start, end) and sweeps with the maximum end seen so far;
    each segment starting before that maximum overlaps the segment that
    attained it.  O(n log n), and reports each breach once rather than
    quadratically.
    """
    ordered = sorted(segments, key=lambda s: (s.start, s.end))
    reach: Optional[Segment] = None
    for s in ordered:
        if reach is not None and s.start < reach.end:
            yield reach, s
        if reach is None or s.end > reach.end:
            reach = s


def check_overlaps(trace: TraceRecorder, context: str = "") -> list[SanFinding]:
    """SAN001 (same tid, two cores) and SAN002 (one core) overlaps."""
    out = _Collector(context)
    by_tid: dict[int, list[Segment]] = {}
    by_core: dict[int, list[Segment]] = {}
    for s in trace.segments:
        by_tid.setdefault(s.tid, []).append(s)
        by_core.setdefault(s.core, []).append(s)
    for tid in sorted(by_tid):
        for a, b in _overlapping_pairs(by_tid[tid]):
            if a.core == b.core:
                continue  # same-core double charge; reported by SAN002
            out.emit(
                "SAN001",
                f"task {tid} ({b.task_name}) charged on cores {a.core} and "
                f"{b.core} in overlapping intervals "
                f"[{a.start},{a.end}) and [{b.start},{b.end})",
                [_cite_segment(a), _cite_segment(b)],
            )
    for core in sorted(by_core):
        for a, b in _overlapping_pairs(by_core[core]):
            out.emit(
                "SAN002",
                f"core {core} charged twice over [{b.start},{min(a.end, b.end)}): "
                f"tasks {a.tid} ({a.task_name}) and {b.tid} ({b.task_name})",
                [_cite_segment(a), _cite_segment(b)],
            )
    return out.findings


# ----------------------------------------------------------------------
# SAN003 / SAN004: conservation
# ----------------------------------------------------------------------
def check_conservation(
    trace: TraceRecorder,
    task_exec_us: Optional[dict[int, int]] = None,
    core_busy_us: Optional[dict[int, int]] = None,
    task_names: Optional[dict[int, str]] = None,
    context: str = "",
) -> list[SanFinding]:
    """SAN003/SAN004: re-derive accounting from the trace and compare.

    ``task_exec_us`` maps tid -> accounted ``exec_us`` (tasks absent
    from the trace are expected at 0); ``core_busy_us`` maps core id ->
    accounted ``busy_us``.  A truncated trace cannot be re-summed --
    callers should gate on :func:`check_truncation` first (this
    function skips silently, the truncation finding carries the story).
    """
    out = _Collector(context)
    if trace.truncated:
        return out.findings
    names = task_names or {}
    traced_exec: dict[int, int] = {}
    traced_busy: dict[int, int] = {}
    for s in trace.segments:
        traced_exec[s.tid] = traced_exec.get(s.tid, 0) + s.duration
        traced_busy[s.core] = traced_busy.get(s.core, 0) + s.duration
    if task_exec_us is not None:
        for tid in sorted(set(traced_exec) | set(task_exec_us)):
            got = traced_exec.get(tid, 0)
            want = task_exec_us.get(tid)
            if want is None:
                out.emit(
                    "SAN003",
                    f"trace charges {got}us to task {tid} "
                    f"({names.get(tid, '?')}) which the accounting does not know",
                )
            elif got != want:
                out.emit(
                    "SAN003",
                    f"task {tid} ({names.get(tid, '?')}): trace segments sum to "
                    f"t_exec={got}us but the accounting says {want}us "
                    f"(drift {got - want:+d}us)",
                )
    if core_busy_us is not None:
        for cid in sorted(set(traced_busy) | set(core_busy_us)):
            got = traced_busy.get(cid, 0)
            want = core_busy_us.get(cid, 0)
            if got != want:
                out.emit(
                    "SAN004",
                    f"core {cid}: trace segments sum to busy={got}us but the "
                    f"accounting says {want}us (drift {got - want:+d}us)",
                )
    return out.findings


# ----------------------------------------------------------------------
# SAN005 / SAN006: recorded pull policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PullPolicy:
    """The migration-policy facts of one speed balancer, as plain data.

    Extracted from a live :class:`~repro.core.speed_balancer
    .SpeedBalancer` by :func:`sanitize_system` (or built by hand in
    tests), so the policy replay depends only on recorded history plus
    configuration -- never on balancer state.
    """

    cores: frozenset[int]
    tids: frozenset[int]
    interval_us: int
    block_intervals: float
    level_enabled: dict[DomainLevel, bool] = field(default_factory=dict)
    level_block_multiplier: dict[DomainLevel, float] = field(default_factory=dict)

    @classmethod
    def of_balancer(cls, balancer) -> Optional["PullPolicy"]:
        """Snapshot a speed balancer's policy; None if it has none."""
        app = getattr(balancer, "app", None)
        cores = getattr(balancer, "requested_cores", None)
        cfg = getattr(balancer, "config", None)
        if app is None or cores is None or cfg is None:
            return None
        return cls(
            cores=frozenset(cores),
            tids=frozenset(t.tid for t in getattr(app, "tasks", [])),
            interval_us=cfg.interval_us,
            block_intervals=cfg.post_migration_block_intervals,
            level_enabled=dict(cfg.level_enabled),
            level_block_multiplier=dict(cfg.level_block_multiplier),
        )

    def manages(self, ev: MigrationEvent) -> bool:
        return (
            ev.tid in self.tids
            and ev.src is not None
            and ev.src in self.cores
            and ev.dst in self.cores
        )

    def block_window_us(self, machine: Optional[Machine], dst: int, other: int) -> float:
        """The block window governing ``other``'s involvement in a pull
        to ``dst`` (mirrors ``SpeedBalancer._block_mult``)."""
        block = self.block_intervals * self.interval_us
        if dst == other or machine is None:
            return block
        level = machine.domain_level_between(dst, other)
        if level is None:
            return block
        return block * self.level_block_multiplier.get(level, 1.0)


def check_pull_policy(
    trace: TraceRecorder,
    policies: Sequence[PullPolicy],
    machine: Optional[Machine] = None,
    context: str = "",
) -> list[SanFinding]:
    """SAN005/SAN006: replay the recorded migration history against the
    balancer policy.

    The replay mirrors the balancer's own bookkeeping exactly: only
    successful ``speed.pull`` events update a core's involvement time,
    each pull updates both involved cores, and each balancer tracks its
    own windows (a pull is attributed to the policies that manage the
    victim's tid and span both cores).  ``machine`` supplies scheduling
    -domain levels; without one, level multipliers collapse to 1 and
    the domain-fence check (SAN006) is skipped.
    """
    out = _Collector(context)
    never = -(10**12)
    # per-policy involvement times, keyed by policy index
    involved: list[dict[int, int]] = [dict() for _ in policies]
    for ev in trace.migrations:
        if ev.reason != "speed.pull" or ev.src is None:
            continue
        managing = [i for i, p in enumerate(policies) if p.manages(ev)]
        if not managing:
            continue  # a pull the recorded policies cannot attribute
        if machine is not None:
            level = machine.domain_level_between(ev.src, ev.dst)
            if level is not None and not any(
                policies[i].level_enabled.get(level, True) for i in managing
            ):
                out.emit(
                    "SAN006",
                    f"speed.pull of task {ev.tid} ({ev.task_name}) at t={ev.time} "
                    f"crossed the fenced {level.name} domain boundary "
                    f"(core {ev.src} -> {ev.dst}); every managing balancer has "
                    f"{level.name} migrations disabled",
                    [_cite_migration(ev)],
                )
        legitimate = False
        for i in managing:
            p = policies[i]
            dst_gap = ev.time - involved[i].get(ev.dst, never)
            src_gap = ev.time - involved[i].get(ev.src, never)
            if dst_gap >= p.block_window_us(machine, ev.dst, ev.dst) and (
                src_gap >= p.block_window_us(machine, ev.dst, ev.src)
            ):
                legitimate = True
        if not legitimate:
            out.emit(
                "SAN005",
                f"speed.pull of task {ev.tid} ({ev.task_name}) at t={ev.time} "
                f"from core {ev.src} to core {ev.dst} inside the "
                f"post-migration block window implied by the recorded pull "
                f"history",
                [_cite_migration(ev)],
            )
        for i in managing:
            involved[i][ev.src] = ev.time
            involved[i][ev.dst] = ev.time
    return out.findings


# ----------------------------------------------------------------------
# SAN007: truncation
# ----------------------------------------------------------------------
def check_truncation(trace: TraceRecorder, context: str = "") -> list[SanFinding]:
    """SAN007: the recorder dropped records; the history is incomplete."""
    out = _Collector(context)
    if trace.truncated:
        out.emit(
            "SAN007",
            f"trace truncated at the {trace.limit}-record limit "
            f"({trace.dropped} segments, {trace.migrations_dropped} migration "
            "events dropped); every trace-derived metric of this run is "
            "computed from an incomplete history",
        )
    return out.findings


# ----------------------------------------------------------------------
# whole-run entry points
# ----------------------------------------------------------------------
def analyze_trace(
    trace: TraceRecorder,
    task_exec_us: Optional[dict[int, int]] = None,
    core_busy_us: Optional[dict[int, int]] = None,
    task_names: Optional[dict[int, str]] = None,
    policies: Sequence[PullPolicy] = (),
    machine: Optional[Machine] = None,
    context: str = "",
) -> list[SanFinding]:
    """Run every trace-level check; findings in rule order."""
    findings: list[SanFinding] = []
    findings += check_truncation(trace, context)
    findings += check_overlaps(trace, context)
    findings += check_conservation(
        trace, task_exec_us, core_busy_us, task_names, context
    )
    findings += check_pull_policy(trace, policies, machine, context)
    findings.sort(key=lambda f: f.code)
    return findings


def sanitize_system(
    system: "System",
    result: Optional["AppRunResult"] = None,
    context: str = "",
) -> list[SanFinding]:
    """Sanitize a finished, traced run end to end.

    Pulls every cross-checkable quantity off the :class:`System`: the
    trace, per-task ``exec_us``, per-core ``busy_us``, the machine's
    scheduling domains and each attached speed balancer's policy.  When
    the :class:`~repro.metrics.results.AppRunResult` is supplied too,
    its ``thread_exec_us`` is additionally checked against the task
    accounting it was copied from (a drift there means the results
    layer, not the simulator, corrupted the numbers).
    """
    trace = system.trace
    if trace is None:
        raise ValueError(
            "sanitize_system needs a traced run; build the System with "
            "trace=True (or run_app(trace=True, return_system=True))"
        )
    policies = []
    for b in system.user_balancers:
        p = PullPolicy.of_balancer(b)
        if p is not None:
            policies.append(p)
    findings = analyze_trace(
        trace,
        task_exec_us={t.tid: t.exec_us for t in system.tasks},
        core_busy_us={c.cid: c.stats.busy_us for c in system.cores},
        task_names={t.tid: t.name for t in system.tasks},
        policies=policies,
        machine=system.machine,
        context=context,
    )
    if result is not None:
        out = _Collector(context)
        app_exec = [t.exec_us for t in system.tasks_of_app(result.app_name)]
        if app_exec != list(result.thread_exec_us):
            out.emit(
                "SAN003",
                f"RunResult.thread_exec_us={result.thread_exec_us} diverges "
                f"from the task accounting {app_exec} for app "
                f"{result.app_name!r}",
            )
        findings += out.findings
        findings.sort(key=lambda f: f.code)
    return findings


def sanitize_stored(
    store: "ResultStore",
    digest: str,
    context: str = "",
) -> list[SanFinding]:
    """Sanitize a trace archived in a content-addressed store.

    Loads the (integrity-checked) trace stored under ``digest`` by
    ``repro submit --trace`` / ``JobService.submit(trace=True)`` and
    runs every check that needs only the recorded history itself
    (truncation, migration races, double charges).  The live-System
    cross-checks of :func:`sanitize_system` need accounting state that
    is not archived; use that entry point for fresh runs.

    Raises ``ValueError`` when the digest is absent or was stored
    without a trace; store-level corruption surfaces as the store's own
    ``StoreIntegrityError``.
    """
    entry = store.get(digest)
    if entry is None:
        raise ValueError(f"no store entry for digest {digest!r}")
    if not entry.has_trace:
        raise ValueError(
            f"entry {digest!r} was stored without a trace; re-run it with "
            "trace=True (repro submit --trace) to archive one"
        )
    trace = store.load_trace(digest)
    return analyze_trace(trace, context=context or f"stored:{digest[:12]}")


# ----------------------------------------------------------------------
# canonical digests
# ----------------------------------------------------------------------
def trace_digest(trace: TraceRecorder) -> str:
    """SHA-256 over the canonical byte form of a recorded history.

    Task ids are renumbered densely in order of first appearance across
    the recorded stream, so the digest is invariant under the process-
    global tid counter's starting value -- two runs of the same scenario
    in one process digest identically -- while remaining sensitive to
    every scheduling decision (who ran where, when, for how long, what
    migrated and why, in what order).
    """
    remap: dict[int, int] = {}

    def tid_of(tid: int) -> int:
        if tid not in remap:
            remap[tid] = len(remap)
        return remap[tid]

    h = hashlib.sha256()
    # read the recorder's columns directly (iter_*_tuples): the digest
    # is the sanitizer's hottest loop and per-record dataclass
    # materialization would dominate it
    for tid, name, core, start, end, kind in trace.iter_segment_tuples():
        h.update(f"S {tid_of(tid)} {name} {core} {start} {end} {kind}\n".encode())
    for time, tid, name, src, dst, forced, reason in trace.iter_migration_tuples():
        h.update(
            f"M {time} {tid_of(tid)} {name} {src} {dst} "
            f"{int(forced)} {reason}\n".encode()
        )
    h.update(f"dropped {trace.dropped} {trace.migrations_dropped}\n".encode())
    return h.hexdigest()


def run_digest(
    result: Optional["AppRunResult"] = None,
    trace: Optional[TraceRecorder] = None,
    engine: Optional["Engine"] = None,
) -> str:
    """Canonical digest of a whole run: results + trace + engine.

    Any supplied part contributes; the differential determinism checker
    compares full digests (all three) for in-process perturbations and
    result-only digests for cross-process worker fan-out, where traces
    do not cross the process boundary.
    """
    h = hashlib.sha256()
    if result is not None:
        h.update(result.canonical_json().encode())
        h.update(b"\n")
    if trace is not None:
        h.update(trace_digest(trace).encode())
        h.update(b"\n")
    if engine is not None:
        fp = engine.fingerprint()
        h.update(f"E {fp['now']} {fp['dispatched']} {fp['scheduled']}\n".encode())
    return h.hexdigest()
