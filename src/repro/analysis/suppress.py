"""Shared suppression-comment and allowlist conventions.

All three static analyzers -- the per-file determinism linter
(:mod:`repro.analysis.lint`, SIM rules), the whole-program flow
analyzer (:mod:`repro.analysis.flow`, FLOW rules) and the
compiled-kernel readiness analyzer (:mod:`repro.analysis.kernel`,
KERN rules) -- honour the same two escape hatches, implemented once
here so a suppression written for one tool reads identically to the
others:

* **line suppressions** -- a trailing comment on the offending line::

      for cid in candidate_set:  # sim-lint: ignore[SIM001]
      t = helper(now)            # sim-lint: ignore[FLOW001, SIM004]
      cb = lambda: oce(gen)      # sim-lint: ignore[KERN005]

  The bracket list takes any number of comma-separated rule ids, and
  may freely mix SIM, FLOW and KERN ids (each tool only acts on the
  ids it owns and ignores the rest).  A bare ``# sim-lint: ignore``
  suppresses every rule on the line; ``# sim-lint: skip-file``
  anywhere in a file skips the whole file.

* **allowlists** -- a plain-text file of ``RULE  path-glob`` pairs
  (fnmatch against the POSIX form of the file path) that silences one
  rule for whole files.  Each tool ships its own default file next to
  its module (``lint_allowlist.txt`` / ``flow_allowlist.txt`` /
  ``kernel_allowlist.txt``) but the format and matching are identical.
"""

from __future__ import annotations

import fnmatch
from pathlib import Path
from typing import AbstractSet, Optional, Sequence

__all__ = [
    "MARKER",
    "suppressed_rules",
    "is_suppressed",
    "has_skip_file",
    "load_allowlist",
    "allowlisted",
]

#: the comment marker both tools share
MARKER = "sim-lint:"


def suppressed_rules(line: str) -> Optional[frozenset[str]]:
    """Rules suppressed by a ``# sim-lint: ignore[...]`` trailing comment.

    Returns ``None`` when the line carries no suppression; an empty set
    means "suppress everything" (bare ``ignore``).  The bracket form
    accepts any number of comma-separated rule ids, mixing catalogues
    freely: ``# sim-lint: ignore[SIM004, FLOW001]``.
    """
    idx = line.find(MARKER)
    if idx < 0 or "#" not in line[:idx]:
        return None
    rest = line[idx + len(MARKER) :].strip()
    if not rest.startswith("ignore"):
        return None
    rest = rest[len("ignore") :].strip()
    if rest.startswith("["):
        end = rest.find("]")
        if end < 0:
            return None
        return frozenset(r.strip() for r in rest[1:end].split(",") if r.strip())
    return frozenset()  # bare ignore: all rules


def is_suppressed(rule: str, line_no: int, lines: Sequence[str]) -> bool:
    """Is ``rule`` suppressed on 1-indexed ``line_no`` of ``lines``?"""
    if not 1 <= line_no <= len(lines):
        return False
    rules = suppressed_rules(lines[line_no - 1])
    if rules is None:
        return False
    return not rules or rule in rules


def has_skip_file(source: str) -> bool:
    """Does the source carry a ``# sim-lint: skip-file`` marker?"""
    return f"{MARKER} skip-file" in source


# ----------------------------------------------------------------------
# allowlists
# ----------------------------------------------------------------------
def load_allowlist(
    path: Path, known_rules: AbstractSet[str]
) -> list[tuple[str, str]]:
    """Parse ``RULE  glob`` lines; ``#`` comments and blanks ignored.

    ``known_rules`` is the catalogue the file may reference -- a line
    naming any other rule id is a configuration error, not a silent
    no-op.
    """
    entries: list[tuple[str, str]] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in known_rules:
            raise ValueError(
                f"{path}:{lineno}: expected '<RULE> <path-glob>', got {raw!r}"
            )
        entries.append((parts[0], parts[1]))
    return entries


def allowlisted(
    rule: str, path: str | Path, allowlist: Sequence[tuple[str, str]]
) -> bool:
    """Does any ``(rule, glob)`` entry sanction ``rule`` for ``path``?

    Globs match the POSIX form of the path, either in full or as a
    suffix anchored at a directory boundary (``repro/sim/rng.py``
    matches ``src/repro/sim/rng.py``).
    """
    posix = Path(path).as_posix()
    for entry_rule, pattern in allowlist:
        if entry_rule != rule:
            continue
        if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(posix, "*/" + pattern):
            return True
    return False
