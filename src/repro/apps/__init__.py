"""Application models: SPMD programs, barriers, workloads, co-runners.

The paper's workloads are SPMD scientific applications (NAS Parallel
Benchmarks in UPC, OpenMP and MPI) plus multiprogrammed co-runners
(a pinned cpu-hog, ``make -j``).  Their interaction with load balancing
happens "largely ... through the implementation of synchronization
operations" (Section 3) -- so this package models the applications as
compute/barrier phase sequences and the barriers with the exact wait
behaviours the paper contrasts:

* :mod:`repro.apps.barriers` -- SPIN / YIELD / SLEEP / BLOCKTIME
  barrier waiting, matching UPC polling mode, UPC/MPI ``sched_yield``,
  the paper's modified ``usleep(1)`` runtime, and Intel OpenMP's
  ``KMP_BLOCKTIME`` behaviour respectively;
* :mod:`repro.apps.spmd` -- the SPMD application: N threads, iterations
  of compute-then-barrier, optional per-thread imbalance;
* :mod:`repro.apps.workloads` -- the NAS-like catalog parameterized by
  Table 2 (per-core RSS, inter-barrier times);
* :mod:`repro.apps.multiprogram` -- cpu-hog and make-like co-runners
  for the Section 6.3 sharing experiments.
"""

from repro.apps.barriers import Barrier, WaitPolicy
from repro.apps.collectives import CollectiveSpmdApp
from repro.apps.locks import LockedCounterApp, Mutex
from repro.apps.spmd import SpmdApp
from repro.apps.workloads import NAS_CATALOG, NasBenchmark, make_nas_app
from repro.apps.multiprogram import CpuHog, MakeWorkload

__all__ = [
    "Barrier",
    "CollectiveSpmdApp",
    "CpuHog",
    "LockedCounterApp",
    "MakeWorkload",
    "Mutex",
    "NAS_CATALOG",
    "NasBenchmark",
    "SpmdApp",
    "WaitPolicy",
    "make_nas_app",
]
