"""Barrier synchronization with the wait behaviours the paper studies.

The interaction between a parallel runtime and OS load balancing "is
largely accomplished through the implementation of synchronization
operations" (Section 3).  What matters to a queue-length balancer is
whether a waiter stays on the run queue:

* a ``sched_yield`` loop (default UPC and MPI runtimes) keeps the
  waiter runnable -- "the OS level load balancer counts it towards the
  queue length";
* ``sleep`` removes it -- "which enables the OS level load balancer to
  pull tasks onto the CPUs where threads are sleeping";
* pure polling (``KMP_BLOCKTIME=infinite``) burns the core outright;
* Intel OpenMP's default is hybrid: spin for ``KMP_BLOCKTIME``
  (200 ms), then sleep.

:class:`WaitPolicy` captures these four shapes; :class:`Barrier`
implements a reusable (generational) barrier over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.task import Task, TaskState, WaitMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["WaitPolicy", "Barrier"]


@dataclass(frozen=True)
class WaitPolicy:
    """How threads wait inside synchronization operations.

    ``blocktime_us`` turns SPIN/YIELD into the hybrid Intel OpenMP
    behaviour: busy-wait for that long, then go to sleep.  ``None``
    means wait that way forever (``KMP_BLOCKTIME=infinite`` for SPIN).

    ``wake_latency_us`` models the scheduling latency of waking a
    sleeping waiter (syscall + wakeup path); yield/spin waiters resume
    without it, which is the "faster synchronization" the paper
    attributes to ``sched_yield`` implementations under even load.
    """

    mode: WaitMode = WaitMode.YIELD
    blocktime_us: Optional[int] = None
    wake_latency_us: int = 50

    # -- presets matching the runtimes in the paper --------------------
    @staticmethod
    def upc_default() -> "WaitPolicy":
        """Berkeley UPC barrier: ``sched_yield`` loop when oversubscribed."""
        return WaitPolicy(mode=WaitMode.YIELD)

    @staticmethod
    def mpi_default() -> "WaitPolicy":
        """MPI runtimes evaluated by the paper also call ``sched_yield``."""
        return WaitPolicy(mode=WaitMode.YIELD)

    @staticmethod
    def upc_sleep() -> "WaitPolicy":
        """The paper's modified UPC runtime calling ``usleep(1)``."""
        return WaitPolicy(mode=WaitMode.SLEEP)

    @staticmethod
    def omp_default(blocktime_us: int = 200_000) -> "WaitPolicy":
        """Intel OpenMP: spin for KMP_BLOCKTIME (200 ms), then sleep."""
        return WaitPolicy(mode=WaitMode.SPIN, blocktime_us=blocktime_us)

    @staticmethod
    def omp_infinite() -> "WaitPolicy":
        """``KMP_BLOCKTIME=infinite``: poll continuously."""
        return WaitPolicy(mode=WaitMode.SPIN)

    @property
    def label(self) -> str:
        if self.mode == WaitMode.SLEEP:
            return "sleep"
        if self.blocktime_us is not None:
            return f"{self.mode.value}+blocktime{self.blocktime_us // 1000}ms"
        return self.mode.value


class Barrier:
    """A reusable SPMD barrier.

    ``arrive`` is called by a core's dispatch loop when a task reaches
    the barrier.  The last arriver releases the generation: sleeping
    waiters are woken (after ``wake_latency_us``), spinning/yielding
    waiters are flipped back to their program at their next dispatch
    (immediately, if currently running).
    """

    def __init__(
        self,
        system: "System",
        parties: int,
        policy: Optional[WaitPolicy] = None,
        name: str = "barrier",
    ):
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.system = system
        self.parties = parties
        self.policy = policy or WaitPolicy()
        self.name = name
        self.generation = 0
        self._waiters: list[Task] = []
        # -- statistics ------------------------------------------------
        self.releases = 0
        self.total_wait_us = 0  # summed thread-wait time across generations
        self._arrival_times: list[int] = []

    # ------------------------------------------------------------------
    def arrive(self, task: Task, now: int) -> bool:
        """Register arrival.  Returns True if the caller may proceed.

        When False is returned the task has been put into its waiting
        state (spin/yield on the queue, or sleeping off it); the core's
        dispatch loop reacts accordingly.
        """
        if len(self._waiters) + 1 == self.parties:
            self._release(now)
            return True
        self._waiters.append(task)
        self._arrival_times.append(now)
        task.waiting_on = self
        pol = self.policy
        if pol.mode == WaitMode.SLEEP:
            task.wait_mode = WaitMode.SLEEP
            task.state = TaskState.SLEEPING
        else:
            task.wait_mode = pol.mode
            if pol.blocktime_us is not None:
                task.spin_deadline = now + pol.blocktime_us
        return False

    def spin_timeout(self, task: Task, now: int) -> None:
        """BLOCKTIME expired: convert a busy waiter into a sleeper.

        The core has already descheduled the task; it stays in the
        waiter list and will be woken like any sleeper on release.
        """
        assert task.waiting_on is self and task in self._waiters
        task.wait_mode = WaitMode.SLEEP
        task.spin_deadline = None
        task.state = TaskState.SLEEPING
        task.cur_core = None

    # ------------------------------------------------------------------
    def _release(self, now: int) -> None:
        """Open the barrier: resume every waiter."""
        waiters = self._waiters
        self._waiters = []
        self.generation += 1
        self.releases += 1
        self.total_wait_us += sum(now - t for t in self._arrival_times)
        self._arrival_times = []
        for task in waiters:
            was_sleeping = task.state == TaskState.SLEEPING
            if task.state == TaskState.RUNNING:
                # charge the elapsed spin/yield time while the waiting
                # flags still mark it as synchronization overhead
                assert task.cur_core is not None
                self.system.cores[task.cur_core].charge_now()
            task.waiting_on = None
            task.wait_mode = None
            task.spin_deadline = None
            task.needs_advance = True
            if was_sleeping:
                self.system.wake(task, latency_us=self.policy.wake_latency_us)
            elif task.state == TaskState.RUNNING:
                assert task.cur_core is not None
                self.system.cores[task.cur_core].notify_waiter_released(task)
            # RUNNABLE spinners/yielders advance at their next dispatch

    def __repr__(self) -> str:
        return (
            f"<Barrier {self.name} {len(self._waiters)}/{self.parties}"
            f" gen={self.generation} policy={self.policy.label}>"
        )
