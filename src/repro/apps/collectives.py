"""Collective operations: reduction and broadcast.

Section 3 lists "collectives (e.g. reduction or broadcast)" alongside
locks and barriers as the synchronization operations through which
applications interact with load balancing.  Both are modeled as a
barrier with an attached *root phase*:

* **Reduction**: all threads arrive; the *root* then combines the
  contributions (``root_work_us`` of serial compute) while the others
  wait; the result releases everyone.  The serial combine is the
  classic scalability tail -- and it makes the root's core look fast
  or slow in exactly the way speed balancing measures.
* **Broadcast**: the root produces the payload (``root_work_us``),
  then everyone proceeds; non-root threads that arrive early wait with
  the configured policy.

Implementation: both reuse the core dispatch loop's barrier protocol
(``arrive`` / ``spin_timeout``), inserting the root's extra compute as
a program-level action via :class:`CollectiveSpmdApp`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.apps.barriers import Barrier, WaitPolicy
from repro.sched.task import Action, Program, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["CollectiveSpmdApp"]


class _CollectiveProgram(Program):
    """Per-iteration: compute, arrive, (root: combine), release-gated exit.

    The collective is realized as two barriers: everyone meets at the
    *gather* barrier; the root then runs the serial root phase; the
    *release* barrier opens when the root arrives after combining.
    Non-root threads pass through the release barrier directly.
    """

    def __init__(self, app: "CollectiveSpmdApp", rank: int):
        self.app = app
        self.rank = rank
        self.iteration = 0
        self._stage = 0  # 0 compute, 1 gather, 2 root work, 3 release

    def next_action(self, task: Task, now: int) -> Action:
        app = self.app
        is_root = self.rank == app.root
        while True:
            if self.iteration >= app.iterations:
                return Action.exit()
            stage = self._stage
            self._stage += 1
            if stage == 0:
                return Action.compute(app.work_for(self.rank))
            if stage == 1:
                return Action.wait(app.gather[self.iteration])
            if stage == 2:
                if is_root and app.root_work_us > 0:
                    return Action.compute(app.root_work_us)
                continue  # non-root: straight to the release barrier
            # stage 3: release gate, then next iteration
            self._stage = 0
            self.iteration += 1
            if app.root_work_us > 0:
                return Action.wait(app.release[self.iteration - 1])
            continue  # no root phase: the gather barrier was enough


class CollectiveSpmdApp:
    """SPMD threads synchronizing through reductions/broadcasts.

    ``kind="reduction"`` runs the root phase *after* the gather (all
    contributions present, root combines); ``kind="broadcast"`` is
    structurally identical here -- the root produces and everyone waits
    for the release -- the difference being conventional (payload flows
    the other way), so one implementation serves both.
    """

    def __init__(
        self,
        system: "System",
        name: str = "reduce",
        n_threads: int = 4,
        iterations: int = 5,
        work_us: int | Sequence[int] = 10_000,
        root_work_us: int = 1_000,
        root: int = 0,
        wait_policy: Optional[WaitPolicy] = None,
        kind: str = "reduction",
    ):
        if kind not in ("reduction", "broadcast"):
            raise ValueError("kind must be 'reduction' or 'broadcast'")
        if not (0 <= root < n_threads):
            raise ValueError("root out of range")
        self.system = system
        self.name = name
        self.n_threads = n_threads
        self.iterations = iterations
        self._work = work_us
        self.root_work_us = root_work_us
        self.root = root
        self.kind = kind
        policy = wait_policy or WaitPolicy()
        # one pair of single-use barriers per iteration keeps the
        # generation bookkeeping trivial and the root phase strict
        self.gather = [
            Barrier(system, n_threads, policy, name=f"{name}.g{i}")
            for i in range(iterations)
        ]
        self.release = [
            Barrier(system, n_threads, policy, name=f"{name}.r{i}")
            for i in range(iterations)
        ]
        self.tasks = [
            Task(program=_CollectiveProgram(self, rank), name=f"{name}.t{rank}",
                 app_id=name)
            for rank in range(n_threads)
        ]
        self.spawned = False

    # ------------------------------------------------------------------
    def work_for(self, rank: int) -> int:
        if isinstance(self._work, (list, tuple)):
            return int(self._work[rank])
        return int(self._work)

    def total_work_us(self) -> int:
        per_iter = sum(self.work_for(r) for r in range(self.n_threads))
        return self.iterations * (per_iter + self.root_work_us)

    def spawn(self, at: int = 0, cores=None) -> None:
        if self.spawned:
            raise RuntimeError(f"{self.name} already spawned")
        self.spawned = True
        if cores is not None:
            allowed = frozenset(cores)
            for t in self.tasks:
                t.pin(allowed)
        self.system.spawn_burst(self.tasks, at=at)

    @property
    def done(self) -> bool:
        return all(t.finished_at is not None for t in self.tasks)

    @property
    def elapsed_us(self) -> int:
        if not self.done:
            raise RuntimeError(f"{self.name} unfinished")
        return max(t.finished_at for t in self.tasks) - min(
            t.started_at for t in self.tasks
        )
