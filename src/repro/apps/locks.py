"""Mutual-exclusion locks with the paper's wait behaviours.

Section 3: "The interaction between an application or programming
model and the underlying OS load balancing is largely accomplished
through the implementation of synchronization operations: locks,
barriers or collectives."  Barriers live in
:mod:`repro.apps.barriers`; this module provides the lock, with the
same spin / yield / sleep waiting split:

* spin- and yield-waiters stay on the run queue (counted as load by
  queue-length balancing);
* sleep-waiters block and are woken FIFO when the holder releases.

:class:`LockedCounterApp` is a ready-made workload: N threads
alternating private compute with a short critical section -- the
server-style "synchronization for mutual exclusion on small shared
data items" the paper contrasts with SPMD barriers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.apps.barriers import WaitPolicy
from repro.sched.task import Action, Program, Task, TaskState, WaitMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["Mutex", "LockedCounterApp"]


class Mutex:
    """A mutual-exclusion lock over simulated tasks.

    Usage from a :class:`~repro.sched.task.Program`: issue
    ``Action.wait(mutex)`` to acquire (the core's dispatch loop speaks
    the barrier protocol) and call :meth:`release` when the critical
    section's compute completes, the way :class:`_ReleasingProgram`
    does.

    Implementation notes: this object deliberately mirrors
    :class:`~repro.apps.barriers.Barrier`'s interface (``arrive`` /
    ``spin_timeout``) so the core dispatch loop needs no special
    casing; a task "arrives" to acquire, and release hands the lock to
    one waiter.
    """

    def __init__(self, system: "System", policy: Optional[WaitPolicy] = None,
                 name: str = "mutex"):
        self.system = system
        self.policy = policy or WaitPolicy()
        self.name = name
        self.holder: Optional[Task] = None
        self._waiters: deque[Task] = deque()
        # -- statistics --------------------------------------------------
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_us = 0
        self._wait_since: dict[int, int] = {}

    # ------------------------------------------------------------------
    def arrive(self, task: Task, now: int) -> bool:
        """Attempt to acquire; True if the task may proceed (holds it)."""
        if self.holder is None:
            self.holder = task
            self.acquisitions += 1
            return True
        self.contended_acquisitions += 1
        self._waiters.append(task)
        self._wait_since[task.tid] = now
        task.waiting_on = self
        pol = self.policy
        if pol.mode == WaitMode.SLEEP:
            task.wait_mode = WaitMode.SLEEP
            task.state = TaskState.SLEEPING
        else:
            task.wait_mode = pol.mode
            if pol.blocktime_us is not None:
                task.spin_deadline = now + pol.blocktime_us
        return False

    def spin_timeout(self, task: Task, now: int) -> None:
        """BLOCKTIME expired while waiting for the lock: sleep."""
        assert task.waiting_on is self
        task.wait_mode = WaitMode.SLEEP
        task.spin_deadline = None
        task.state = TaskState.SLEEPING
        task.cur_core = None

    def release(self, task: Task, now: int) -> None:
        """Release the lock; the oldest waiter acquires it."""
        if task is not self.holder:
            raise RuntimeError(f"{task} releasing {self.name} it does not hold")
        self.holder = None
        if not self._waiters:
            return
        nxt = self._waiters.popleft()
        self.total_wait_us += now - self._wait_since.pop(nxt.tid)
        self.holder = nxt
        self.acquisitions += 1
        was_sleeping = nxt.state == TaskState.SLEEPING
        if nxt.state == TaskState.RUNNING:
            assert nxt.cur_core is not None
            self.system.cores[nxt.cur_core].charge_now()
        nxt.waiting_on = None
        nxt.wait_mode = None
        nxt.spin_deadline = None
        nxt.needs_advance = True
        if was_sleeping:
            self.system.wake(nxt, latency_us=self.policy.wake_latency_us)
        elif nxt.state == TaskState.RUNNING:
            assert nxt.cur_core is not None
            self.system.cores[nxt.cur_core].notify_waiter_released(nxt)
        # RUNNABLE busy-waiters proceed at their next dispatch

    def __repr__(self) -> str:
        h = self.holder.name if self.holder else "free"
        return f"<Mutex {self.name} holder={h} waiters={len(self._waiters)}>"


class LockedCounterApp:
    """N threads contending on one lock (server-style workload).

    Each thread runs ``iterations`` of: private compute, acquire the
    mutex, compute the critical section, release.  Release is driven by
    a program wrapper that watches for critical-section completion.
    """

    def __init__(
        self,
        system: "System",
        name: str = "locked",
        n_threads: int = 4,
        iterations: int = 10,
        private_work_us: int = 5_000,
        critical_work_us: int = 500,
        wait_policy: Optional[WaitPolicy] = None,
    ):
        if n_threads < 1 or iterations < 1:
            raise ValueError("need at least one thread and one iteration")
        self.system = system
        self.name = name
        self.n_threads = n_threads
        self.iterations = iterations
        self.private_work_us = private_work_us
        self.critical_work_us = critical_work_us
        self.mutex = Mutex(system, wait_policy, name=f"{name}.lock")
        self.tasks: list[Task] = []
        for rank in range(n_threads):
            program = _ReleasingProgram(self, rank)
            t = Task(program=program, name=f"{name}.t{rank}", app_id=name)
            self.tasks.append(t)
        self.spawned = False

    def spawn(self, at: int = 0, cores=None) -> None:
        if self.spawned:
            raise RuntimeError(f"{self.name} already spawned")
        self.spawned = True
        if cores is not None:
            allowed = frozenset(cores)
            for t in self.tasks:
                t.pin(allowed)
        self.system.spawn_burst(self.tasks, at=at)

    @property
    def done(self) -> bool:
        return all(t.finished_at is not None for t in self.tasks)

    @property
    def elapsed_us(self) -> int:
        if not self.done:
            raise RuntimeError(f"{self.name} unfinished")
        return max(t.finished_at for t in self.tasks) - min(
            t.started_at for t in self.tasks
        )

    def total_work_us(self) -> int:
        per = self.private_work_us + self.critical_work_us
        return self.n_threads * self.iterations * per


class _ReleasingProgram(Program):
    """Drives the compute/acquire/critical/release cycle."""

    def __init__(self, app: LockedCounterApp, rank: int):
        self.app = app
        self.rank = rank
        self.iteration = 0
        self._state = "compute"  # compute -> acquire -> critical -> (release)

    def next_action(self, task: Task, now: int) -> Action:
        app = self.app
        if self._state == "compute":
            if self.iteration >= app.iterations:
                return Action.exit()
            self._state = "acquire"
            return Action.compute(app.private_work_us)
        if self._state == "acquire":
            self._state = "critical"
            return Action.wait(app.mutex)
        if self._state == "critical":
            self._state = "release"
            return Action.compute(app.critical_work_us)
        # release: the critical section just completed
        app.mutex.release(task, now)
        self.iteration += 1
        if self.iteration >= app.iterations:
            return Action.exit()
        self._state = "acquire"
        return Action.compute(app.private_work_us)
