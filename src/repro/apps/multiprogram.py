"""Multiprogrammed co-runners for the sharing experiments (Section 6.3).

* :class:`CpuHog` -- "a compute-intensive 'cpu-hog' that uses no
  memory", pinned to a core, used in Figure 5 to show how each
  balancer copes with an unrelated task stealing half of core 0.
* :class:`MakeWorkload` -- a ``make -j``-like spawner, "which uses both
  memory and I/O and spawns multiple subprocesses" (Figure 6).  Jobs
  arrive in waves (dependency levels); each job alternates compute
  bursts with short I/O sleeps, so its tasks enter and leave run queues
  continuously -- the realistic background the paper uses to stress
  the balancers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sched.task import Action, Program, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["CpuHog", "MakeWorkload"]

MB = 1 << 20


class _HogProgram(Program):
    """Compute forever in large chunks (until the simulation stops)."""

    def __init__(self, chunk_us: int = 1_000_000):
        self.chunk_us = chunk_us

    def next_action(self, task: Task, now: int) -> Action:
        return Action.compute(self.chunk_us)


class CpuHog:
    """An unrelated, infinitely compute-bound task pinned to one core."""

    def __init__(self, system: "System", core: int = 0, nice: int = 0):
        self.system = system
        self.task = Task(
            program=_HogProgram(),
            name=f"cpu-hog.c{core}",
            nice=nice,
            footprint_bytes=0,
            app_id=None,
        )
        self.task.pin(frozenset({core}))
        self.core = core

    def spawn(self, at: int = 0) -> None:
        self.system.spawn_burst([self.task], at=at)


class _MakeJobProgram(Program):
    """One compile job: bursts of compute separated by I/O waits."""

    def __init__(self, bursts: list[tuple[int, int]]):
        # list of (compute_us, io_sleep_us) pairs
        self.bursts = bursts
        self._i = 0

    def next_action(self, task: Task, now: int) -> Action:
        if self._i >= 2 * len(self.bursts):
            return Action.exit()
        i = self._i
        self._i += 1
        compute, io = self.bursts[i // 2]
        if i % 2 == 0:
            return Action.compute(compute)
        if io <= 0:
            return self.next_action(task, now)
        return Action.sleep(io)


class MakeWorkload:
    """A ``make -j N``-like job stream.

    ``jobs`` total jobs are released in waves of at most ``j`` (the
    parallelism flag); a new wave starts when the previous one
    finishes, approximating dependency levels in a build graph.  Job
    durations and I/O fractions are drawn from the run's rng streams so
    repeats vary realistically across seeds.
    """

    def __init__(
        self,
        system: "System",
        j: int = 16,
        jobs: int = 64,
        mean_job_us: int = 150_000,
        io_fraction: float = 0.25,
        footprint_bytes: int = 32 * MB,
    ):
        self.system = system
        self.j = j
        self.n_jobs = jobs
        self.mean_job_us = mean_job_us
        self.io_fraction = io_fraction
        self.footprint_bytes = footprint_bytes
        self.tasks: list[Task] = []
        self._spawned = 0

    # ------------------------------------------------------------------
    def _new_job(self) -> Task:
        rng = self.system.rng
        idx = self._spawned
        self._spawned += 1
        total = max(
            10_000, int(rng.gauss("make.dur", self.mean_job_us, self.mean_job_us * 0.5))
        )
        n_bursts = rng.randint("make.bursts", 2, 6)
        per = total // n_bursts
        io = int(per * self.io_fraction / max(1e-9, 1 - self.io_fraction))
        bursts = [(per, io) for _ in range(n_bursts)]
        task = Task(
            program=_MakeJobProgram(bursts),
            name=f"make.job{idx}",
            footprint_bytes=self.footprint_bytes,
            app_id=None,
            mem_intensity=0.2,
        )
        self.tasks.append(task)
        return task

    def spawn(self, at: int = 0) -> None:
        """Release the first wave; later waves chain on completions."""
        self.system.engine.schedule_at(at, self._next_wave, "make.wave")

    def _next_wave(self) -> None:
        remaining = self.n_jobs - self._spawned
        if remaining <= 0:
            return
        wave = [self._new_job() for _ in range(min(self.j, remaining))]
        self._pending = set(t.tid for t in wave)
        for t in wave:
            self.system.on_exit(t, self._job_done)
        self.system.spawn_burst(wave, at=self.system.engine.now)

    def _job_done(self, task: Task) -> None:
        self._pending.discard(task.tid)
        if not self._pending:
            self.system.engine.schedule(1000, self._next_wave, "make.wave")

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._spawned >= self.n_jobs and all(
            t.finished_at is not None for t in self.tasks
        )
