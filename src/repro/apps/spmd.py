"""The SPMD application model.

"The vast majority of existing implementations of parallel scientific
applications use the SPMD programming model: there are phases of
computation followed by barrier synchronization." (Section 3.)

:class:`SpmdApp` is exactly that: ``n_threads`` tasks, each executing
``iterations`` of *compute W microseconds, wait at the barrier*, then a
final barrier and exit.  The per-iteration work can vary per thread
(load imbalance) and per iteration (transient behaviour); the paper's
benchmarks are balanced, so defaults are uniform.

The model deliberately contravenes the assumptions of OS load
balancers in the same way real SPMD codes do: threads are logically
related, synchronize their execution, have equally long life spans, and
the application performance is that of its *slowest* thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.apps.barriers import Barrier, WaitPolicy
from repro.sched.task import Action, Program, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["SpmdApp", "SpmdThreadProgram"]

WorkSpec = Union[int, Sequence[int], Callable[[int, int], int]]


class SpmdThreadProgram(Program):
    """Program of one SPMD thread: (compute, barrier) x iterations.

    Steps alternate compute (even) and barrier (odd) slots; barrier
    slots are skipped when the app disables per-iteration
    synchronization (EP-style), except for the final barrier.
    """

    def __init__(self, app: "SpmdApp", rank: int):
        self.app = app
        self.rank = rank
        self._step = 0

    @property
    def iteration(self) -> int:
        """Current compute iteration index (for introspection)."""
        return min(self._step // 2, self.app.iterations)

    def next_action(self, task: Task, now: int) -> Action:
        app = self.app
        while True:
            step = self._step
            self._step += 1
            if step >= 2 * app.iterations:
                return Action.exit()
            if step % 2 == 0:
                return Action.compute(app.work_for(self.rank, step // 2))
            is_last = step == 2 * app.iterations - 1
            if app.barrier_every_iteration or (is_last and app.final_barrier):
                return Action.wait(app.barrier)
            # synchronization disabled for this slot: fall through


class SpmdApp:
    """An SPMD parallel application under test.

    Parameters
    ----------
    system:
        The simulated machine to run on.
    name:
        Label (``"ep.C"``); also the ``app_id`` of its tasks.
    n_threads:
        Degree of parallelism the application was *compiled* with
        (static, as the paper emphasizes; e.g. always 16 for Figure 3
        regardless of how many cores are allocated).
    work_us:
        Per-iteration compute in microseconds at nominal clock: a
        scalar (uniform SPMD), a per-rank sequence, or a callable
        ``(rank, iteration) -> us``.
    iterations:
        Number of compute/barrier phases.
    wait_policy:
        Barrier wait behaviour (see :class:`repro.apps.barriers.WaitPolicy`).
    barrier_every_iteration:
        False models EP-style embarrassing parallelism: threads compute
        all iterations back to back and only synchronize at the final
        barrier.
    footprint_bytes / mem_intensity:
        Per-thread resident set and bandwidth demand (Table 2 feeds
        these for the NAS catalog).
    """

    def __init__(
        self,
        system: "System",
        name: str,
        n_threads: int,
        work_us: WorkSpec,
        iterations: int = 1,
        wait_policy: Optional[WaitPolicy] = None,
        barrier_every_iteration: bool = True,
        final_barrier: bool = True,
        footprint_bytes: int = 0,
        mem_intensity: float = 0.0,
    ):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.system = system
        self.name = name
        self.n_threads = n_threads
        self.iterations = iterations
        self._work = work_us
        self.wait_policy = wait_policy or WaitPolicy()
        self.barrier_every_iteration = barrier_every_iteration
        self.final_barrier = final_barrier
        self.barrier = Barrier(system, n_threads, self.wait_policy, name=f"{name}.bar")
        self.tasks: list[Task] = []
        for rank in range(n_threads):
            t = Task(
                program=SpmdThreadProgram(self, rank),
                name=f"{name}.t{rank}",
                footprint_bytes=footprint_bytes,
                app_id=name,
                mem_intensity=mem_intensity,
            )
            self.tasks.append(t)
        self.spawned = False

    # ------------------------------------------------------------------
    def work_for(self, rank: int, iteration: int) -> int:
        w = self._work
        if callable(w):
            return int(w(rank, iteration))
        if isinstance(w, (list, tuple)):
            return int(w[rank])
        return int(w)

    def total_work_us(self) -> int:
        """Serial compute demand: the sum of all threads' work."""
        return sum(
            self.work_for(r, i)
            for r in range(self.n_threads)
            for i in range(self.iterations)
        )

    # ------------------------------------------------------------------
    def spawn(self, at: int = 0, cores: Optional[Sequence[int]] = None) -> None:
        """Create the application's tasks at simulation time ``at``.

        ``cores`` restricts the threads to a core subset -- the
        ``taskset`` the paper uses to run on 1..16 cores ("We force
        Linux to balance over a subset of cores using the taskset
        command").  Placement within the subset is the balancer's job.
        """
        if self.spawned:
            raise RuntimeError(f"{self.name} already spawned")
        self.spawned = True
        allowed = frozenset(cores) if cores is not None else None
        for t in self.tasks:
            if allowed is not None:
                t.pin(allowed)
        self.system.spawn_burst(self.tasks, at=at)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return all(t.finished_at is not None for t in self.tasks)

    @property
    def finish_time(self) -> int:
        """Completion time of the slowest thread (SPMD semantics)."""
        if not self.done:
            raise RuntimeError(f"{self.name} has unfinished threads")
        return max(t.finished_at for t in self.tasks)  # type: ignore[type-var]

    @property
    def start_time(self) -> int:
        starts = [t.started_at for t in self.tasks if t.started_at is not None]
        if len(starts) != len(self.tasks):
            raise RuntimeError(f"{self.name} has unstarted threads")
        return min(starts)

    @property
    def elapsed_us(self) -> int:
        return self.finish_time - self.start_time

    def migrations(self) -> int:
        return sum(t.migrations for t in self.tasks)

    def __repr__(self) -> str:
        return f"<SpmdApp {self.name} threads={self.n_threads} iters={self.iterations}>"
