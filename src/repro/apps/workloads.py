"""NAS-Parallel-Benchmark-like workload catalog (Table 2).

The paper evaluates UPC/OpenMP/MPI implementations of the NAS Parallel
Benchmarks.  We model each benchmark as an SPMD app parameterized by
the quantities Table 2 reports -- per-core resident set size and
inter-barrier compute time -- plus a memory-intensity coefficient that
reproduces the measured 16-core speedups through the bandwidth
contention model.

Table 2 of the paper (selected NPB; RSS is average per core):

======  =====  ========  ==================  =====================
bench   class  RSS (GB)  speedup @16 cores    inter-barrier (msec)
                         Tigerton/Barcelona   UPC  /  OpenMP
======  =====  ========  ==================  =====================
bt      A      0.4        4.6 / 10.0          ~10  /  ~20   (+)
cg      B      1.0        ~5  / ~9    (+)      4   /   4
ep      C      ~0         ~16 / ~16   (+)     none (final only)
ft      B      5.6        5.3 / 10.5          73   / 206
is      C      3.1        4.8 /  8.4          44   /  63
sp      A      0.1        7.2 / 12.4           2   /   ~5   (+)
======  =====  ========  ==================  =====================

(+) the scanned table in the paper is partially garbled; entries
marked (+) are plausible values consistent with the prose (cg.B
"performs barrier synchronization every 4 ms"; EP "uses negligible
memory, no synchronization"; all benchmarks "scale up to 16 cores").
The substitution is recorded in EXPERIMENTS.md.

Durations are scaled: the paper's runs span 2..80 s; simulating tens
of wall-seconds of fine-grained barriers is wasteful, so the catalog
targets a default ~2 s of per-thread compute with the *same*
inter-barrier granularity, which preserves every balancing-relevant
ratio (S vs balance interval B, migration cost vs quantum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.sched.task import WaitMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = [
    "FULL_CATALOG",
    "NAS_CATALOG",
    "NAS_EXTENDED_CATALOG",
    "WAIT_MODES",
    "AppSpec",
    "NasBenchmark",
    "ep_app",
    "make_nas_app",
]

#: barrier wait policies by CLI/spec name
WAIT_MODES: dict[str, WaitMode] = {
    "yield": WaitMode.YIELD,
    "sleep": WaitMode.SLEEP,
    "spin": WaitMode.SPIN,
}

GB = 1 << 30
MB = 1 << 20


@dataclass(frozen=True)
class NasBenchmark:
    """Catalog entry describing one NAS benchmark configuration."""

    name: str  # "ft.B"
    rss_per_core_gb: float
    inter_barrier_upc_us: Optional[int]  # None = no inter-iteration barriers (EP)
    inter_barrier_omp_us: Optional[int]
    mem_intensity: float
    #: paper-reported 16-core speedups (for EXPERIMENTS.md comparison)
    paper_speedup16_tigerton: float
    paper_speedup16_barcelona: float

    def footprint_bytes(self) -> int:
        return int(self.rss_per_core_gb * GB)

    def inter_barrier_us(self, flavor: str) -> Optional[int]:
        if flavor == "omp":
            return self.inter_barrier_omp_us
        return self.inter_barrier_upc_us


#: Table 2 (plus EP and cg.B from the prose); keyed by "name.class".
NAS_CATALOG: dict[str, NasBenchmark] = {
    "bt.A": NasBenchmark("bt.A", 0.4, 10_000, 20_000, 0.95, 4.6, 10.0),
    "cg.B": NasBenchmark("cg.B", 1.0, 4_000, 4_000, 0.80, 5.0, 9.0),
    "ep.C": NasBenchmark("ep.C", 0.001, None, None, 0.0, 15.8, 15.8),
    "ft.B": NasBenchmark("ft.B", 5.6, 73_000, 206_000, 0.90, 5.3, 10.5),
    "is.C": NasBenchmark("is.C", 3.1, 44_000, 63_000, 0.85, 4.8, 8.4),
    "sp.A": NasBenchmark("sp.A", 0.1, 2_000, 5_000, 0.68, 7.2, 12.4),
}

#: The paper's workload spans the full NPB suite ("classes S, A, B, C")
#: but Table 2 prints only a "representative sample".  These extra
#: entries let users run the remaining common NPB members; their
#: parameters are EXTRAPOLATED (from NPB documentation and the paper's
#: class-size trends), not taken from the paper -- hence the separate
#: catalog and the None paper-speedup markers are avoided by reusing
#: nearest-neighbour calibration (mg ~ cg-like sparse memory traffic,
#: lu ~ bt-like pipelined solver at finer granularity).
NAS_EXTENDED_CATALOG: dict[str, NasBenchmark] = {
    "mg.B": NasBenchmark("mg.B", 3.4, 12_000, 26_000, 0.88, 5.0, 9.5),
    "lu.A": NasBenchmark("lu.A", 0.3, 1_500, 3_000, 0.70, 6.8, 11.5),
}

#: union view used by :func:`make_nas_app` lookups
FULL_CATALOG: dict[str, NasBenchmark] = {**NAS_CATALOG, **NAS_EXTENDED_CATALOG}


def make_nas_app(
    system: "System",
    bench: str | NasBenchmark,
    n_threads: int = 16,
    wait_policy: Optional[WaitPolicy] = None,
    flavor: str = "upc",
    total_compute_us: int = 2_000_000,
) -> SpmdApp:
    """Instantiate a catalog benchmark as an :class:`SpmdApp`.

    ``total_compute_us`` is the per-thread serial compute demand; the
    iteration count follows from the benchmark's inter-barrier time.
    EP (no inter-iteration synchronization) becomes one long compute
    segment with a single final barrier.
    """
    entry = FULL_CATALOG[bench] if isinstance(bench, str) else bench
    ibt = entry.inter_barrier_us(flavor)
    if ibt is None:
        iterations, work, sync = 1, total_compute_us, False
    else:
        iterations = max(1, total_compute_us // ibt)
        work, sync = ibt, True
    return SpmdApp(
        system=system,
        name=entry.name,
        n_threads=n_threads,
        work_us=work,
        iterations=iterations,
        wait_policy=wait_policy,
        barrier_every_iteration=sync,
        final_barrier=True,
        footprint_bytes=entry.footprint_bytes(),
        mem_intensity=entry.mem_intensity,
    )


@dataclass(frozen=True)
class AppSpec:
    """Declarative, picklable description of a catalog application.

    An ``AppSpec`` is callable with a :class:`~repro.system.System`
    (the ``app_factory`` protocol of
    :func:`repro.harness.experiment.run_app`), so it can be used
    anywhere a factory closure can -- with the advantage that, being a
    frozen dataclass of plain values, it pickles and therefore crosses
    process boundaries in :mod:`repro.harness.parallel` run specs.

    ``barrier_period_us`` selects the Section 6.1 modified-EP shape
    (:func:`ep_app` with periodic barriers, the Figure 2 knob) and
    overrides ``bench``/``flavor``.
    """

    bench: str = "ep.C"
    n_threads: int = 16
    wait: str = "yield"
    flavor: str = "upc"
    total_compute_us: int = 2_000_000
    barrier_period_us: Optional[int] = None

    def build(self, system: "System") -> SpmdApp:
        if self.wait not in WAIT_MODES:
            raise ValueError(
                f"unknown wait mode {self.wait!r}; expected one of {sorted(WAIT_MODES)}"
            )
        policy = WaitPolicy(mode=WAIT_MODES[self.wait])
        if self.barrier_period_us is not None:
            return ep_app(
                system,
                n_threads=self.n_threads,
                wait_policy=policy,
                total_compute_us=self.total_compute_us,
                barrier_period_us=self.barrier_period_us,
            )
        return make_nas_app(
            system,
            self.bench,
            n_threads=self.n_threads,
            wait_policy=policy,
            flavor=self.flavor,
            total_compute_us=self.total_compute_us,
        )

    __call__ = build


def ep_app(
    system: "System",
    n_threads: int = 16,
    wait_policy: Optional[WaitPolicy] = None,
    total_compute_us: int = 2_000_000,
    barrier_period_us: Optional[int] = None,
) -> SpmdApp:
    """The EP benchmark, optionally modified with periodic barriers.

    ``barrier_period_us`` reproduces the Section 6.1 modification: "we
    have modified its inner loop to execute an increasing number of
    barriers" -- the knob behind Figure 2.
    """
    if barrier_period_us is None:
        return make_nas_app(
            system, "ep.C", n_threads, wait_policy, total_compute_us=total_compute_us
        )
    iterations = max(1, total_compute_us // barrier_period_us)
    return SpmdApp(
        system=system,
        name="ep.mod",
        n_threads=n_threads,
        work_us=barrier_period_us,
        iterations=iterations,
        wait_policy=wait_policy,
        barrier_every_iteration=True,
        footprint_bytes=1 * MB,
        mem_intensity=0.0,
    )
