"""Kernel-level load balancers: the *space* dimension baselines.

The paper compares speed balancing against the balancing designs found
in contemporary OSes (Section 2):

* :mod:`repro.balance.linux` -- the Linux 2.6.28 CFS load balancer:
  queue-length balancing over the scheduling-domain hierarchy, with
  imbalance percentage, idle/busy intervals, cache-hot resistance and
  new-idle pulls ("LOAD" in the paper's figures);
* :mod:`repro.balance.ule` -- the FreeBSD 7.2 ULE scheduler's push
  (twice a second) and idle-steal migration;
* :mod:`repro.balance.dwrr` -- Distributed Weighted Round-Robin
  (Li et al.), round-based global fairness;
* :mod:`repro.balance.pinned` -- static balancing: threads pinned
  round-robin ("PINNED" / "One-per-core");
* :mod:`repro.balance.base` -- the common interface and a no-op
  balancer.

The paper's own contribution, the user-level speed balancer, lives in
:mod:`repro.core` -- it runs *on top of* one of these (Linux by
default), exactly as the real ``speedbalancer`` coexists with the
kernel balancer.
"""

from repro.balance.base import KernelBalancer, NoBalancer
from repro.balance.pinned import PinnedBalancer
from repro.balance.linux import LinuxLoadBalancer, LinuxParams
from repro.balance.ule import UleBalancer
from repro.balance.dwrr import DwrrBalancer

__all__ = [
    "DwrrBalancer",
    "KernelBalancer",
    "LinuxLoadBalancer",
    "LinuxParams",
    "NoBalancer",
    "PinnedBalancer",
    "UleBalancer",
]
