"""Common interface for kernel-level balancers.

A kernel balancer owns three decisions:

* **fork placement** -- which core a newly created task starts on.
  All implementations here see the *stale* burst snapshot the system
  hands them (paper footnote 1: "at task start-up Linux tries to
  assign it an idle core, but the idleness information is not updated
  when multiple tasks start simultaneously");
* **wake placement** -- where a sleeper resumes (default: its previous
  core, as Linux 2.6 mostly does);
* **periodic / event-driven migration** -- installed in
  :meth:`attach` via engine timers and core idle callbacks.

``on_charge`` is a per-charge accounting hook; only DWRR (round-slice
tracking) uses it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sched.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.core import CoreSim
    from repro.system import System

__all__ = ["KernelBalancer", "NoBalancer"]


class KernelBalancer:
    """Base class: least-loaded placement, no migration."""

    name = "base"

    def __init__(self) -> None:
        self.system: Optional["System"] = None

    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        """Install timers/callbacks.  Subclasses call super().attach."""
        self.system = system

    # ------------------------------------------------------------------
    def place_new_task(self, task: Task, snapshot: list[int]) -> int:
        """Fork placement from a (stale) load snapshot.

        Least-loaded allowed core; ties broken randomly, which is what
        spreads the burst-placement race across repeats and gives the
        queue-length balancers their run-to-run variance.
        """
        assert self.system is not None
        allowed = self.system._allowed(task)
        best = min(snapshot[c] for c in allowed)
        candidates = [c for c in allowed if snapshot[c] == best]
        if len(candidates) == 1:
            return candidates[0]
        return self.system.rng.choice(f"{self.name}.place", candidates)

    def place_woken(self, task: Task, prev: int) -> int:
        """Wake placement; default: resume on the previous core."""
        return prev

    def on_charge(self, core: "CoreSim", task: Task, dt: int) -> None:
        """Accounting hook fired whenever execution time is charged."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class NoBalancer(KernelBalancer):
    """Placement only, never migrates.

    Unlike :class:`repro.balance.pinned.PinnedBalancer` the initial
    placement is load-based (with the stale-snapshot race), so this
    isolates the effect of *migration* from the effect of *placement*.
    """

    name = "none"
