"""Distributed Weighted Round-Robin (DWRR) fair scheduling.

Models the kernel-level mechanism of Li et al. the paper compares
against (Section 2): scheduling proceeds in *rounds*; each task may run
at most its *round slice* (100 ms in the 2.6.22 prototype the paper
could boot) per round, after which it moves to the expired queue.  Each
CPU carries a round number; "to achieve global fairness ... DWRR
ensures that during execution this number for each CPU differs by at
most one system-wide.  When a CPU finishes a round it will perform
round balancing by stealing threads from the active/expired queues of
other CPUs, depending on their round number."

Properties the paper highlights, preserved by this model:

* global fairness: over any window of a few rounds, every task of the
  parallel application makes equal progress, so DWRR tracks speed
  balancing closely at moderate core counts (Figure 3, <= 8 cores);
* no migration history and potentially "a large number of threads"
  migrated per round: cores finishing their rounds early repeatedly
  steal still-running-round tasks from others, paying migration costs
  that flatten the speedup curve at high core counts (speedup ~12 at
  16-on-16 in Figure 3);
* application-unaware: all tasks in the system are balanced uniformly;
* no NUMA awareness ("to our knowledge, DWRR has not been tuned for
  NUMA"): steals ignore node boundaries, stranding memory.

Implementation notes: round-slice exhaustion is detected at charge
granularity (a CFS slice), and an exhausted task is *throttled* --
parked off the run queue -- until its core advances its round, which
reproduces the active/expired array semantics on top of the CFS core
model (the 2.6.22 prototype sat on the O(1) scheduler; the paper could
not boot the CFS port).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.balance.base import KernelBalancer
from repro.sched.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.core import CoreSim
    from repro.system import System

__all__ = ["DwrrBalancer"]


# hoisted sort key: no closure allocated per round balance (KERN005)
def _by_tid(task: Task) -> int:
    return task.tid


class DwrrBalancer(KernelBalancer):
    """Round-based global fairness with round balancing."""

    name = "dwrr"

    def __init__(
        self,
        round_slice_us: int = 100_000,
        steal_batch: int = 2,
        idle_tick_us: int = 10_000,
    ):
        super().__init__()
        self.round_slice_us = round_slice_us
        #: max tasks stolen per round-balance attempt ("the algorithm
        #: might migrate a large number of threads")
        self.steal_batch = steal_batch
        #: period of the idle-core round-balancing check (an idle CPU
        #: in DWRR keeps trying to find same-round work to steal)
        self.idle_tick_us = idle_tick_us
        #: timer-tick granularity of round-slice enforcement (skews
        #: effective slices and desynchronizes rounds across cores)
        self.slice_jitter_us = 10_000
        self.round: dict[int, int] = {}
        self.stats_round_advances = 0
        self.stats_round_waits = 0
        self.stats_steals = 0
        #: cid -> (callback, label) reused across tick reschedules
        self._tick_cb: dict[int, tuple[Callable[[], None], str]] = {}

    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        super().attach(system)
        for core in system.cores:
            self.round[core.cid] = 0
            core.idle_callbacks.append(self._round_balance)
            # reusable callback/label pair: the tick re-arms itself every
            # 10 ms per core, so per-tick lambda allocations add up
            label = f"dwrr.tick.{core.cid}"
            callback = (lambda c=core: self._idle_tick(c))
            self._tick_cb[core.cid] = (callback, label)
            offset = system.rng.jitter_us("dwrr.tick", self.idle_tick_us)
            system.engine.schedule(self.idle_tick_us + offset, callback, label)

    def _idle_tick(self, core: "CoreSim") -> None:
        """Idle CPUs keep attempting round balancing."""
        assert self.system is not None
        if core.is_idle:
            self._round_balance(core)
        callback, label = self._tick_cb[core.cid]
        self.system.engine.schedule(self.idle_tick_us, callback, label)

    # ------------------------------------------------------------------
    def place_new_task(self, task: Task, snapshot: list[int]) -> int:
        cid = super().place_new_task(task, snapshot)
        task.round_slice_remaining = self._fresh_round_slice()
        task.round_number = self.round.get(cid, 0)
        return cid

    def place_woken(self, task: Task, prev: int) -> int:
        # a waking sleeper joins the current round of its core afresh
        if task.round_slice_remaining <= 0:
            task.round_slice_remaining = self._fresh_round_slice()
        task.throttled = False
        task.round_number = self.round.get(prev, 0)
        return prev

    def on_charge(self, core: "CoreSim", task: Task, dt: int) -> None:
        """Round-slice accounting; exhausted tasks get throttled."""
        task.round_slice_remaining -= dt
        if task.round_slice_remaining <= 0 and not task.throttled:
            task.throttled = True
            # the core parks it at the next put-back (end of this charge's
            # resched); nothing else to do here

    # ------------------------------------------------------------------
    def _donor_key(self, core: "CoreSim") -> tuple[int, int]:
        # bound-method sort key: reads self.round, so it cannot be
        # hoisted to module level like _by_tid
        return (self.round[core.cid], -core.nr_running)

    def _round_balance(self, core: "CoreSim") -> None:
        """The local core ran out of unthrottled tasks.

        Try to steal tasks still inside the current round from other
        CPUs (round balancing); only when no such task is stealable
        does the local round advance and the expired tasks return.
        """
        assert self.system is not None
        my_round = self.round[core.cid]
        stolen = 0
        # steal from CPUs whose round is behind or equal and that still
        # have queued tasks inside their round
        donors = sorted(
            (
                c
                for c in self.system.cores
                if c is not core and self.round[c.cid] <= my_round and c.nr_running >= 2
            ),
            key=self._donor_key,
        )
        for donor in donors:
            for t in sorted(donor.rq.tasks(), key=_by_tid):
                if stolen >= self.steal_batch:
                    break
                if (
                    t.state == TaskState.RUNNABLE
                    and not t.throttled
                    and t.can_run_on(core.cid)
                ):
                    if self.system.migrate(t, core.cid, reason="dwrr.steal"):
                        self.stats_steals += 1
                        stolen += 1
            if stolen >= self.steal_batch:
                break
        if stolen:
            return
        # No stealable work in this round: advance the local round --
        # but only within DWRR's global fairness constraint ("this
        # number for each CPU differs by at most one system-wide").  A
        # core ahead of a busy laggard must idle until the laggard
        # catches up: this round-synchronization is what degrades DWRR
        # when cores drift (e.g. the paper's 16-on-16 dip).
        if core.throttled:
            laggards = [
                c
                for c in self.system.cores
                if c is not core
                and (c.nr_running > 0 or c.throttled)
                and self.round[c.cid] < my_round
            ]
            if laggards:
                self.stats_round_waits += 1
                return  # wait; the idle tick retries shortly
            self.round[core.cid] = my_round + 1
            self.stats_round_advances += 1
            parked, core.throttled = core.throttled, []
            for t in parked:
                t.throttled = False
                t.round_slice_remaining = self._fresh_round_slice()
                t.round_number = self.round[core.cid]
                core.enqueue(t)

    def _fresh_round_slice(self) -> int:
        """A new round slice, with timer-tick accounting jitter.

        The kernel enforces round slices at timer-tick granularity, so
        effective slices skew by up to a tick; this is what desynchronizes
        cores' rounds over time (and with the strict round constraint
        above, costs idle waits).
        """
        assert self.system is not None
        return self.round_slice_us + self.system.rng.jitter_us(
            "dwrr.slice", self.slice_jitter_us
        )
