"""The Linux 2.6.28 load balancer ("LOAD" in the paper's figures).

Faithful to the description in Section 2 of the paper:

* load = run-queue length (``nr_running``), balanced over the
  scheduling-domain hierarchy (SMT -> cache -> socket -> NUMA);
* each core periodically pulls from the busiest queue of the busiest
  group in each of its domains, at a frequency that decreases up the
  hierarchy (idle cores: every 1-2 timer ticks on UMA, 64 ms for NUMA;
  busy cores: 64-128 ms SMT, 64-256 ms shared package, 256-1024 ms
  NUMA);
* an *imbalance percentage* (typically 125%, 110% for SMT) gates
  migration, and integer arithmetic means "if the balance cannot be
  improved (e.g. one group has 3 tasks and the other 2 tasks) Linux
  will not migrate any tasks" -- the very behaviour that motivates
  speed balancing;
* the balancer never migrates the running task and resists migrating
  "cache hot" tasks (ran within ~5 ms), giving in after repeated
  failed attempts;
* a core that becomes idle immediately tries to pull (new-idle
  balancing) -- this is what lets LOAD cope with applications whose
  waiting threads *sleep* (Section 6.2), and what yield-mode waiters
  defeat by keeping every queue visibly non-empty.

Simplification vs the kernel: the escalation path that wakes the
kernel migration thread to push work to an idle core is subsumed by
new-idle pulls (an idle core pulls immediately, including cache-hot
tasks after failures), which reaches the same steady states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.balance.base import KernelBalancer
from repro.sched.task import Task, TaskState
from repro.topology.machine import DomainLevel, SchedDomain

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.core import CoreSim
    from repro.system import System

__all__ = ["LinuxParams", "LinuxLoadBalancer"]


def _default_busy_intervals() -> dict[DomainLevel, int]:
    # midpoints of the ranges the paper quotes for busy cores
    return {
        DomainLevel.SMT: 64_000,
        DomainLevel.CACHE: 128_000,
        DomainLevel.SOCKET: 192_000,
        DomainLevel.MACHINE: 256_000,
        DomainLevel.NUMA: 512_000,
    }


def _default_idle_intervals() -> dict[DomainLevel, int]:
    # "every 1 to 2 timer ticks (typically 10ms on a server) on UMA and
    # every 64ms on NUMA"
    return {
        DomainLevel.SMT: 10_000,
        DomainLevel.CACHE: 10_000,
        DomainLevel.SOCKET: 10_000,
        DomainLevel.MACHINE: 10_000,
        DomainLevel.NUMA: 64_000,
    }


def _default_imbalance_pct() -> dict[DomainLevel, int]:
    # "typically 125% for most scheduling domains, with SMT usually
    # being lower at 110%"
    return {
        DomainLevel.SMT: 110,
        DomainLevel.CACHE: 125,
        DomainLevel.SOCKET: 125,
        DomainLevel.MACHINE: 125,
        DomainLevel.NUMA: 125,
    }


@dataclass
class LinuxParams:
    """Tunables of the Linux balancer model (the /proc knobs)."""

    busy_interval_us: dict[DomainLevel, int] = field(default_factory=_default_busy_intervals)
    idle_interval_us: dict[DomainLevel, int] = field(default_factory=_default_idle_intervals)
    imbalance_pct: dict[DomainLevel, int] = field(default_factory=_default_imbalance_pct)
    #: cache-hot window (paper: "executed recently (~5ms) on the core")
    cache_hot_us: int = 5_000
    #: failed balance attempts before cache-hot tasks become eligible
    #: (paper: "typically between one and two")
    hot_resist_attempts: int = 2
    #: base tick driving the periodic balancer check
    tick_us: int = 10_000


class LinuxLoadBalancer(KernelBalancer):
    """Queue-length balancing over the scheduling-domain hierarchy."""

    name = "linux"

    def __init__(self, params: Optional[LinuxParams] = None):
        super().__init__()
        self.params = params or LinuxParams()
        self._last_balance: dict[tuple[int, int], int] = {}  # (cid, level) -> time
        self._failed: dict[tuple[int, int], int] = {}  # consecutive failures
        #: cid -> [(domain, (cid, level), busy_iv, idle_iv)], built once
        #: at attach so ticks skip per-domain enum/dict hops
        self._tick_plan: dict[int, list] = {}
        #: cid -> (callback, label) reused across tick reschedules
        self._tick_cb: dict[int, tuple] = {}
        #: (cid, level) -> (load_epoch, branch): the no-op outcome of the
        #: last balance pass at that key, valid while no core's load has
        #: changed (see System._load_epoch).  Armed only under a batching
        #: engine backend; the heap path never reads or writes it.
        self._noop: dict[tuple[int, int], tuple[int, int]] = {}
        self._memo_enabled = False
        self._load_epoch: list[int] = [0]
        #: engine time snapshot read by _pull_sort_key during the sort
        self._sort_now = 0
        self.stats_pulls = 0
        self.stats_attempts = 0

    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        super().attach(system)
        self._memo_enabled = system.engine.batching
        self._load_epoch = system._load_epoch
        for core in system.cores:
            core.idle_callbacks.append(self._newidle_balance)
            # Per-core tick plan, precomputed once: domain list with the
            # (cid, level) bookkeeping key and both interval choices
            # resolved, plus a reusable callback/label pair.  The tick
            # fires on every core every 10 ms of simulated time, so the
            # per-tick dict/enum lookups and lambda allocations add up.
            cid = core.cid
            self._tick_plan[cid] = [
                (
                    domain,
                    (cid, int(domain.level)),
                    self.params.busy_interval_us[domain.level],
                    self.params.idle_interval_us[domain.level],
                )
                for domain in system.machine.domains_by_core[cid]
            ]
            label = f"linux.tick.{cid}"
            callback = (lambda c=core: self._tick(c))
            self._tick_cb[cid] = (callback, label)
            # stagger periodic ticks so cores don't balance in lockstep
            offset = system.rng.jitter_us("linux.tick", self.params.tick_us)
            system.engine.schedule(self.params.tick_us + offset, callback, label)

    # ------------------------------------------------------------------
    # periodic balancing
    # ------------------------------------------------------------------
    def _tick(self, core: "CoreSim") -> None:
        assert self.system is not None
        now = self.system.engine.now
        idle = core.current is None and core.rq.count == 0
        last_balance = self._last_balance
        if self._memo_enabled:
            # batched backends: replay memoized no-op passes right here,
            # skipping the _balance_domain frame.  The epoch is re-read
            # per domain because a pass that does pull tasks bumps it.
            noop = self._noop
            epoch_cell = self._load_epoch
            for domain, key, busy_iv, idle_iv in self._tick_plan[core.cid]:
                if now - last_balance.get(key, 0) >= (idle_iv if idle else busy_iv):
                    last_balance[key] = now
                    memo = noop.get(key)
                    if memo is not None and memo[0] == epoch_cell[0]:
                        self.stats_attempts += 1
                        if memo[1] == 2:
                            self._failed.pop(key, None)
                        continue
                    self._balance_domain(core, domain)
        else:
            for domain, key, busy_iv, idle_iv in self._tick_plan[core.cid]:
                if now - last_balance.get(key, 0) >= (idle_iv if idle else busy_iv):
                    last_balance[key] = now
                    self._balance_domain(core, domain)
        callback, label = self._tick_cb[core.cid]
        self.system.engine.schedule(self.params.tick_us, callback, label)

    def _balance_domain(self, core: "CoreSim", domain: SchedDomain) -> None:
        """One balancing pass at one domain level, pulling toward core.

        Under a batching engine backend, passes that ended in one of the
        three load-only no-op branches are memoized against the global
        load epoch: while no core's load has changed, the pass would
        sweep the same ``nr_running`` values and take the same branch,
        so it is replayed (including its one side effect, the
        ``_failed`` reset of the within-percentage branch) without the
        group sweep.  Passes that reach :meth:`_pull_tasks` are never
        memoized -- their outcome depends on simulated time (cache-hot
        windows) and per-task state, not just loads.
        """
        assert self.system is not None
        key = (core.cid, int(domain.level))
        if self._memo_enabled:
            memo = self._noop.get(key)
            if memo is not None and memo[0] == self._load_epoch[0]:
                self.stats_attempts += 1
                if memo[1] == 2:
                    self._failed.pop(key, None)
                return
        self.stats_attempts += 1
        cores = self.system.cores
        # One pass over the groups, inlining nr_running: this sweep runs
        # on every balancer tick at every domain level, so the dict of
        # loads and the keyed max() (a lambda call per group) added up.
        # `total > busiest_load` keeps the first maximal group, exactly
        # as max() over the group iteration order did.
        local_group = domain.group_of(core.cid)
        local_load = 0
        busiest_group = None
        busiest_load = -1
        for g in domain.groups:
            total = 0
            for c in g:
                cs = cores[c]
                total += cs.rq.count + (1 if cs.current is not None else 0)
            if g is local_group:
                local_load = total
            elif total > busiest_load:
                busiest_group = g
                busiest_load = total
        if busiest_group is None:
            if self._memo_enabled:
                self._noop[key] = (self._load_epoch[0], 1)
            return
        pct = self.params.imbalance_pct[domain.level]
        if busiest_load * 100 <= local_load * pct:
            self._failed.pop(key, None)
            if self._memo_enabled:
                self._noop[key] = (self._load_epoch[0], 2)
            return
        # integer imbalance: how many tasks to move to even the groups
        n_to_move = (busiest_load - local_load) // 2
        if n_to_move < 1:
            # e.g. 3 vs 2: the balance "cannot be improved"; do nothing
            if self._memo_enabled:
                self._noop[key] = (self._load_epoch[0], 3)
            return
        busiest_core = None
        busiest_nr = -1
        for c in busiest_group:
            cs = cores[c]
            nr = cs.rq.count + (1 if cs.current is not None else 0)
            if nr > busiest_nr:
                busiest_core = cs
                busiest_nr = nr
        moved = self._pull_tasks(core, busiest_core, n_to_move, domain.level)
        if moved:
            self._failed.pop(key, None)
        else:
            self._failed[key] = self._failed.get(key, 0) + 1

    def _pull_sort_key(self, task: Task) -> tuple[bool, int]:
        # bound-method sort key: needs the engine-time snapshot in
        # self._sort_now, so it cannot be a module-level function; using
        # a method instead of a lambda keeps the pull path closure-free
        return (task.cache_hot(self._sort_now, self.params.cache_hot_us), task.tid)

    def _pull_tasks(
        self,
        dst: "CoreSim",
        src: "CoreSim",
        n: int,
        level: DomainLevel,
        allow_hot_override: bool = False,
    ) -> int:
        """Pull up to ``n`` movable tasks src -> dst.  Returns count."""
        assert self.system is not None
        now = self.system.engine.now
        allow_hot = (
            allow_hot_override
            or self._failed.get((dst.cid, int(level)), 0) >= self.params.hot_resist_attempts
        )
        moved = 0
        # never the running task; prefer cache-cold candidates
        candidates = [
            t
            for t in src.rq.tasks()
            if t.state == TaskState.RUNNABLE and t.can_run_on(dst.cid)
        ]
        self._sort_now = now
        candidates.sort(key=self._pull_sort_key)
        for task in candidates:
            if moved >= n:
                break
            if task.cache_hot(now, self.params.cache_hot_us) and not allow_hot:
                continue
            if self.system.migrate(task, dst.cid, reason=f"linux.{level.name.lower()}"):
                moved += 1
        self.stats_pulls += moved
        return moved

    # ------------------------------------------------------------------
    # new-idle balancing
    # ------------------------------------------------------------------
    def _newidle_balance(self, core: "CoreSim") -> None:
        """A core just ran out of work: pull one task immediately.

        Walks the domain hierarchy bottom-up and takes the first
        available task from the busiest queue with more than one
        runnable task.  Cache-hot resistance applies but yields after
        the configured failed attempts -- an idle core beats locality.
        """
        assert self.system is not None
        cores = self.system.cores
        my_cid = core.cid
        for domain in self.system.machine.domains_by_core[my_cid]:
            # explicit first-max scan (see _balance_domain)
            busiest = None
            busiest_nr = -1
            for c in domain.core_ids:
                if c == my_cid:
                    continue
                cs = cores[c]
                nr = cs.rq.count + (1 if cs.current is not None else 0)
                if nr > busiest_nr:
                    busiest = cs
                    busiest_nr = nr
            if busiest is None or busiest_nr < 2:
                continue
            if self._pull_tasks(core, busiest, 1, domain.level):
                return
            # second chance: an idle core may take even a hot task
            if self._pull_tasks(core, busiest, 1, domain.level, allow_hot_override=True):
                return
