"""Static application-level balancing: PINNED and One-per-core.

The paper's "PINNED" series pins the application's threads round-robin
to the allocated cores, which "only achieves optimal speedup when
16 mod N = 0" (Figure 3) -- included "to give an indication of the
potential cost of migrations".  "One-per-core" is the same mechanism
with exactly as many threads as cores (the ideal-scaling reference).
"""

from __future__ import annotations

from repro.balance.base import KernelBalancer
from repro.sched.task import Task

__all__ = ["PinnedBalancer"]


class PinnedBalancer(KernelBalancer):
    """Round-robin pinning in task creation order; no migration ever.

    Placement ignores load entirely: thread *i* of a burst goes to
    allowed core ``i mod n``, and is pinned there.  This reproduces
    static application-level balancing (numactl / sched_setaffinity in
    a launcher script).
    """

    name = "pinned"

    def __init__(self) -> None:
        super().__init__()
        self._next: dict[frozenset[int] | None, int] = {}

    def place_new_task(self, task: Task, snapshot: list[int]) -> int:
        assert self.system is not None
        allowed = tuple(self.system._allowed(task))
        key = task.allowed_cores
        idx = self._next.get(key, 0)
        self._next[key] = idx + 1
        cid = allowed[idx % len(allowed)]
        task.pin(frozenset({cid}))
        return cid
