"""FreeBSD 7.2 ULE scheduler migration model.

From Section 2 of the paper: ULE uses per-core queues with "a
combination of pull and push task migration mechanisms".  The push
mechanism "runs twice a second and moves threads from the highest
loaded queue to the lightest loaded queue"; by default it "will not
migrate threads when a static balance is not attainable" (e.g. 3 tasks
on 2 CPUs), though ``kern.sched.steal_thresh=1`` theoretically lowers
the threshold.  The paper "explored all variations of the kern.sched
settings, without being able to observe the benefits of this mechanism
for parallel application performance" -- and this model shows why:
pushing always selects a queued (non-running) thread, so the *same*
victim bounces between queues ("hot-potato" in the paper's terms)
while per-thread progress stays as imbalanced as before.  Speed
balancing's least-migrated victim choice is the direct answer to this.

Pull (idle steal) is modeled like Linux new-idle balancing without the
cache-hot resistance (ULE's steal is unconditional on load threshold).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.balance.base import KernelBalancer
from repro.sched.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.core import CoreSim
    from repro.system import System

__all__ = ["UleBalancer"]


# module-level sort/extremum keys: hoisted out of the balancing hot
# path so no closure is allocated per push/steal (KERN005)
def _by_nr_running(core: "CoreSim") -> int:
    return core.nr_running


def _by_tid(task: Task) -> int:
    return task.tid


def _hot_potato_key(task: Task) -> tuple[int, int]:
    # most-recently migrated first: deterministic hot-potato
    return (-task.last_migrated_at, -task.tid)


class UleBalancer(KernelBalancer):
    """Push twice a second + idle steal.

    Parameters
    ----------
    steal_thresh:
        Minimum queue-length difference that triggers a push.  The
        FreeBSD default effectively requires an improvable imbalance
        (difference of 2); setting 1 mimics the paper's tuning attempt.
    push_interval_us:
        Period of the push task ("runs twice a second").
    """

    name = "ule"

    def __init__(
        self,
        steal_thresh: int = 2,
        push_interval_us: int = 500_000,
        idle_tick_us: int = 10_000,
    ):
        super().__init__()
        if steal_thresh < 1:
            raise ValueError("steal_thresh must be >= 1")
        self.steal_thresh = steal_thresh
        self.push_interval_us = push_interval_us
        #: FreeBSD's idle thread loops looking for work to steal; a core
        #: idle from t=0 (which never fires the idle-transition hook)
        #: polls at this period instead.
        self.idle_tick_us = idle_tick_us
        self.stats_pushes = 0
        self.stats_steals = 0
        #: cid -> (callback, label) reused across tick reschedules
        self._tick_cb: dict[int, tuple[Callable[[], None], str]] = {}

    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        super().attach(system)
        for core in system.cores:
            core.idle_callbacks.append(self._idle_steal)
            # reusable callback/label pair: the tick re-arms itself every
            # 10 ms per core, so per-tick lambda allocations add up
            label = f"ule.tick.{core.cid}"
            callback = (lambda c=core: self._idle_tick(c))
            self._tick_cb[core.cid] = (callback, label)
            offset = system.rng.jitter_us("ule.tick", self.idle_tick_us)
            system.engine.schedule(self.idle_tick_us + offset, callback, label)
        system.engine.schedule(self.push_interval_us, self._push, "ule.push")

    def _idle_tick(self, core: "CoreSim") -> None:
        assert self.system is not None
        if core.is_idle:
            self._idle_steal(core)
        callback, label = self._tick_cb[core.cid]
        self.system.engine.schedule(self.idle_tick_us, callback, label)

    # ------------------------------------------------------------------
    def place_new_task(self, task, snapshot: list[int]) -> int:
        """FreeBSD fork placement reads *live* queue state.

        ULE's ``sched_pickcpu`` runs under the target queue's lock, so a
        burst of simultaneous forks does not race on stale idleness the
        way the paper's footnote describes for Linux -- which is why
        the paper measures ULE tracking the statically balanced case.
        """
        assert self.system is not None
        live = [c.nr_running for c in self.system.cores]
        allowed = self.system._allowed(task)
        best = min(live[c] for c in allowed)
        candidates = [c for c in allowed if live[c] == best]
        if len(candidates) == 1:
            return candidates[0]
        return self.system.rng.choice("ule.place", candidates)

    # ------------------------------------------------------------------
    def _push(self) -> None:
        """Move one thread from the longest to the shortest queue."""
        assert self.system is not None
        cores = self.system.cores
        busiest = max(cores, key=_by_nr_running)
        lightest = min(cores, key=_by_nr_running)
        if busiest.nr_running - lightest.nr_running >= self.steal_thresh:
            victim = self._pick_victim(busiest, lightest.cid)
            if victim is not None and self.system.migrate(
                victim, lightest.cid, reason="ule.push"
            ):
                self.stats_pushes += 1
        self.system.engine.schedule(self.push_interval_us, self._push, "ule.push")

    def _pick_victim(self, src: "CoreSim", dst_cid: int) -> Optional[Task]:
        """ULE pushes a queued thread: the last (coldest) in the queue.

        Crucially there is no migration history, so under a persistent
        1-thread imbalance the same thread is selected every period.
        """
        candidates = [
            t
            for t in src.rq.tasks()
            if t.state == TaskState.RUNNABLE and t.can_run_on(dst_cid)
        ]
        if not candidates:
            return None
        candidates.sort(key=_hot_potato_key)
        return candidates[0]

    def _idle_steal(self, core: "CoreSim") -> None:
        """An idle core steals one thread from the most loaded queue."""
        assert self.system is not None
        busiest = max(
            (c for c in self.system.cores if c is not core),
            key=_by_nr_running,
            default=None,
        )
        if busiest is None or busiest.nr_running < 2:
            return
        for t in sorted(busiest.rq.tasks(), key=_by_tid):
            if t.state == TaskState.RUNNABLE and t.can_run_on(core.cid):
                if self.system.migrate(t, core.cid, reason="ule.steal"):
                    self.stats_steals += 1
                    return
