"""Command-line interface: quick experiments without writing code.

Examples
--------
Describe the modeled machines::

    python -m repro machines

Run EP (16 threads) under each balancer on 12 Tigerton cores::

    python -m repro run --bench ep.C --cores 12 --balancer speed load pinned

The 3-threads-on-2-cores motivating example::

    python -m repro run --bench ep.C --threads 3 --cores 2 --seconds 2

Print the Section 4 analytical model for a configuration::

    python -m repro model --threads 16 --cores 12
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.apps.barriers import WaitPolicy
from repro.apps.workloads import FULL_CATALOG, WAIT_MODES, AppSpec, make_nas_app
from repro.core import analytical
from repro.harness import report
from repro.harness.experiment import BALANCER_MODES, repeat_run, run_app
from repro.harness.parallel import MACHINE_PRESETS
from repro.sim.backends import backend_names
from repro.topology import presets

#: the named machines (shared with repro.harness.parallel run specs)
MACHINES = MACHINE_PRESETS

WAITS = WAIT_MODES


def _cmd_machines(args: argparse.Namespace) -> int:
    for name, factory in MACHINES.items():
        print(factory().describe())
        print()
    return 0


def _cmd_benches(args: argparse.Namespace) -> int:
    rows = [
        [
            name,
            entry.rss_per_core_gb,
            entry.mem_intensity,
            (entry.inter_barrier_upc_us or 0) / 1000,
            (entry.inter_barrier_omp_us or 0) / 1000,
        ]
        for name, entry in FULL_CATALOG.items()
    ]
    print(report.table(
        ["bench", "RSS GB/core", "mem intensity", "barrier UPC ms",
         "barrier OMP ms"],
        rows,
        title="NAS-like workload catalog (Table 2 of the paper; mg.B and "
              "lu.A are extrapolated extensions)",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = MACHINES[args.machine]
    total_us = int(args.seconds * 1_000_000)
    # an AppSpec rather than a factory closure so --workers can ship the
    # job to worker processes (closures do not pickle)
    spec = AppSpec(
        bench=args.bench, n_threads=args.threads, wait=args.wait,
        total_compute_us=total_us,
    )

    rows = []
    for mode in args.balancer:
        rr = repeat_run(
            machine, spec, balancer=mode, cores=args.cores,
            seeds=range(args.repeats), workers=args.workers,
            engine=args.engine,
        )
        rows.append([
            mode.upper(),
            rr.mean_speedup,
            rr.mean_time_us / 1e6,
            rr.variation_pct,
            rr.mean_migrations,
        ])
    print(report.table(
        ["balancer", "speedup", "time (s)", "variation %", "migrations"],
        rows,
        title=(
            f"{args.bench}, {args.threads} threads on {args.cores} "
            f"{args.machine} cores, {args.wait} barriers, "
            f"{args.repeats} seeds (ideal speedup {args.cores})"
        ),
    ))
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    n, m = args.threads, args.cores
    shape = analytical.queue_shape(n, m)
    pairs = {
        "threads (N)": n,
        "cores (M)": m,
        "threads per fast core (T)": shape.t,
        "fast cores (FQ)": shape.fq,
        "slow cores (SQ)": shape.sq,
        "Lemma 1 step bound": analytical.lemma1_steps_bound(n, m),
        "min profitable S (x balance interval B)": analytical.min_profitable_s(n, m),
        "speed under queue-length balancing": analytical.average_speed_linux(n, m),
        "speed under ideal speed balancing": analytical.average_speed_ideal(n, m),
        "potential speedup": analytical.potential_speedup(n, m),
    }
    print(report.kv_block("Section 4 analytical model", pairs, float_fmt="{:.3f}"))
    return 0


def _invariant_runs(args: argparse.Namespace):
    """Yield one result dict per invariant smoke run.

    The shared matrix behind ``repro check --invariants`` and the
    invariants leg of ``repro check --all``: balancer modes on a UMA
    and a NUMA machine with an
    :class:`~repro.analysis.invariants.InvariantChecker` installed at
    full scan resolution.  Stops at the first violation.
    """
    from repro.analysis.invariants import (
        InvariantConfig,
        InvariantViolation,
        install_invariant_checker,
    )

    total_us = int(args.seconds * 1_000_000)
    wait = WaitPolicy(mode=WAITS[args.wait])
    machines = [("uniform4", lambda: presets.uniform(4)), ("barcelona", presets.barcelona)]
    checkers = []

    def instrument(system) -> None:
        checkers.append(
            install_invariant_checker(system, InvariantConfig(scan_stride=1))
        )

    for mname, machine in machines:
        for mode in ("speed", "load", "dwrr", "ule"):
            for seed in range(args.repeats):
                run = f"{mname}/{mode}/seed{seed}"
                try:
                    run_app(
                        machine,
                        lambda system: make_nas_app(
                            system,
                            args.bench,
                            n_threads=6,
                            wait_policy=wait,
                            total_compute_us=total_us,
                        ),
                        balancer=mode,
                        cores=4,
                        seed=seed,
                        instrument=instrument,
                    )
                except InvariantViolation as exc:
                    yield {"run": run, "ok": False, "error": str(exc)}
                    return
                chk = checkers[-1]
                yield {
                    "run": run,
                    "ok": True,
                    "events": chk.stats["events"],
                    "charges": chk.stats["charges"],
                    "migrations": chk.stats["migrations"],
                }


def _check_all(args: argparse.Namespace) -> int:
    """``repro check --all``: every layer, one merged JSON report.

    Runs the determinism lint, the flow analyzer and the kernel
    readiness analyzer (both with their shipped allowlist + ratchet
    baseline, exactly like their CLIs) plus the invariant smoke matrix,
    and prints a single JSON object keyed by layer.
    """
    import json

    from repro.analysis import flow as flow_pkg
    from repro.analysis import kernel as kernel_pkg
    from repro.analysis import suppress
    from repro.analysis.flow import FLOW_RULES
    from repro.analysis.flow.baseline import apply_baseline, load_baseline
    from repro.analysis.kernel import KERN_RULES
    from repro.analysis.lint import lint_paths

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    report: dict = {}

    findings = lint_paths(paths)
    report["lint"] = {
        "status": "fail" if findings else "ok",
        "findings": [f.as_dict() for f in findings],
    }

    for key, pkg, rules in (
        ("flow", flow_pkg, FLOW_RULES),
        ("kernel", kernel_pkg, KERN_RULES),
    ):
        allowlist = []
        if pkg.DEFAULT_ALLOWLIST.exists():
            allowlist = suppress.load_allowlist(pkg.DEFAULT_ALLOWLIST, frozenset(rules))
        layer = pkg.analyze_paths(paths, allowlist)
        layer_findings, stale = layer.findings, []
        if pkg.DEFAULT_BASELINE.exists():
            allowed = load_baseline(pkg.DEFAULT_BASELINE, frozenset(rules))
            layer_findings, stale = apply_baseline(layer_findings, allowed)
        failed = bool(layer_findings) or bool(stale) or bool(layer.errors)
        report[key] = {
            "status": "fail" if failed else "ok",
            "findings": [f.as_dict() for f in layer_findings],
            "stale_baseline": stale,
            "errors": [list(e) for e in layer.errors],
        }
        if key == "kernel":
            report[key]["reachable"] = layer.reachable

    runs = list(_invariant_runs(args))
    inv_ok = all(r["ok"] for r in runs)
    report["invariants"] = {"status": "ok" if inv_ok else "fail", "runs": runs}

    report["status"] = (
        "ok"
        if all(layer["status"] == "ok" for layer in report.values() if isinstance(layer, dict))
        else "fail"
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["status"] == "ok" else 1


def _cmd_check(args: argparse.Namespace) -> int:
    """Correctness tooling: static analysis + runtime invariants.

    ``repro check`` runs the per-file lint, the whole-program flow
    analysis and the invariant smoke; ``--lint`` / ``--flow`` /
    ``--kernel`` / ``--invariants`` restrict it to one layer and
    ``--all`` runs every layer (adding the kernel readiness analyzer)
    with one merged JSON report.  The invariant pass runs a smoke
    matrix of balancer modes on a UMA and a NUMA machine with an
    :class:`~repro.analysis.invariants.InvariantChecker` installed at
    full scan resolution, so every mechanism invariant (INV001..INV004)
    and the speed balancer's policy invariants (INV005/INV006) are
    exercised end to end.
    """
    from repro.analysis.lint import lint_paths

    if args.all:
        return _check_all(args)

    restricted = args.lint or args.invariants or args.flow or args.kernel
    do_lint = args.lint or not restricted
    do_flow = args.flow or not restricted
    do_kernel = args.kernel
    do_invariants = args.invariants or not restricted
    status = 0

    if do_lint:
        paths = args.paths or [str(Path(__file__).resolve().parent)]
        findings = lint_paths(paths)
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"lint: {'ok' if not n else f'{n} finding(s)'} ({', '.join(paths)})")
        if n:
            status = 1

    if do_flow:
        from repro.analysis.flow.cli import main as flow_main

        paths = args.paths or [str(Path(__file__).resolve().parent)]
        if flow_main(paths):
            status = 1

    if do_kernel:
        from repro.analysis.kernel.cli import main as kernel_main

        paths = args.paths or [str(Path(__file__).resolve().parent)]
        if kernel_main(paths):
            status = 1

    if do_invariants:
        for result in _invariant_runs(args):
            if not result["ok"]:
                print(f"FAIL {result['run']}: {result['error']}")
                return 1
            print(
                f"ok   {result['run']}: "
                f"{result['events']} events, "
                f"{result['charges']} charges, "
                f"{result['migrations']} migrations checked"
            )
        print("invariants: ok (INV001..INV006 held on the whole smoke matrix)")
    return status


def _cmd_sanitize(args: argparse.Namespace) -> int:
    """Schedule sanitizer: trace-level race/conservation analysis.

    Runs each scenario smoke with full tracing, feeds the recorded
    history through :func:`repro.analysis.sanitizer.sanitize_system`
    and reports findings (SAN001..SAN007).  ``--differential`` adds the
    determinism legs (SAN008): hash-seed subprocess pairs, observers
    on/off and serial-vs-parallel workers.  ``--digest`` is the
    internal child mode those subprocess pairs invoke -- it prints the
    canonical run digest and nothing else.
    """
    import json as _json

    from repro.analysis.sanitizer import run_digest, sanitize_system
    from repro.harness.scenarios import scenario_smokes

    if args.stored is not None:
        return _sanitize_stored(args)

    smokes = scenario_smokes()
    if args.digest is not None:
        smoke = smokes.get(args.digest)
        if smoke is None:
            print(f"repro: error: unknown scenario {args.digest!r}; "
                  f"expected one of {sorted(smokes)}", file=sys.stderr)
            return 2
        result, system = smoke.run(seed=args.seed, engine=args.engine)
        print(run_digest(result, system.trace, system.engine))
        return 0

    names = args.scenario or sorted(smokes)
    unknown = [n for n in names if n not in smokes]
    if unknown:
        print(f"repro: error: unknown scenario(s) {unknown}; "
              f"expected from {sorted(smokes)}", file=sys.stderr)
        return 2

    findings = []
    for name in names:
        result, system = smokes[name].run(seed=args.seed, engine=args.engine)
        found = sanitize_system(system, result=result, context=name)
        findings.extend(found)
        if not args.json:
            trace = system.trace
            print(f"{name}: {len(found)} finding(s), "
                  f"{len(trace.segments)} segments, "
                  f"{len(trace.migrations)} migration events")

    if args.differential:
        from repro.analysis.differential import differential_check

        for name in names:
            diff = differential_check(name, seed=args.seed, engine=args.engine)
            findings.extend(diff)
            if not args.json:
                print(f"{name}: differential {'ok' if not diff else 'DIVERGED'}")

    if args.json:
        print(_json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"sanitize: {'ok' if not n else f'{n} finding(s)'} "
              f"({len(names)} scenario(s), seed {args.seed}"
              f"{', differential' if args.differential else ''})")
    return 1 if findings else 0


def _sanitize_stored(args: argparse.Namespace) -> int:
    """``repro sanitize --store DIR --stored [DIGEST...]``.

    Analyzes traces archived by ``repro submit --trace`` instead of
    re-running scenarios; an empty digest list means every traced
    entry in the store.
    """
    import json as _json

    from repro.analysis.sanitizer import sanitize_stored
    from repro.store import ResultStore

    store = ResultStore(args.store)
    if args.stored:
        digests = [_resolve_digest(store, d) for d in args.stored]
    else:
        digests = [e["digest"] for e in store.entries() if e.get("has_trace")]
        if not digests:
            print(f"repro: error: no traced entries in {args.store}; "
                  "archive some with repro submit --trace", file=sys.stderr)
            return 2

    findings = []
    for digest in digests:
        found = sanitize_stored(store, digest)
        findings.extend(found)
        if not args.json:
            print(f"{digest[:12]}: {len(found)} finding(s)")
    if args.json:
        print(_json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"sanitize: {'ok' if not n else f'{n} finding(s)'} "
              f"({len(digests)} stored trace(s) in {args.store})")
    return 1 if findings else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Perf trajectory: run the bench suite, write/compare BENCH_*.json.

    Exit codes: 0 ok, 1 wall-time regression, 2 events mismatch (a
    determinism regression -- simulated behaviour drifted from the
    baseline, which no threshold excuses).  The events check always
    runs (and fails) before the wall-time one.  See
    :mod:`repro.harness.bench` and docs/performance.md.
    """
    from repro.harness import bench

    if args.profile is not None:
        print(bench.profile_benches(quick=args.quick, top_n=args.profile,
                                    engine=args.engine),
              end="")
        return 0

    if args.compare is not None and len(args.compare) > 2:
        print("repro bench: --compare takes one payload (against "
              "--baseline) or exactly two", file=sys.stderr)
        return 2

    if args.compare is not None and len(args.compare) == 2:
        return _bench_compare_pair(args, bench)

    if args.compare is not None:
        if args.baseline is None:
            print("repro bench: --compare with one payload requires "
                  "--baseline (or give two payloads: --compare A B)",
                  file=sys.stderr)
            return 2
        payload = bench.load_payload(args.compare[0])
    else:
        results = bench.run_benches(
            quick=args.quick,
            rounds=args.rounds,
            engine=args.engine,
            progress=lambda r: print(
                f"  {r.name}: {r.wall_s:.3f}s, {r.events} events "
                f"({r.events_per_sec / 1e3:.0f}k ev/s, "
                f"{r.ns_per_event:.0f} ns/event, best of {r.rounds})"
            ),
        )
        payload = bench.to_payload(results, label=args.label, quick=args.quick,
                                   engine=args.engine)
        path = bench.write_payload(payload, out_dir=args.out)
        print(f"wrote {path}")

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None:
        return 0
    if not baseline_path.exists():
        print(f"baseline {baseline_path} not found; skipping comparison "
              "(commit this run's output to establish one)")
        return 0
    comparisons = bench.compare_payloads(
        bench.load_payload(baseline_path), payload,
        threshold_pct=args.threshold,
    )

    # determinism tripwire first: an event-count drift means simulated
    # behaviour changed, which a wall-time threshold must never mask
    if not args.wall_only:
        mismatched = [c for c in comparisons if c.events_mismatch]
        if mismatched:
            for c in mismatched:
                print(f"repro bench: events mismatch in {c.name}: baseline "
                      f"{c.baseline_events}, now {c.events} (determinism "
                      "regression)", file=sys.stderr)
            return 2
        print(f"events: {len(comparisons)} bench(es) match "
              f"{baseline_path} exactly")
    if args.events_only:
        return 0

    rows = [
        [c.name, c.baseline_wall_s, c.wall_s, c.delta_pct,
         "REGRESSED" if c.regressed else "ok"]
        for c in comparisons
    ]
    print(report.table(
        ["bench", "baseline s", "now s", "delta %", "status"], rows,
        title=f"vs {baseline_path} (threshold {args.threshold:g}%)",
    ))
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        names = ", ".join(c.name for c in regressed)
        print(f"repro bench: {len(regressed)} regression(s): {names}",
              file=sys.stderr)
        return 1
    return 0


def _bench_compare_pair(args: argparse.Namespace, bench) -> int:
    """``repro bench --compare A.json B.json``: the head-to-head form.

    Treats the first payload as the reference and the second as the
    candidate, prints a per-bench speedup table (reference wall over
    candidate wall, so >1.0 means the candidate is faster) and exits
    non-zero when the candidate is more than ``--threshold`` percent
    slower on any bench.  The deterministic event-count check still runs
    first (exit 2 on drift) unless ``--wall-only``; cross-engine pairs
    are the intended use -- matching counts are the batching parity
    tripwire.
    """
    if args.baseline is not None:
        print("repro bench: --baseline does not combine with the "
              "two-payload --compare form", file=sys.stderr)
        return 2
    ref_path, cand_path = args.compare
    ref = bench.load_payload(ref_path)
    cand = bench.load_payload(cand_path)
    comparisons = bench.compare_payloads(ref, cand,
                                         threshold_pct=args.threshold)
    if not comparisons:
        print("repro bench: the two payloads share no bench cases",
              file=sys.stderr)
        return 2

    if not args.wall_only:
        mismatched = [c for c in comparisons if c.events_mismatch]
        if mismatched:
            for c in mismatched:
                print(f"repro bench: events mismatch in {c.name}: "
                      f"{ref_path} has {c.baseline_events}, {cand_path} "
                      f"has {c.events} (determinism regression)",
                      file=sys.stderr)
            return 2
        print(f"events: {len(comparisons)} bench(es) match between "
              f"{ref_path} and {cand_path}")
    if args.events_only:
        return 0

    rows = [
        [c.name, c.baseline_wall_s, c.wall_s,
         c.baseline_wall_s / c.wall_s if c.wall_s > 0 else 0.0,
         "REGRESSED" if c.regressed else "ok"]
        for c in comparisons
    ]
    print(report.table(
        ["bench", f"{ref.get('engine', '?')} s", f"{cand.get('engine', '?')} s",
         "speedup", "status"],
        rows,
        title=(f"{ref_path} ({ref['label']}) vs {cand_path} "
               f"({cand['label']}); speedup >1.0 = second payload faster, "
               f"threshold {args.threshold:g}%"),
        float_fmt="{:.4g}",
    ))
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        names = ", ".join(c.name for c in regressed)
        print(f"repro bench: {len(regressed)} regression(s) beyond "
              f"{args.threshold:g}%: {names}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# content-addressed store + job service (repro.store / repro.service)
# ----------------------------------------------------------------------
def _resolve_digest(store, prefix: str) -> str:
    """A full digest from a (possibly abbreviated) hex prefix."""
    if not prefix or any(c not in "0123456789abcdef" for c in prefix):
        raise ValueError(f"invalid digest prefix {prefix!r} (lowercase hex)")
    matches = [d for d in store.digests() if d.startswith(prefix)]
    if not matches:
        raise ValueError(f"no store entry matches digest prefix {prefix!r}")
    if len(matches) > 1:
        raise ValueError(
            f"digest prefix {prefix!r} is ambiguous "
            f"({len(matches)} matches); give more characters"
        )
    return matches[0]


def _submit_specs(args: argparse.Namespace) -> list:
    """The RunSpec batch behind one ``repro submit`` invocation."""
    from repro.harness.parallel import RunSpec

    total_us = int(args.seconds * 1_000_000)
    app = AppSpec(
        bench=args.bench, n_threads=args.threads, wait=args.wait,
        total_compute_us=total_us,
    )
    return [
        RunSpec.make(
            args.machine, app, balancer=mode, cores=args.cores, seed=seed,
            engine=args.engine,
        )
        for mode in args.balancer
        for seed in range(args.repeats)
    ]


def _cmd_submit(args: argparse.Namespace) -> int:
    """Run a batch through the job service: only cache misses simulate.

    The second identical invocation serves everything from the store
    (``--expect-cached`` turns that into an assertion, exit 1 if any
    simulation ran -- the CI store-smoke leg).
    """
    import json as _json

    from repro.metrics import export
    from repro.service import JobFailedError, JobService
    from repro.store import ResultStore, spec_digest

    specs = _submit_specs(args)
    store = ResultStore(args.store)

    def on_status(st) -> None:
        line = f"  {st.digest[:12]} {st.state}"
        if st.attempts > 1:
            line += f" (attempt {st.attempts})"
        if st.error:
            line += f": {st.error}"
        print(line)

    service = JobService(store, on_status=None if args.json else on_status)
    try:
        results = service.submit(
            specs, workers=args.workers, trace=args.trace,
            timeout_s=args.job_timeout,
        )
    except JobFailedError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1

    digests = [spec_digest(s) for s in specs]
    cached = sum(
        1 for st in service.statuses().values() if st.state == "cached"
    )
    if args.json:
        print(_json.dumps(
            [
                {"digest": d, "result": export.result_to_dict(r)}
                for d, r in zip(digests, results)
            ],
            indent=2, sort_keys=True,
        ))
    else:
        rows = [
            [d[:12], s.balancer, s.seed, r.speedup, r.elapsed_us / 1e6]
            for d, s, r in zip(digests, specs, results)
        ]
        print(report.table(
            ["digest", "balancer", "seed", "speedup", "time (s)"], rows,
            title=(
                f"{args.bench}, {args.threads} threads on {args.cores} "
                f"{args.machine} cores -> {args.store}"
            ),
        ))
        print(
            f"{len(specs)} job(s): {len(set(digests))} unique, "
            f"{cached} cached, {service.executed} executed"
            f"{', traces archived' if args.trace else ''}"
        )
    if args.expect_cached and service.executed:
        print(
            f"repro submit: expected a fully cached batch but "
            f"{service.executed} job(s) had to run",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """List store entries (all of them, or the given digest prefixes).

    ``--watch`` turns the listing into a poll: re-read the store every
    ``--interval`` seconds until every requested digest prefix has an
    entry (exit 0) or ``--timeout`` elapses first (exit 1).  Watching
    without digests waits for the store to become non-empty.
    """
    import time as _time

    from repro.serve import clock as _clock
    from repro.store import ResultStore

    store = ResultStore(args.store)
    if args.watch:
        deadline = (
            _clock.monotonic() + args.timeout
            if args.timeout is not None
            else None
        )
        while True:
            digests = store.digests()
            missing = (
                [p for p in args.digest if not any(d.startswith(p) for d in digests)]
                if args.digest
                else ([] if digests else ["<any entry>"])
            )
            if not missing:
                break
            if deadline is not None and _clock.monotonic() > deadline:
                print(
                    f"repro status: still waiting on {len(missing)} "
                    f"digest(s) after {args.timeout:g}s: "
                    + ", ".join(m[:12] for m in missing),
                    file=sys.stderr,
                )
                return 1
            _time.sleep(args.interval)

    entries = store.entries()
    if args.digest:
        wanted = {_resolve_digest(store, d) for d in args.digest}
        entries = [e for e in entries if e["digest"] in wanted]
    rows = [
        [
            e["digest"][:12],
            e["seq"],
            e["kind"],
            e.get("app") or "-",
            e.get("balancer") or "-",
            "-" if e.get("seed") is None else e["seed"],
            "yes" if e.get("has_trace") else "no",
        ]
        for e in entries
    ]
    print(report.table(
        ["digest", "seq", "kind", "app", "balancer", "seed", "trace"],
        rows,
        title=f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
              f"in {args.store}",
    ))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    """Print the stored result behind one digest."""
    import json as _json

    from repro.metrics import export
    from repro.store import ResultStore

    store = ResultStore(args.store)
    digest = _resolve_digest(store, args.digest)
    entry = store.get(digest)
    assert entry is not None  # _resolve_digest only returns real entries
    if entry.kind != "run":
        print(_json.dumps(entry.value, indent=2, sort_keys=True))
        return 0
    payload = export.result_to_dict(entry.result)
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    pairs = dict(payload)
    pairs.pop("type", None)
    print(report.kv_block(f"{digest[:12]} ({digest})", pairs))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Store maintenance: ``repro store gc | verify | stats``."""
    from repro.store import ResultStore

    store = ResultStore(args.store)
    if args.store_command == "stats":
        s = store.stats()
        print(report.kv_block(f"store {s.root}", {
            "entries": s.entries,
            "traced": s.traced,
            "total bytes": s.total_bytes,
            "next seq": s.next_seq,
        }))
        return 0
    if args.store_command == "verify":
        findings = store.verify()
        for f in findings:
            print(f)
        print(f"verify: {'clean' if not findings else f'{len(findings)} finding(s)'} "
              f"({store.root})")
        return 1 if findings else 0
    # gc
    rep = store.gc(max_entries=args.max_entries, max_bytes=args.max_bytes)
    for f in rep.findings:
        print(f)
    print(
        f"gc: kept {rep.kept}, removed {rep.removed_corrupt} corrupt, "
        f"evicted {rep.removed_evicted}, adopted {rep.adopted}, "
        f"freed {rep.bytes_freed} bytes"
    )
    return 0


# ----------------------------------------------------------------------
# serving daemon + client (repro.serve)
# ----------------------------------------------------------------------
def _parse_tenant(text: str):
    """``name[:weight[:rate[:burst[:queue_limit]]]]`` -> TenantConfig."""
    from repro.serve import TenantConfig

    parts = text.split(":")
    if not parts[0]:
        raise ValueError(f"tenant spec {text!r} has an empty name")
    if len(parts) > 5:
        raise ValueError(
            f"tenant spec {text!r} has too many fields; expected "
            "name[:weight[:rate[:burst[:queue_limit]]]]"
        )
    try:
        return TenantConfig(
            name=parts[0],
            weight=float(parts[1]) if len(parts) > 1 else 1.0,
            rate=float(parts[2]) if len(parts) > 2 else 50.0,
            burst=float(parts[3]) if len(parts) > 3 else 100.0,
            queue_limit=int(parts[4]) if len(parts) > 4 else 512,
        )
    except ValueError as exc:
        raise ValueError(f"tenant spec {text!r}: {exc}") from None


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving daemon until SIGTERM/SIGINT drains it."""
    import asyncio

    from repro.serve import ServeConfig
    from repro.serve.server import run_server

    config = ServeConfig(
        store_root=args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        tenants=tuple(_parse_tenant(t) for t in args.tenant),
        window_s=args.window,
        job_timeout_s=args.job_timeout,
        max_attempts=args.max_attempts,
    )
    asyncio.run(run_server(config))
    return 0


def _client_resolve(client, prefix: str) -> str:
    """A full job digest from a prefix, via the daemon's job listing."""
    if not prefix or any(c not in "0123456789abcdef" for c in prefix):
        raise ValueError(f"invalid digest prefix {prefix!r} (lowercase hex)")
    if len(prefix) == 64:
        return prefix
    matches = [
        j["digest"] for j in client.jobs() if j["digest"].startswith(prefix)
    ]
    if not matches:
        raise ValueError(f"no job matches digest prefix {prefix!r}")
    if len(matches) > 1:
        raise ValueError(
            f"digest prefix {prefix!r} is ambiguous ({len(matches)} jobs)"
        )
    return matches[0]


def _cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running daemon: submit / status / fetch / metrics / watch."""
    import json as _json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        if args.client_command == "submit":
            specs = _submit_specs(args)
            resp = client.submit(specs, tenant=args.tenant)
            jobs = resp["jobs"]
            if args.watch:
                jobs = [
                    client.wait(j["digest"], timeout_s=args.timeout)
                    for j in jobs
                ]
            if args.json:
                print(_json.dumps(jobs, indent=2, sort_keys=True))
            else:
                rows = [
                    [j["digest"][:12], j["state"], j["attempts"],
                     j.get("error") or "-"]
                    for j in jobs
                ]
                print(report.table(
                    ["digest", "state", "attempts", "error"], rows,
                    title=f"{len(jobs)} job(s) as tenant "
                          f"{resp['tenant']!r} via {args.url}",
                ))
            failed = [j for j in jobs if j["state"] == "failed"]
            return 1 if args.watch and failed else 0

        if args.client_command == "status":
            digest = _client_resolve(client, args.digest)
            view = (
                client.wait(digest, poll_s=args.interval, timeout_s=args.timeout)
                if args.watch
                else client.status(digest)
            )
            print(_json.dumps(view, indent=2, sort_keys=True))
            if args.watch:
                return 0 if view["state"] in ("done", "cached") else 1
            return 0

        if args.client_command == "fetch":
            digest = _client_resolve(client, args.digest)
            print(_json.dumps(client.result(digest), indent=2, sort_keys=True))
            return 0

        if args.client_command == "metrics":
            print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0

        # watch: stream the SSE feed of one job
        digest = _client_resolve(client, args.digest)
        final = ""
        for event, data in client.events(digest):
            print(_json.dumps({"event": event, **data}, sort_keys=True))
            if event == "end":
                final = data.get("state", "")
        return 0 if final in ("done", "cached") else 1
    except ServeError as exc:
        print(f"repro client: {exc}", file=sys.stderr)
        retry = exc.retry_after_s
        if retry is not None:
            print(f"repro client: retry after {retry:.3f}s", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"repro client: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"repro client: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", default="heap", choices=backend_names(),
        help="event-dispatch backend (default: heap; backends are "
             "digest-equivalent, see repro.sim.backends)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Load Balancing on Speed' (PPoPP 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="describe the modeled machines")
    sub.add_parser("benches", help="list the NAS-like workload catalog")

    run = sub.add_parser("run", help="run a workload under one or more balancers")
    run.add_argument("--bench", default="ep.C", choices=sorted(FULL_CATALOG))
    run.add_argument("--machine", default="tigerton", choices=sorted(MACHINES))
    run.add_argument("--threads", type=int, default=16)
    run.add_argument("--cores", type=int, default=12)
    run.add_argument("--wait", default="yield", choices=sorted(WAITS))
    run.add_argument("--seconds", type=float, default=1.0,
                     help="per-thread compute demand in simulated seconds")
    run.add_argument("--repeats", type=int, default=3)
    run.add_argument(
        "--balancer", nargs="+", default=["speed", "load"],
        choices=BALANCER_MODES,
    )
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the seed repeats (results are "
             "bit-identical to --workers 1; see docs/performance.md)",
    )
    _add_engine_arg(run)

    model = sub.add_parser("model", help="print the Section 4 analytical model")
    model.add_argument("--threads", type=int, required=True)
    model.add_argument("--cores", type=int, required=True)

    check = sub.add_parser(
        "check",
        help="correctness tooling: determinism lint + whole-program flow "
             "analysis + runtime invariant smoke",
    )
    check.add_argument(
        "--invariants", action="store_true",
        help="run only the runtime invariant smoke matrix",
    )
    check.add_argument(
        "--lint", action="store_true",
        help="run only the static determinism lint",
    )
    check.add_argument(
        "--flow", action="store_true",
        help="run only the whole-program flow analyzer",
    )
    check.add_argument(
        "--kernel", action="store_true",
        help="run only the compiled-kernel readiness analyzer",
    )
    check.add_argument(
        "--all", action="store_true",
        help="run every layer (lint, flow, kernel, invariants) and "
             "print one merged JSON report",
    )
    check.add_argument(
        "--paths", nargs="+", default=None,
        help="analyze these paths (default: the installed repro package)",
    )
    check.add_argument("--bench", default="ep.C", choices=sorted(FULL_CATALOG))
    check.add_argument("--wait", default="yield", choices=sorted(WAITS))
    check.add_argument(
        "--seconds", type=float, default=0.3,
        help="per-thread compute demand of each smoke run (simulated seconds)",
    )
    check.add_argument("--repeats", type=int, default=2)

    sanitize = sub.add_parser(
        "sanitize",
        help="schedule sanitizer: trace-level race/conservation analysis "
             "over the scenario suite (+ differential determinism)",
    )
    sanitize.add_argument(
        "--scenario", nargs="+", default=None, metavar="NAME",
        help="scenario smoke(s) to analyze (default: all; see "
             "repro.harness.scenarios.scenario_smokes)",
    )
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument(
        "--json", action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    sanitize.add_argument(
        "--differential", action="store_true",
        help="also run the differential determinism legs (hash-seed "
             "subprocess pair, observers on/off, serial vs parallel)",
    )
    sanitize.add_argument(
        "--digest", default=None, metavar="NAME",
        help="internal: print the canonical run digest of one scenario "
             "and exit (used by the hash-seed subprocess leg)",
    )
    sanitize.add_argument(
        "--stored", nargs="*", default=None, metavar="DIGEST",
        help="analyze traces archived in the content-addressed store "
             "instead of re-running scenarios (no digests = every traced "
             "entry; see repro submit --trace)",
    )
    sanitize.add_argument(
        "--store", default=".repro-store",
        help="store directory for --stored (default: .repro-store)",
    )
    _add_engine_arg(sanitize)

    bench = sub.add_parser(
        "bench",
        help="perf trajectory: run the simulator bench suite, write "
             "BENCH_<label>.json, compare against a baseline",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced workloads (the CI perf-smoke flavour; only "
             "comparable against a --quick baseline)",
    )
    bench.add_argument("--label", default="baseline",
                       help="writes BENCH_<label>.json (default: baseline)")
    bench.add_argument("--out", default=".",
                       help="directory for the output file (default: .)")
    bench.add_argument(
        "--baseline", default=None,
        help="previous BENCH_*.json to compare against (exit 1 on "
             "regression beyond the threshold)",
    )
    bench.add_argument(
        "--threshold", type=float, default=25.0,
        help="wall-time regression threshold in percent (default: 25)",
    )
    bench.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds per bench, best-of (default: 3)",
    )
    bench.add_argument(
        "--profile", type=int, nargs="?", const=15, default=None, metavar="N",
        help="instead of timing, run each case once under cProfile and "
             "print the top N functions by cumulative time (default N: 15); "
             "writes no payload",
    )
    bench.add_argument(
        "--compare", default=None, nargs="+", metavar="BENCH_JSON",
        help="skip running: with one payload, compare it against "
             "--baseline (lets CI split the events and wall-time checks "
             "without re-running the suite); with two payloads, print a "
             "head-to-head per-bench speedup table (second over first) "
             "and exit 1 on regressions beyond --threshold",
    )
    only = bench.add_mutually_exclusive_group()
    only.add_argument(
        "--events-only", action="store_true",
        help="only run the deterministic events check against the "
             "baseline; skip the wall-time threshold",
    )
    only.add_argument(
        "--wall-only", action="store_true",
        help="only run the wall-time threshold check against the "
             "baseline; skip the events check",
    )
    _add_engine_arg(bench)

    submit = sub.add_parser(
        "submit",
        help="run a batch through the content-addressed store: cache "
             "misses simulate once, everything else is served from disk",
    )
    submit.add_argument("--store", default=".repro-store",
                        help="store directory (default: .repro-store)")
    submit.add_argument("--bench", default="ep.C", choices=sorted(FULL_CATALOG))
    submit.add_argument("--machine", default="tigerton", choices=sorted(MACHINES))
    submit.add_argument("--threads", type=int, default=16)
    submit.add_argument("--cores", type=int, default=12)
    submit.add_argument("--wait", default="yield", choices=sorted(WAITS))
    submit.add_argument("--seconds", type=float, default=1.0,
                        help="per-thread compute demand in simulated seconds")
    submit.add_argument("--repeats", type=int, default=3)
    submit.add_argument(
        "--balancer", nargs="+", default=["speed", "load"],
        choices=BALANCER_MODES,
    )
    submit.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the cache misses",
    )
    submit.add_argument(
        "--trace", action="store_true",
        help="also archive each fresh run's full trace (feeds "
             "repro sanitize --stored)",
    )
    submit.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds; a job past it fails "
             "with a timeout reason and re-enters the retry loop (not "
             "combinable with --trace)",
    )
    submit.add_argument(
        "--expect-cached", action="store_true",
        help="assert the whole batch is already cached; exit 1 if any "
             "simulation had to run (the CI store-smoke invariant)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="emit [{digest, result}] as JSON instead of a table",
    )
    _add_engine_arg(submit)

    status = sub.add_parser(
        "status", help="list the entries of a content-addressed store",
    )
    status.add_argument("digest", nargs="*", default=[],
                        help="only these digests (prefixes allowed)")
    status.add_argument("--store", default=".repro-store",
                        help="store directory (default: .repro-store)")
    status.add_argument(
        "--watch", action="store_true",
        help="poll the store until every given digest (or, with none, "
             "any entry) exists; exit 1 if --timeout elapses first",
    )
    status.add_argument("--interval", type=float, default=0.5,
                        help="--watch poll interval in seconds (default: 0.5)")
    status.add_argument(
        "--timeout", type=float, default=None,
        help="--watch gives up (exit 1) after this many seconds "
             "(default: wait forever)",
    )

    fetch = sub.add_parser(
        "fetch", help="print the stored result behind one digest",
    )
    fetch.add_argument("digest", help="entry digest (prefix allowed)")
    fetch.add_argument("--store", default=".repro-store",
                       help="store directory (default: .repro-store)")
    fetch.add_argument("--json", action="store_true",
                       help="emit the result dict as JSON")

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service daemon (HTTP/JSON + SSE "
             "over a sharded content-addressed store)",
    )
    serve.add_argument("--store", default=".repro-serve",
                       help="sharded store root (default: .repro-serve)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421,
                       help="listen port; 0 picks a free one (default: 8421)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes; also the store shard count (default: 2)",
    )
    serve.add_argument(
        "--backend", default="process", choices=("process", "thread"),
        help="worker pool backend (default: process; thread is for tests "
             "and has no job-timeout kill support)",
    )
    serve.add_argument(
        "--tenant", action="append", default=[], metavar="SPEC",
        help="declare a tenant as name[:weight[:rate[:burst[:queue_limit]]]] "
             "(repeatable); undeclared tenants get the defaults",
    )
    serve.add_argument(
        "--window", type=float, default=30.0,
        help="service-speed measurement window in seconds (default: 30)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds; a worker past it is "
             "killed and respawned (default: none)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=2,
        help="dispatch attempts per job before it is failed (default: 2)",
    )

    client_p = sub.add_parser(
        "client",
        help="talk to a running repro serve daemon: submit, status, "
             "fetch, metrics, watch",
    )
    client_p.add_argument("--url", default="http://127.0.0.1:8421",
                          help="daemon base URL (default: http://127.0.0.1:8421)")
    client_sub = client_p.add_subparsers(dest="client_command", required=True)

    c_submit = client_sub.add_parser(
        "submit", help="submit a spec batch over HTTP (dedup + cache apply)",
    )
    c_submit.add_argument("--tenant", default="default")
    c_submit.add_argument("--bench", default="ep.C", choices=sorted(FULL_CATALOG))
    c_submit.add_argument("--machine", default="tigerton", choices=sorted(MACHINES))
    c_submit.add_argument("--threads", type=int, default=16)
    c_submit.add_argument("--cores", type=int, default=12)
    c_submit.add_argument("--wait", default="yield", choices=sorted(WAITS))
    c_submit.add_argument("--seconds", type=float, default=1.0,
                          help="per-thread compute demand in simulated seconds")
    c_submit.add_argument("--repeats", type=int, default=3)
    c_submit.add_argument(
        "--balancer", nargs="+", default=["speed", "load"],
        choices=BALANCER_MODES,
    )
    c_submit.add_argument(
        "--watch", action="store_true",
        help="block until every submitted job is terminal (exit 1 if any "
             "failed)",
    )
    c_submit.add_argument("--timeout", type=float, default=None,
                          help="--watch deadline in seconds")
    c_submit.add_argument("--json", action="store_true",
                          help="emit the job views as JSON")
    _add_engine_arg(c_submit)

    c_status = client_sub.add_parser(
        "status", help="one job's status view (digest prefix allowed)",
    )
    c_status.add_argument("digest")
    c_status.add_argument(
        "--watch", action="store_true",
        help="poll until the job is terminal; exit 0 on done/cached, "
             "1 on failed",
    )
    c_status.add_argument("--interval", type=float, default=0.2,
                          help="--watch poll interval in seconds (default: 0.2)")
    c_status.add_argument("--timeout", type=float, default=None,
                          help="--watch deadline in seconds")

    c_fetch = client_sub.add_parser(
        "fetch", help="fetch the stored result behind one job digest",
    )
    c_fetch.add_argument("digest")

    client_sub.add_parser("metrics", help="print the /v1/metrics snapshot")

    c_watch = client_sub.add_parser(
        "watch", help="stream one job's SSE status events until it ends",
    )
    c_watch.add_argument("digest")

    store_p = sub.add_parser(
        "store", help="store maintenance: gc, verify, stats",
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_gc = store_sub.add_parser(
        "gc",
        help="drop corrupt objects, rebuild the index, evict oldest-first "
             "down to the caps",
    )
    store_gc.add_argument("--max-entries", type=int, default=None,
                          help="keep at most this many entries")
    store_gc.add_argument("--max-bytes", type=int, default=None,
                          help="keep at most this many object bytes")
    store_verify = store_sub.add_parser(
        "verify",
        help="full read-only integrity pass over every object (exit 1 on "
             "findings)",
    )
    store_stats = store_sub.add_parser("stats", help="entry/trace/byte counts")
    for p in (store_gc, store_verify, store_stats):
        p.add_argument("--store", default=".repro-store",
                       help="store directory (default: .repro-store)")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "machines": _cmd_machines,
        "benches": _cmd_benches,
        "run": _cmd_run,
        "model": _cmd_model,
        "check": _cmd_check,
        "sanitize": _cmd_sanitize,
        "bench": _cmd_bench,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
        "store": _cmd_store,
        "serve": _cmd_serve,
        "client": _cmd_client,
    }[args.command]
    try:
        return handler(args)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
