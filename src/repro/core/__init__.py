"""The paper's contribution: user-level speed balancing.

* :mod:`repro.core.speed` -- the speed metric (``t_exec / t_real``)
  and the taskstats-style sampling machinery, including measurement
  noise modeling (Section 5.2 motivates the ``T_s`` threshold with
  "a certain amount of noise in the measurements");
* :mod:`repro.core.speed_balancer` -- ``SpeedBalancer``, the Section 5
  algorithm: distributed per-core balancers, jittered 100 ms interval,
  pull-from-slow with the 0.9 speed threshold, least-migrated victim,
  two-interval post-migration block, per-domain migration enables and
  NUMA blocking;
* :mod:`repro.core.analytical` -- the Section 4 model: Lemma 1's bound
  on balancing steps and the profitability threshold behind Figure 1.
"""

from repro.core.speed import SpeedSample, SpeedEstimator
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.core import analytical

__all__ = [
    "SpeedBalancer",
    "SpeedBalancerConfig",
    "SpeedEstimator",
    "SpeedSample",
    "analytical",
]
