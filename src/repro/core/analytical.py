"""The Section 4 analytical model: when does speed balancing pay off?

Setup (paper's notation): N threads of an SPMD application run on M
homogeneous cores, N > M.  With T = floor(N/M) threads per core, there
are FQ *fast* cores running T threads and SQ *slow* cores running T+1
threads (SQ = N mod M, FQ = M - SQ).  Threads compute for S seconds
between barriers; balancing executes every B seconds.  With queue-
length balancing the program runs at the speed of the slowest thread,
1/(T+1); ideally each thread spends an equal fraction of time on fast
and slow cores, for an asymptotic average speed of

    (1/2) * (1/T + 1/(T+1))   ==> a potential speedup of 1 + 1/(2T).

**Lemma 1.** The number of balancing steps required for every thread to
have run at least once on a fast core is bounded by ``2*ceil(SQ/FQ)``.

Profitability ("necessary but not sufficient") requires the program to
live long enough for those steps:

    (T+1) * S  >  2 * ceil(SQ/FQ) * B

which Figure 1 plots (as the minimal S for B = 1) over core counts
10..100: "in the majority of cases S <= 1 ... The high values for S
appearing on the diagonals capture the worst case scenario ... few
(two) threads per core and a large number of slow cores (M-1, M-2)".

This module also contains a direct *step simulation* of the balancing
process used by the property-based tests to validate the lemma's bound
constructively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "queue_shape",
    "lemma1_steps_bound",
    "min_profitable_s",
    "figure1_grid",
    "average_speed_linux",
    "average_speed_ideal",
    "paper_asymptotic_speed",
    "paper_potential_speedup",
    "potential_speedup",
    "simulate_balancing_steps",
]


@dataclass(frozen=True)
class QueueShape:
    """Thread distribution of N threads over M cores."""

    n_threads: int
    m_cores: int
    t: int  # floor(N/M), threads on a fast core
    fq: int  # number of fast cores (T threads)
    sq: int  # number of slow cores (T+1 threads)


def queue_shape(n_threads: int, m_cores: int) -> QueueShape:
    """Fast/slow queue decomposition of the paper's Section 4."""
    if m_cores < 1 or n_threads < 1:
        raise ValueError("need at least one thread and one core")
    t = n_threads // m_cores
    sq = n_threads % m_cores
    fq = m_cores - sq
    return QueueShape(n_threads, m_cores, t, fq, sq)


def lemma1_steps_bound(n_threads: int, m_cores: int) -> int:
    """Lemma 1: bound on balancing steps for the necessity condition.

    Zero when the distribution is already balanced (N mod M == 0) and
    when N <= M (at most one thread per core: nobody runs slow).
    """
    if n_threads <= m_cores:
        return 0
    shape = queue_shape(n_threads, m_cores)
    if shape.sq == 0:
        return 0
    return 2 * math.ceil(shape.sq / shape.fq)


def min_profitable_s(n_threads: int, m_cores: int, b: float = 1.0) -> float:
    """Minimal inter-barrier compute S for speed balancing to win.

    Derived from ``(T+1)*S > 2*ceil(SQ/FQ)*B``; zero for balanced
    distributions and for N <= M (nothing to balance).
    """
    shape = queue_shape(n_threads, m_cores)
    if shape.sq == 0 or n_threads <= m_cores:
        return 0.0
    steps = lemma1_steps_bound(n_threads, m_cores)
    return steps * b / (shape.t + 1)


def figure1_grid(
    cores: Iterable[int] = range(10, 101),
    threads: Iterable[int] = range(10, 401),
    b: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The data behind Figure 1: min S over (cores, threads), B fixed.

    Returns ``(cores_axis, threads_axis, s_min)`` where ``s_min`` has
    shape (len(threads), len(cores)); entries with N <= M are 0 (no
    oversubscription).  The paper cuts the colour scale at 10 and
    reports an actual data range of [0.015, 147].
    """
    cores_axis = np.fromiter(cores, dtype=int)
    threads_axis = np.fromiter(threads, dtype=int)
    s_min = np.zeros((len(threads_axis), len(cores_axis)))
    for i, n in enumerate(threads_axis):
        for j, m in enumerate(cores_axis):
            if n > m:
                s_min[i, j] = min_profitable_s(int(n), int(m), b)
    return cores_axis, threads_axis, s_min


# ----------------------------------------------------------------------
# average-speed formulas (Section 4 prose)
# ----------------------------------------------------------------------
def average_speed_linux(n_threads: int, m_cores: int) -> float:
    """Application speed under queue-length balancing: slowest thread.

    "The Linux queue-length based balancing will not migrate threads so
    the overall application speed is that of the slowest thread
    1/(T+1)" (for unbalanced distributions; 1/T when N mod M == 0).
    """
    shape = queue_shape(n_threads, m_cores)
    if shape.sq == 0:
        return 1.0 / max(1, shape.t)
    return 1.0 / (shape.t + 1)


def average_speed_ideal(n_threads: int, m_cores: int) -> float:
    """Asymptotic thread speed under perfect speed balancing.

    Every thread's long-run CPU share when the M cores' capacity is
    divided evenly among N threads: M/N.  For the balanced case this
    equals 1/T; for the paper's two-queue decomposition it lies between
    1/(T+1) and 1/T, and for SQ == FQ it equals the paper's closed form
    (1/2)(1/T + 1/(T+1)).
    """
    return min(1.0, m_cores / n_threads)


def potential_speedup(n_threads: int, m_cores: int) -> float:
    """Speedup of ideal speed balancing over queue-length balancing."""
    return average_speed_ideal(n_threads, m_cores) / average_speed_linux(
        n_threads, m_cores
    )


# ----------------------------------------------------------------------
# constructive validation of Lemma 1
# ----------------------------------------------------------------------
def paper_asymptotic_speed(t: int) -> float:
    """The paper's asymptotic average thread speed, (1/2)(1/T + 1/(T+1)).

    "Ideally, each thread should spend an equal fraction of time on the
    fast cores and on the slow cores.  The asymptotic average thread
    speed becomes 1/2 * (1/T + 1/(T+1))."  Note this is the per-thread
    ideal under the equal-fraction rotation -- an optimistic bound; the
    capacity-feasible system-wide average is
    :func:`average_speed_ideal` (M/N), which is lower unless SQ == 0.
    """
    if t < 1:
        raise ValueError("T must be >= 1 (oversubscription required)")
    return 0.5 * (1.0 / t + 1.0 / (t + 1))


def paper_potential_speedup(t: int) -> float:
    """The paper's headline potential: "a possible speedup of 1 + 1/(2T)".

    Ratio of :func:`paper_asymptotic_speed` to the queue-length-
    balancing speed 1/(T+1).
    """
    return paper_asymptotic_speed(t) * (t + 1)


def simulate_balancing_steps(n_threads: int, m_cores: int) -> int:
    """Run the proof's algorithm; return steps until every thread ran fast.

    A *step* is one balance interval of the distributed algorithm: each
    fast queue pulls one thread from a distinct slow queue (flipping
    both queues' roles), then everyone on a fast queue runs for the
    interval.  Victims are threads that already had their fast interval
    when possible, so the threads left behind on the flipped-to-fast
    donor get theirs next.  The returned count never exceeds
    :func:`lemma1_steps_bound` (property-tested).
    """
    if n_threads <= m_cores:
        return 0  # one thread (or less) per core: nobody runs slow
    shape = queue_shape(n_threads, m_cores)
    if shape.sq == 0:
        return 0
    # queues[i] = list of thread ids; first FQ queues fast (T threads)
    queues: list[list[int]] = []
    tid = 0
    for _ in range(shape.fq):
        queues.append(list(range(tid, tid + shape.t)))
        tid += shape.t
    for _ in range(shape.sq):
        queues.append(list(range(tid, tid + shape.t + 1)))
        tid += shape.t + 1
    ran_fast: set[int] = set()
    steps = 0
    while len(ran_fast) < shape.n_threads:
        # every thread currently on a fast queue gets its fast interval
        for q in queues:
            if len(q) == shape.t:
                ran_fast.update(q)
        if len(ran_fast) >= shape.n_threads:
            break
        steps += 1
        fast = [q for q in queues if len(q) == shape.t]
        slow = [q for q in queues if len(q) == shape.t + 1]
        # donors with unsatisfied residents first: flipping them to
        # fast is what makes progress
        slow.sort(key=lambda q: -sum(1 for t in q if t not in ran_fast))
        for target, donor in zip(fast, slow):
            victim = next((t for t in donor if t in ran_fast), donor[0])
            donor.remove(victim)
            target.append(victim)
    return steps
