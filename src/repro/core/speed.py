"""The speed metric: ``speed = t_exec / t_real``.

"For the purpose of this work we define speed = t_exec / t_real, where
t_exec is the elapsed execution time and t_real is the wall clock
time.  This measure directly captures the share of CPU time received
by a thread ... It is simpler than using the inverse of queue length as
a speed indicator because that requires weighting threads by
priorities ... the current definition provides an application and OS
independent metric." (Section 5.)

``SpeedEstimator`` mirrors the artifact's use of the taskstats netlink
interface: it snapshots per-thread cumulative execution times and
returns per-interval speeds.  "Because of the way task timing is
measured, there is a certain amount of noise in the measurements" --
modeled as a configurable relative Gaussian perturbation, which is what
the balancer's speed threshold ``T_s`` exists to tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["SpeedSample", "SpeedEstimator"]


@dataclass
class SpeedSample:
    """One per-thread speed observation over a balance interval."""

    tid: int
    speed: float  # exec/wall over the interval, noise included
    exec_us: int  # cumulative exec time at sample point
    at: int  # wall-clock sample time


class SpeedEstimator:
    """Samples thread speeds the way ``speedbalancer`` reads taskstats.

    Parameters
    ----------
    noise_sigma:
        Relative standard deviation of the measurement noise applied
        to each interval's executed time (0 = exact accounting).
    """

    def __init__(self, system: "System", noise_sigma: float = 0.0):
        self.system = system
        self.noise_sigma = noise_sigma
        self._last: dict[int, tuple[int, int]] = {}  # tid -> (exec_us, time)

    # ------------------------------------------------------------------
    def _raw_exec(self, task: Task) -> int:
        """Cumulative execution time including the in-flight interval."""
        core = None
        if task.state == TaskState.RUNNING and task.cur_core is not None:
            core = self.system.cores[task.cur_core]
        return task.exec_time_at(self.system.engine.now, core)

    def sample(self, task: Task) -> Optional[SpeedSample]:
        """Speed of ``task`` since its previous sample.

        Returns None on the first observation (no interval yet) or if
        no wall time elapsed.  The snapshot is advanced either way, so
        consecutive calls measure disjoint intervals.
        """
        now = self.system.engine.now
        exec_us = self._raw_exec(task)
        prev = self._last.get(task.tid)
        self._last[task.tid] = (exec_us, now)
        if prev is None:
            return None
        prev_exec, prev_time = prev
        wall = now - prev_time
        if wall <= 0:
            return None
        measured = exec_us - prev_exec
        if self.noise_sigma > 0:
            factor = self.system.rng.gauss("taskstats.noise", 1.0, self.noise_sigma)
            measured = measured * max(0.0, factor)
        speed = min(1.5, max(0.0, measured / wall))  # clamp absurd noise
        return SpeedSample(tid=task.tid, speed=speed, exec_us=exec_us, at=now)

    def forget(self, task: Task) -> None:
        """Drop the snapshot (e.g. the task exited)."""
        self._last.pop(task.tid, None)
