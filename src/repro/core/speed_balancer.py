"""``SpeedBalancer``: the paper's user-level speed balancing algorithm.

Section 5 of the paper, step by step.  One balancer per user-requested
core wakes every *balance interval* (100 ms default, "also the value of
the system scheduler time quanta"), plus a random jitter of up to one
interval ("to help break cycles where tasks move repeatedly between
two queues ... we introduce randomness in the balancing interval on
each core").  When balancer *j* wakes it:

1. computes the speed ``s_i`` of every monitored thread on its local
   core over the elapsed interval;
2. computes the local core speed ``s_j = average(s_i)``;
3. computes the global core speed ``s_global = average(s_j)`` over all
   cores (from the shared, possibly slightly stale, published values
   -- the algorithm is distributed and unsynchronized);
4. if ``s_j > s_global`` it attempts to balance: it searches for a
   suitable remote core ``c_k`` with ``s_k / s_global < T_s``
   (``T_s = 0.9``, rejecting measurement noise) that has not recently
   been involved in a migration (at least two balance intervals), and
   pulls from it the thread that has migrated the least ("to avoid
   creating 'hot-potato' tasks"), using forced-affinity migration so
   the kernel balancer leaves the thread where it was put.

Initial placement is the artifact's too: after a startup delay (the
real tool polls ``/proc`` for the child's thread PIDs), threads are
pinned round-robin across the requested cores, "ensuring maximum
exploitation of hardware parallelism independent of the system
architecture".

Scheduling domains gate migrations: by default NUMA-level migrations
are blocked ("on NUMA systems we prevent inter-NUMA-domain
migration") and other levels are allowed; per-level extra block
multipliers let cache-sharing cores trade threads more often, as
Section 5.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.speed import SpeedEstimator
from repro.sched.task import Task, TaskState
from repro.topology.machine import DomainLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.spmd import SpmdApp
    from repro.system import System

__all__ = ["SpeedBalancerConfig", "SpeedBalancer"]


def _default_level_enabled() -> dict[DomainLevel, bool]:
    return {
        DomainLevel.SMT: True,
        DomainLevel.CACHE: True,
        DomainLevel.SOCKET: True,
        DomainLevel.MACHINE: True,  # cross-socket on UMA is allowed
        DomainLevel.NUMA: False,  # "we ... blocked NUMA migrations"
    }


def _default_level_block() -> dict[DomainLevel, float]:
    # multiplier on the two-interval post-migration block; 0.5 would let
    # cache-sharing cores migrate twice as often as socket-crossing ones
    return {
        DomainLevel.SMT: 1.0,
        DomainLevel.CACHE: 1.0,
        DomainLevel.SOCKET: 1.0,
        DomainLevel.MACHINE: 1.0,
        DomainLevel.NUMA: 1.0,
    }


@dataclass
class SpeedBalancerConfig:
    """All tunables of the speed balancer (paper defaults).

    Attributes
    ----------
    interval_us:
        Balance interval B.  "For all of our experiments we have used a
        fixed balance interval of 100 ms."  Figure 2 sweeps this.
    speed_threshold:
        T_s: pull from core k only when ``s_k / s_global < T_s``.
        "In our experiments we used T_s = 0.9."
    jitter:
        Random increase of up to one interval per wake-up; disabling
        it is an ablation (cycles may form).
    post_migration_block_intervals:
        Cores involved in a migration are not re-involved for this many
        intervals ("at least two balance intervals, sufficient to
        ensure that the threads on both cores have run for a full
        balance interval and the core speed values are not stale").
    startup_delay_us:
        Delay before the initial round-robin pinning (the artifact
        polls /proc "due to delays in updating the system logs").
    noise_sigma:
        taskstats measurement noise (relative), exercised with T_s.
    victim_policy:
        "least-migrated" (paper), or "random"/"most-migrated" for the
        hot-potato ablation.
    initial_pinning:
        Round-robin pin threads at startup (the artifact's behaviour).
        When False, threads stay where the kernel placed them and only
        pull-migrations reposition them.
    weight_speed_by_clock:
        Section 5.1: "The preceding argument ... can be easily extended
        to heterogeneous systems where cores have different performance
        by weighting the number of threads per core with the relative
        core speed."  When True (default) a thread's measured CPU share
        is multiplied by its core's clock factor, so a dedicated slow
        core reads as slow.  A no-op on homogeneous machines.
    numa_aware_pinning:
        On NUMA machines, distribute threads across nodes as evenly as
        possible before round-robining within nodes.  With NUMA
        migrations blocked, a node-oblivious round robin would strand
        all excess threads on node 0 forever; this realizes the
        artifact's goal that "the initial round-robin distribution
        ensures maximum exploitation of hardware parallelism
        independent of the system architecture".
    smt_weighting:
        The paper's stated future work: "weight the speed of a task
        according to the state of the other hardware context, because a
        task running on a 'core' where both hardware contexts are
        utilized will run slower than when running on a core by
        itself."  When enabled, a core whose SMT sibling is busy
        publishes its speed derated by the machine's SMT factor.
        Off by default (matching the artifact the paper evaluated).
    adaptive_interval:
        Section 5.1 suggests "increasing heuristics to dynamically
        adjust the balancing interval".  When enabled, a balancer that
        finds nothing to do for several consecutive wake-ups doubles
        its interval (up to ``adaptive_max_factor`` times the base);
        any migration involving its core resets it.  Off by default.
    """

    interval_us: int = 100_000
    speed_threshold: float = 0.9
    jitter: bool = True
    post_migration_block_intervals: float = 2.0
    startup_delay_us: int = 2_000
    noise_sigma: float = 0.01
    victim_policy: str = "least-migrated"
    initial_pinning: bool = True
    weight_speed_by_clock: bool = True
    numa_aware_pinning: bool = True
    smt_weighting: bool = False
    adaptive_interval: bool = False
    adaptive_idle_wakeups: int = 3
    adaptive_max_factor: int = 8
    #: refuse pulls that would strand the source core's capacity
    #: (see SpeedBalancer._pull_would_strand)
    min_gain_guard: bool = True
    level_enabled: dict[DomainLevel, bool] = field(default_factory=_default_level_enabled)
    level_block_multiplier: dict[DomainLevel, float] = field(
        default_factory=_default_level_block
    )


class SpeedBalancer:
    """User-level, application-scoped speed balancing.

    One instance manages one parallel application's threads on a set of
    user-requested cores, exactly like running
    ``speedbalancer <app>`` under a ``taskset``.  Multiple instances
    (one per application) can coexist, and the kernel balancer keeps
    managing every *other* task in the system: pinned threads are
    invisible to it, "allow[ing] us to apply speed balancing to a
    particular parallel application without preventing Linux from load
    balancing any other unrelated tasks".
    """

    def __init__(
        self,
        app: "SpmdApp",
        cores: Optional[Sequence[int]] = None,
        config: Optional[SpeedBalancerConfig] = None,
    ):
        self.app = app
        self.config = config or SpeedBalancerConfig()
        self.requested_cores: Optional[list[int]] = (
            sorted(cores) if cores is not None else None
        )
        self.system: Optional["System"] = None
        self.estimator: Optional[SpeedEstimator] = None
        # shared (unsynchronized) state the distributed balancers publish
        self.core_speed: dict[int, float] = {}
        self.last_migration_at: dict[int, int] = {}
        self._last_wake: dict[int, int] = {}
        self._idle_wakeups: dict[int, int] = {}
        self._interval_factor: dict[int, int] = {}
        self.stats_pulls = 0
        self.stats_wakeups = 0
        #: optional trace of (time, core, local_speed, global_speed)
        self.speed_trace: list[tuple[int, int, float, float]] = []
        self.trace_speeds = False
        # -- O(residents) monitoring state (built in attach) -----------
        #: tid -> position in app.tasks, the sampling order the shared
        #: estimator noise stream depends on
        self._task_order: dict[int, int] = {}
        self._alive_count: int = 0

    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        self.system = system
        self.estimator = SpeedEstimator(system, noise_sigma=self.config.noise_sigma)
        self._task_order = {t.tid: i for i, t in enumerate(self.app.tasks)}
        self._alive_count = 0
        for t in self.app.tasks:
            if t.state != TaskState.FINISHED:
                self._alive_count += 1
                system.on_exit(t, self._note_task_exit)
        if self.requested_cores is None:
            self.requested_cores = list(range(len(system.cores)))
        bad = [c for c in self.requested_cores if not 0 <= c < len(system.cores)]
        if bad:
            raise ValueError(
                f"requested cores {bad} outside machine "
                f"{system.machine.name!r} (cores 0..{len(system.cores) - 1})"
            )
        for cid in self.requested_cores:
            self.last_migration_at[cid] = -(10**12)
            self.core_speed[cid] = 1.0
        system.engine.schedule(
            self.config.startup_delay_us, self._initial_pinning, "speed.startup"
        )
        for cid in self.requested_cores:
            delay = self.config.startup_delay_us + self.config.interval_us
            delay += self._jitter(cid)
            self._last_wake[cid] = self.config.startup_delay_us
            system.engine.schedule(
                delay, lambda c=cid: self._balancer_wake(c), f"speed.bal.{cid}"
            )

    # ------------------------------------------------------------------
    def _jitter(self, cid: int) -> int:
        if not self.config.jitter:
            return 0
        assert self.system is not None
        return self.system.rng.jitter_us(f"speed.jitter.{cid}", self.config.interval_us)

    def _pinning_targets(self, n_threads: int) -> list[int]:
        """Destination core for each thread of the initial pinning.

        Plain round robin over the requested cores on UMA.  On NUMA
        machines (with NUMA-aware pinning enabled) threads are dealt to
        nodes proportionally to each node's core count -- including the
        oversubscription surplus -- because blocked NUMA migrations
        could never repair a node-level imbalance afterwards.
        """
        assert self.system is not None and self.requested_cores is not None
        cores = self.requested_cores
        if not (self.system.machine.numa and self.config.numa_aware_pinning):
            return [cores[i % len(cores)] for i in range(n_threads)]
        by_node: dict[int, list[int]] = {}
        for cid in cores:
            by_node.setdefault(self.system.machine.numa_node_of(cid), []).append(cid)
        node_count = dict.fromkeys(by_node, 0)
        core_count = dict.fromkeys(cores, 0)
        targets: list[int] = []
        for _ in range(n_threads):
            # least-filled node relative to its size, then its least-
            # filled core: any prefix of the assignment stays balanced
            node = min(
                by_node, key=lambda nd: (node_count[nd] / len(by_node[nd]), nd)
            )
            cid = min(by_node[node], key=lambda c: (core_count[c], c))
            node_count[node] += 1
            core_count[cid] += 1
            targets.append(cid)
        return targets

    def _initial_pinning(self) -> None:
        """Round-robin pin the application's threads (startup step).

        Uses forced migration (``sched_setaffinity``) and pins, so the
        kernel load balancer will not undo the distribution.
        """
        assert self.system is not None and self.requested_cores is not None
        if not self.config.initial_pinning:
            return
        targets = self._pinning_targets(len(self.app.tasks))
        for i, task in enumerate(self.app.tasks):
            if task.state == TaskState.FINISHED:
                continue
            dst = targets[i]
            if task.cur_core == dst:
                task.pin(frozenset({dst}))
                continue
            if task.state == TaskState.SLEEPING:
                task.pin(frozenset({dst}))
                task.last_core = dst  # wakes on its assigned core
                self.system.note_residency(task)
                continue
            self.system.migrate(task, dst, forced=True, pin=True, reason="speed.initial")

    # ------------------------------------------------------------------
    # the per-core balancer body (Section 5.1 steps 1-4)
    # ------------------------------------------------------------------
    def _balancer_wake(self, cid: int) -> None:
        assert self.system is not None and self.estimator is not None
        now = self.system.engine.now
        self.stats_wakeups += 1
        self._last_wake[cid] = now

        if not self._app_alive():
            return  # application finished; balancer thread exits

        # step 1+2: local thread speeds -> local core speed
        local_threads = self._monitored_on(cid)
        clock = 1.0
        if self.config.weight_speed_by_clock:
            clock = self.system.machine.cores[cid].clock_factor
        if self.config.smt_weighting:
            # future-work extension: a context whose SMT sibling is
            # busy is effectively slower
            sib = self.system.cores[cid].sibling()
            if sib is not None and sib.current is not None:
                clock *= self.system.machine.smt_derate
        speeds = []
        for t in local_threads:
            s = self.estimator.sample(t)
            if s is not None:
                speeds.append(s.speed * clock)
        if speeds:
            s_j = sum(speeds) / len(speeds)
        else:
            # no monitored thread on this core: it offers full speed
            s_j = clock
        self.core_speed[cid] = s_j

        # step 3: global core speed from the published values
        published = [self.core_speed[c] for c in self.requested_cores or []]
        s_global = sum(published) / len(published) if published else 1.0
        if self.trace_speeds:
            self.speed_trace.append((now, cid, s_j, s_global))

        # step 4: pull if the local core is faster than the global mean
        pulls_before = self.stats_pulls
        if s_j > s_global:
            self._try_pull(cid, s_global, now)

        interval = self.config.interval_us
        if self.config.adaptive_interval:
            interval = self._adapt_interval(cid, pulled=self.stats_pulls > pulls_before, now=now)
        self.system.engine.schedule(
            interval + self._jitter(cid),
            lambda: self._balancer_wake(cid),
            f"speed.bal.{cid}",
        )

    def _adapt_interval(self, cid: int, pulled: bool, now: int) -> int:
        """Back off the wake-up rate on cores with nothing to balance.

        After ``adaptive_idle_wakeups`` consecutive uneventful wake-ups
        the interval doubles (capped at ``adaptive_max_factor`` x the
        base); any migration involving the local core resets it.
        """
        cfg = self.config
        recently_involved = (
            now - self.last_migration_at.get(cid, -(10**12))
            < 2 * cfg.interval_us
        )
        if pulled or recently_involved:
            self._idle_wakeups[cid] = 0
            self._interval_factor[cid] = 1
        else:
            self._idle_wakeups[cid] = self._idle_wakeups.get(cid, 0) + 1
            if self._idle_wakeups[cid] >= cfg.adaptive_idle_wakeups:
                self._interval_factor[cid] = min(
                    cfg.adaptive_max_factor,
                    self._interval_factor.get(cid, 1) * 2,
                )
                self._idle_wakeups[cid] = 0
        return cfg.interval_us * self._interval_factor.get(cid, 1)

    def _try_pull(self, dst: int, s_global: float, now: int) -> None:
        assert self.system is not None
        cfg = self.config
        block = cfg.post_migration_block_intervals * cfg.interval_us
        if now - self.last_migration_at.get(dst, -(10**12)) < block * self._block_mult(dst, dst):
            return
        candidates: list[tuple[int, float, int]] = []
        for k in self.requested_cores or []:
            if k == dst:
                continue
            s_k = self.core_speed[k]
            if s_k / s_global >= cfg.speed_threshold:
                continue  # not sufficiently slow: measurement noise guard
            level = self.system.machine.domain_level_between(dst, k)
            if level is None or not cfg.level_enabled.get(level, True):
                continue
            if now - self.last_migration_at.get(k, -(10**12)) < block * self._block_mult(dst, k):
                continue
            candidates.append((self.last_migration_at.get(k, -(10**12)), s_k, k))
        if not candidates:
            return
        # All candidates are genuinely slow (below T_s); prefer the one
        # least recently involved in a migration so rotations cover
        # every slow queue ("distribute migrations across queues more
        # uniformly", Section 5.1) -- ties broken by measured speed.
        candidates.sort()
        for _, s_k, src in candidates:
            if cfg.min_gain_guard and self._pull_would_strand(src, dst):
                continue
            victim = self._pick_victim(src, dst)
            if victim is None:
                continue
            if self.system.migrate(
                victim, dst, forced=True, pin=True, reason="speed.pull"
            ):
                self.stats_pulls += 1
                self.last_migration_at[src] = now
                self.last_migration_at[dst] = now
            return

    def _pull_would_strand(self, src: int, dst: int) -> bool:
        """Would this pull idle the source core while crowding the dst?

        Pull-only balancing has exactly one pathological move: taking a
        core's *last* runnable task (nothing else keeps that core busy)
        onto a destination that already hosts monitored threads.  That
        strands the source's capacity — the now-empty core is slower
        than average (e.g. thermally throttled), so it will never pull
        work back — and is strictly worse than doing nothing.  Every
        rotation with a future (source keeps co-runners, or keeps other
        threads of the app, or the destination is empty) is allowed.
        """
        assert self.system is not None
        dst_residents = [
            t
            for t in self._monitored_on(dst)
            if t.state in (TaskState.RUNNABLE, TaskState.RUNNING)
        ]
        if not dst_residents:
            return False  # moving onto a free core is always fine
        src_monitored = [
            t
            for t in self._monitored_on(src)
            if t.state in (TaskState.RUNNABLE, TaskState.RUNNING)
        ]
        if len(src_monitored) > 1:
            return False  # the source keeps rotating its remaining threads
        # would the source core be left with anything runnable at all?
        src_core = self.system.cores[src]
        return src_core.nr_running <= len(src_monitored)

    def _block_mult(self, a: int, b: int) -> float:
        if a == b:
            return 1.0
        assert self.system is not None
        level = self.system.machine.domain_level_between(a, b)
        if level is None:
            return 1.0
        return self.config.level_block_multiplier.get(level, 1.0)

    def _pick_victim(self, src: int, dst: int) -> Optional[Task]:
        """Choose which thread to pull off the slow core."""
        assert self.system is not None
        pool = [
            t
            for t in self._monitored_on(src)
            if t.state in (TaskState.RUNNABLE, TaskState.RUNNING)
        ]
        if not pool:
            return None
        policy = self.config.victim_policy
        if policy == "least-migrated":
            pool.sort(key=lambda t: (t.migrations, t.tid))
            return pool[0]
        if policy == "most-migrated":
            pool.sort(key=lambda t: (-t.migrations, t.tid))
            return pool[0]
        if policy == "random":
            return self.system.rng.choice("speed.victim", pool)
        raise ValueError(f"unknown victim policy {policy!r}")

    # ------------------------------------------------------------------
    def _monitored_on(self, cid: int) -> list[Task]:
        """The application's threads currently hosted by core ``cid``.

        Sleeping threads whose last core was ``cid`` are counted too --
        taskstats reports them, and their near-zero interval speed is
        what makes SPEED "slightly decrease ... performance when tasks
        sleep" (Section 6.2), an emergent behaviour we preserve.

        Served from the system's per-core residency index
        (:meth:`~repro.system.System.residents_on`) in O(residents)
        instead of scanning ``app.tasks`` per wake per core.  The
        result is sorted back into ``app.tasks`` order: the speed
        estimator draws measurement noise from one shared rng stream,
        so the *sampling order* is part of the reproducible behaviour.
        """
        assert self.system is not None
        order = self._task_order
        out = [
            (order[tid], t)
            for tid, t in self.system.residents_on(cid).items()
            if tid in order
        ]
        out.sort()
        return [t for _, t in out]

    def _note_task_exit(self, task: Task) -> None:
        self._alive_count -= 1

    def _app_alive(self) -> bool:
        return self._alive_count > 0

    def __repr__(self) -> str:
        return (
            f"<SpeedBalancer app={self.app.name} pulls={self.stats_pulls}"
            f" wakeups={self.stats_wakeups}>"
        )
