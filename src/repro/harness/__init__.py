"""Experiment harness: assemble, run, repeat, report.

* :mod:`repro.harness.experiment` -- ``run_app`` builds a System with
  one of the named balancer modes (``speed``, ``load``, ``pinned``,
  ``dwrr``, ``ule``, ``none``), runs an application (plus optional
  co-runners) and returns an :class:`~repro.metrics.AppRunResult`;
  ``repeat_run`` is the paper's ten-seed repetition.
* :mod:`repro.harness.parallel` -- process-pool fan-out for batches of
  independent runs (``repeat_run(workers=N)`` / ``sweep(workers=N)``
  route through it); results are bit-identical to serial execution.
* :mod:`repro.harness.bench` -- perf trajectory tracking behind the
  ``repro bench`` CLI (``BENCH_<label>.json`` baselines).
* :mod:`repro.harness.scenarios` -- the named configurations behind
  each figure and table of the paper.
* :mod:`repro.harness.report` -- plain-text renderings of the paper's
  tables and figure series, used by the benchmark suite's output.
"""

from repro.harness.experiment import (
    BALANCER_MODES,
    repeat_run,
    run_app,
)
from repro.harness.parallel import (
    RunSpec,
    map_specs,
    register_machine,
    run_spec,
)
from repro.harness.sweeps import SweepResult, sweep
from repro.harness import bench, report, scenarios

__all__ = [
    "BALANCER_MODES",
    "RunSpec",
    "SweepResult",
    "bench",
    "map_specs",
    "register_machine",
    "repeat_run",
    "report",
    "run_app",
    "run_spec",
    "scenarios",
    "sweep",
]
