"""Experiment harness: assemble, run, repeat, report.

* :mod:`repro.harness.experiment` -- ``run_app`` builds a System with
  one of the named balancer modes (``speed``, ``load``, ``pinned``,
  ``dwrr``, ``ule``, ``none``), runs an application (plus optional
  co-runners) and returns an :class:`~repro.metrics.AppRunResult`;
  ``repeat_run`` is the paper's ten-seed repetition.
* :mod:`repro.harness.scenarios` -- the named configurations behind
  each figure and table of the paper.
* :mod:`repro.harness.report` -- plain-text renderings of the paper's
  tables and figure series, used by the benchmark suite's output.
"""

from repro.harness.experiment import (
    BALANCER_MODES,
    repeat_run,
    run_app,
)
from repro.harness.sweeps import SweepResult, sweep
from repro.harness import report, scenarios

__all__ = [
    "BALANCER_MODES",
    "SweepResult",
    "repeat_run",
    "report",
    "run_app",
    "scenarios",
    "sweep",
]
