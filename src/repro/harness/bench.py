"""Perf trajectory tracking: the ``repro bench`` suite.

Every other bench in ``benchmarks/`` regenerates a paper artifact;
this module tracks how *fast* the simulator itself is, over time.  It
runs the simulator-performance suite (bare-engine event throughput)
plus one representative figure scenario per workload shape -- the
dedicated SPMD run behind Figure 3, the fine-grained-barrier shape
behind Figure 2/cg.B, and the multiprogrammed cpu-hog shape behind
Figure 5 -- and writes a machine-readable ``BENCH_<label>.json`` with
per-bench wall time, dispatched-event counts and events/sec.

Comparing two such files gives the perf trajectory: wall times and
events/sec are hardware-dependent (only comparable on the same
machine, and only between runs of the same ``quick`` flavour), while
the dispatched-event counts are *deterministic* -- a count drift
between two checkouts means simulated behaviour changed, which doubles
as a cross-machine determinism tripwire.

This module deliberately reads the wall clock (``time.perf_counter``);
it measures the simulator from outside rather than participating in
simulated time, so it carries a SIM003 entry in the
``repro.analysis`` lint allowlist.  Nothing here makes scheduling
decisions.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.apps.multiprogram import CpuHog
from repro.apps.workloads import AppSpec
from repro.harness.experiment import run_app
from repro.sim.backends import make_engine
from repro.topology import presets

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "bench_names",
    "compare_payloads",
    "load_payload",
    "profile_benches",
    "run_benches",
    "to_payload",
    "write_payload",
]

BENCH_SCHEMA = 1


@dataclass
class BenchResult:
    """One bench case: best-of-``rounds`` wall time and event counts."""

    name: str
    wall_s: float
    events: int
    rounds: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ns_per_event(self) -> float:
        """Mean dispatch cost -- the number backend work should move."""
        return self.wall_s * 1e9 / self.events if self.events > 0 else 0.0


# ----------------------------------------------------------------------
# bench cases: each returns a zero-arg callable whose result is the
# number of engine events the round dispatched
# ----------------------------------------------------------------------
def _engine_throughput(quick: bool, engine: str) -> Callable[[], int]:
    """The bare dispatch loop: n self-scheduling events, no simulator."""
    n = 20_000 if quick else 100_000

    def round() -> int:
        eng = make_engine(engine)
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                eng.schedule(1, tick)

        eng.schedule(0, tick)
        eng.run()
        return eng.dispatched

    return round


def _scenario(spec: AppSpec, balancer: str, cores: int, engine: str,
              corunner: bool = False, machine: str = "tigerton",
              trace: bool = False) -> Callable[[], int]:
    def round() -> int:
        corunners = [lambda s: CpuHog(s, core=0)] if corunner else ()
        _, system = run_app(
            getattr(presets, machine)(), spec, balancer=balancer, cores=cores,
            seed=1, corunner_factories=corunners, return_system=True,
            trace=trace, engine=engine,
        )
        return system.engine.dispatched

    return round


def _ep_dedicated(quick: bool, engine: str) -> Callable[[], int]:
    """Figure 3 shape: dedicated EP, 16 threads on 12 Tigerton cores."""
    spec = AppSpec(bench="ep.C", n_threads=16, wait="yield",
                   total_compute_us=100_000 if quick else 1_000_000)
    return _scenario(spec, "speed", 12, engine)


def _fine_grained_barriers(quick: bool, engine: str) -> Callable[[], int]:
    """Figure 2 / cg.B shape: 4 ms barriers, the event-heaviest shape."""
    spec = AppSpec(bench="cg.B", n_threads=16, wait="yield",
                   total_compute_us=50_000 if quick else 200_000)
    return _scenario(spec, "speed", 12, engine)


def _multiprogrammed_hog(quick: bool, engine: str) -> Callable[[], int]:
    """Figure 5 shape: sleeping-wait EP sharing the machine with a hog."""
    spec = AppSpec(bench="ep.C", n_threads=8, wait="sleep",
                   total_compute_us=100_000 if quick else 500_000)
    return _scenario(spec, "speed", 8, engine, corunner=True)


def _yield_heavy_barriers(quick: bool, engine: str) -> Callable[[], int]:
    """Oversubscribed 1 ms-barrier yield loop: the sched_yield path.

    Twelve yielding threads on eight cores hit a barrier every
    millisecond, so nearly every dispatch exercises the yield
    re-insertion (max_vruntime) and slice-length (total_weight)
    aggregates this suite guards.
    """
    spec = AppSpec(bench="cg.B", n_threads=12, wait="yield",
                   total_compute_us=30_000 if quick else 150_000,
                   barrier_period_us=1_000)
    return _scenario(spec, "speed", 8, engine)


def _numa_barcelona(quick: bool, engine: str) -> Callable[[], int]:
    """NUMA shape: sp.A on Barcelona, node-scoped memory contention.

    Exercises the per-node mem-intensity aggregate (Barcelona's
    contention scope is the NUMA node) plus NUMA-aware pinning and the
    balancer's node fences.
    """
    spec = AppSpec(bench="sp.A", n_threads=12, wait="yield",
                   total_compute_us=60_000 if quick else 300_000)
    return _scenario(spec, "speed", 8, engine, machine="barcelona")


def _traced_run(quick: bool, engine: str) -> Callable[[], int]:
    """A fully traced run: the columnar recorder on the charge path."""
    spec = AppSpec(bench="cg.B", n_threads=16, wait="yield",
                   total_compute_us=50_000 if quick else 200_000)
    return _scenario(spec, "speed", 12, engine, trace=True)


#: name -> case builder; insertion order is report order
CASES: dict[str, Callable[[bool, str], Callable[[], int]]] = {
    "engine_throughput": _engine_throughput,
    "ep_dedicated": _ep_dedicated,
    "fine_grained_barriers": _fine_grained_barriers,
    "multiprogrammed_hog": _multiprogrammed_hog,
    "yield_heavy_barriers": _yield_heavy_barriers,
    "numa_barcelona": _numa_barcelona,
    "traced_run": _traced_run,
}


def bench_names() -> list[str]:
    return list(CASES)


def run_benches(
    quick: bool = False,
    rounds: Optional[int] = None,
    progress: Optional[Callable[[BenchResult], None]] = None,
    engine: str = "heap",
) -> list[BenchResult]:
    """Run every case ``rounds`` times; keep the best wall time.

    ``engine`` selects the event-dispatch backend for every case (see
    :mod:`repro.sim.backends`).  Backends are digest-equivalent, so the
    per-bench event counts must not move with this knob -- comparing a
    batched payload against a heap baseline checks exactly that while
    the wall-time columns measure the backend speedup.
    """
    if rounds is None:
        rounds = 3
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1 (got {rounds})")
    results = []
    for name, build in CASES.items():
        round_fn = build(quick, engine)
        best: Optional[float] = None
        events = 0
        for _ in range(rounds):
            t0 = time.perf_counter()
            events = round_fn()
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        result = BenchResult(name=name, wall_s=best or 0.0,
                             events=events, rounds=rounds)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


# ----------------------------------------------------------------------
# profiling: repro bench --profile
# ----------------------------------------------------------------------
def profile_benches(
    quick: bool = False,
    top_n: int = 15,
    names: Optional[Sequence[str]] = None,
    engine: str = "heap",
) -> str:
    """Run each case once under cProfile; return a per-case report.

    Each case gets its own profile (one warm-up-free round) and a
    ``pstats`` table of the ``top_n`` functions by cumulative time.
    Wall times under the profiler are not comparable to ``run_benches``
    numbers -- instrumentation overhead is real -- so this path never
    writes a payload; it exists to show *where* a case spends its time.
    """
    import cProfile
    import io
    import pstats

    selected = list(CASES) if names is None else list(names)
    unknown = [n for n in selected if n not in CASES]
    if unknown:
        raise ValueError(
            f"unknown bench case(s) {unknown}: choose from {list(CASES)}"
        )
    sections = []
    for name in selected:
        round_fn = CASES[name](quick, engine)
        prof = cProfile.Profile()
        prof.enable()
        events = round_fn()
        prof.disable()
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top_n)
        sections.append(
            f"== {name} ({'quick' if quick else 'full'}, "
            f"{events} events) ==\n{buf.getvalue().rstrip()}"
        )
    return "\n\n".join(sections) + "\n"


# ----------------------------------------------------------------------
# payloads: BENCH_<label>.json
# ----------------------------------------------------------------------
def to_payload(
    results: list[BenchResult], label: str, quick: bool, engine: str = "heap"
) -> dict:
    if not re.fullmatch(r"[A-Za-z0-9_-]+", label):
        raise ValueError(
            f"invalid bench label {label!r}: labels become the "
            "BENCH_<label>.json filename, so only [A-Za-z0-9_-]+ is allowed"
        )
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "quick": quick,
        "engine": engine,
        "benches": {
            r.name: {
                **asdict(r),
                "events_per_sec": round(r.events_per_sec, 1),
                "ns_per_event": round(r.ns_per_event, 1),
            }
            for r in results
        },
    }


def write_payload(payload: dict, out_dir: Union[str, Path] = ".") -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{payload['label']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_payload(path: Union[str, Path]) -> dict:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {payload.get('schema')!r} "
            f"(this build reads schema {BENCH_SCHEMA})"
        )
    return payload


@dataclass
class Comparison:
    """Delta of one bench between two payloads.

    Wall time is hardware noise territory and gets a tolerance
    threshold; the dispatched-event count is deterministic, so *any*
    ``events_mismatch`` means simulated behaviour changed between the
    two checkouts -- a determinism regression, not a perf one.
    """

    name: str
    baseline_wall_s: float
    wall_s: float
    #: percent change; positive = slower than the baseline
    delta_pct: float
    regressed: bool
    baseline_events: int
    events: int
    events_mismatch: bool


def compare_payloads(
    baseline: dict, current: dict, threshold_pct: float = 25.0
) -> list[Comparison]:
    """Per-bench wall-time and event-count deltas vs ``baseline``.

    A bench regresses when it is more than ``threshold_pct`` percent
    slower than the baseline; it mismatches when its dispatched-event
    count differs at all.  Benches present in only one payload are
    skipped (new benches have no trajectory yet).  Comparing a quick
    run against a full baseline is refused: their workloads differ.

    Payloads recorded under *different engine backends* compare fine --
    deliberately so.  Backends are digest-equivalent, which makes the
    cross-engine event-count columns the batching parity tripwire, and
    the wall-time columns the backend speedup measurement.
    """
    if baseline.get("quick") != current.get("quick"):
        raise ValueError(
            "cannot compare a quick bench run against a non-quick baseline; "
            "regenerate the baseline with the same --quick flag"
        )
    out = []
    for name, cur in current["benches"].items():
        base = baseline["benches"].get(name)
        if base is None:
            continue
        old, new = base["wall_s"], cur["wall_s"]
        delta_pct = (new / old - 1.0) * 100.0 if old > 0 else 0.0
        out.append(Comparison(
            name=name,
            baseline_wall_s=old,
            wall_s=new,
            delta_pct=delta_pct,
            regressed=delta_pct > threshold_pct,
            baseline_events=base["events"],
            events=cur["events"],
            events_mismatch=base["events"] != cur["events"],
        ))
    return out
