"""Assembling and running single experiments.

``run_app`` is the workhorse used by every benchmark and most
integration tests: it builds a :class:`~repro.system.System` on a given
machine, installs the requested balancer mode, spawns the application
(optionally restricted to a core subset, the paper's ``taskset``) along
with any co-runners, runs to completion and returns measurements.

Balancer modes mirror the paper's figure legends:

=============  ====================================================
mode           meaning
=============  ====================================================
``load``       Linux queue-length balancing (LOAD)
``speed``      LOAD underneath + user-level speed balancer (SPEED)
``pinned``     static round-robin pinning (PINNED / One-per-core)
``dwrr``       Distributed Weighted Round-Robin
``ule``        FreeBSD ULE push/steal migration
``none``       placement only, no migration
=============  ====================================================
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

from repro.apps.spmd import SpmdApp
from repro.balance.base import NoBalancer
from repro.balance.dwrr import DwrrBalancer
from repro.balance.linux import LinuxLoadBalancer, LinuxParams
from repro.balance.pinned import PinnedBalancer
from repro.balance.ule import UleBalancer
from repro.core.speed_balancer import SpeedBalancer, SpeedBalancerConfig
from repro.mem.cache_model import CacheModel
from repro.metrics.results import AppRunResult, RepeatedResult
from repro.metrics.trace import TraceRecorder
from repro.sched.cfs import CfsParams
from repro.system import System
from repro.topology.machine import Machine

__all__ = ["BALANCER_MODES", "make_kernel_balancer", "run_app", "repeat_run"]

BALANCER_MODES = ("load", "speed", "pinned", "dwrr", "ule", "none")


def make_kernel_balancer(mode: str, linux_params: Optional[LinuxParams] = None):
    """The kernel-level balancer behind a mode name."""
    if mode in ("load", "speed"):
        # speedbalancer "can easily co-exist with the default Linux load
        # balance implementation": SPEED runs on top of LOAD.
        return LinuxLoadBalancer(linux_params)
    if mode == "pinned":
        return PinnedBalancer()
    if mode == "dwrr":
        return DwrrBalancer()
    if mode == "ule":
        return UleBalancer()
    if mode == "none":
        return NoBalancer()
    raise ValueError(f"unknown balancer mode {mode!r}; expected one of {BALANCER_MODES}")


def run_app(
    machine: Union[Machine, Callable[[], Machine]],
    app_factory: Callable[[System], SpmdApp],
    balancer: str = "speed",
    cores: Optional[Union[int, Sequence[int]]] = None,
    seed: int = 0,
    corunner_factories: Sequence[Callable[[System], object]] = (),
    speed_config: Optional[SpeedBalancerConfig] = None,
    linux_params: Optional[LinuxParams] = None,
    cfs_params: Optional[CfsParams] = None,
    cache_model: Optional[CacheModel] = None,
    limit_us: int = 3_600_000_000,
    return_system: bool = False,
    scheduler: str = "cfs",
    instrument: Optional[Callable[[System], None]] = None,
    trace: Union[bool, TraceRecorder] = False,
    engine: str = "heap",
):
    """Run one application to completion under one balancer mode.

    Parameters
    ----------
    machine:
        A :class:`Machine` or a zero-argument factory (factories keep
        repeated runs independent).
    app_factory:
        ``system -> SpmdApp``; the app is spawned at t=0.
    cores:
        Core subset for the app and its speed balancer (``taskset``):
        an int n means cores ``0..n-1``.  Co-runners are unrestricted.
    corunner_factories:
        Each ``system -> obj`` where obj has ``spawn(at)``; spawned at
        t=0 before the app (like background load already present).
    return_system:
        Also return the System for white-box inspection in tests.
    scheduler:
        Per-core policy: "cfs" (default) or "o1" (fixed 100 ms quanta;
        the 2.6.22 substrate DWRR was prototyped on).
    instrument:
        Called with the fully assembled :class:`System` just before the
        run starts -- the hook ``repro check --invariants`` uses to
        install a :class:`~repro.analysis.invariants.InvariantChecker`.
    trace:
        Record the full execution/migration history into the System's
        :class:`~repro.metrics.trace.TraceRecorder` (True, or an
        instance to control the record cap).  Combine with
        ``return_system`` to analyze the trace post hoc -- this is how
        ``repro sanitize`` feeds the schedule sanitizer.
    engine:
        Event-dispatch backend (see :mod:`repro.sim.backends`): "heap"
        (default) or "batched".  Backends are digest-equivalent; the
        choice only affects wall-clock speed.
    """
    m = machine() if callable(machine) else machine
    system = System(
        m, seed=seed, cfs_params=cfs_params, cache_model=cache_model,
        scheduler=scheduler, trace=trace, engine=engine,
    )
    system.set_balancer(make_kernel_balancer(balancer, linux_params))

    corunners = [f(system) for f in corunner_factories]
    for c in corunners:
        c.spawn(at=0)

    app = app_factory(system)
    core_list: Optional[list[int]]
    if cores is None:
        core_list = None
    elif isinstance(cores, int):
        core_list = list(range(cores))
    else:
        core_list = sorted(cores)
        if len(core_list) != len(set(core_list)):
            dups = sorted({c for c in core_list if core_list.count(c) > 1})
            raise ValueError(
                f"duplicate core ids {dups} in core subset {core_list}; "
                "each core may appear at most once (duplicates would "
                "silently inflate n_cores in the results)"
            )
    if core_list is not None:
        if not core_list:
            raise ValueError("the core subset is empty")
        bad = [c for c in core_list if not 0 <= c < m.n_cores]
        if bad:
            raise ValueError(
                f"core subset {bad} outside machine {m.name!r} "
                f"(cores 0..{m.n_cores - 1})"
            )

    if balancer == "speed":
        sb = SpeedBalancer(app, cores=core_list, config=speed_config)
        system.add_user_balancer(sb)

    if instrument is not None:
        instrument(system)
    app.spawn(at=0, cores=core_list)
    system.run_until_done([app], limit_us=limit_us)

    result = AppRunResult(
        app_name=app.name,
        balancer=balancer,
        n_cores=len(core_list) if core_list is not None else m.n_cores,
        n_threads=app.n_threads,
        seed=seed,
        elapsed_us=app.elapsed_us,
        total_work_us=app.total_work_us(),
        migrations=app.migrations(),
        thread_exec_us=[t.exec_us for t in app.tasks],
        thread_compute_us=[t.compute_us for t in app.tasks],
        thread_finish_us=[t.finished_at for t in app.tasks],
        system_migrations=system.total_migrations(),
    )
    if return_system:
        return result, system
    return result


def repeat_run(
    machine: Union[Machine, Callable[[], Machine]],
    app_factory: Callable[[System], SpmdApp],
    balancer: str = "speed",
    cores: Optional[Union[int, Sequence[int]]] = None,
    seeds: Iterable[int] = range(10),
    workers: Optional[int] = 1,
    store=None,
    **kwargs,
) -> RepeatedResult:
    """The paper's methodology: "repeated ten times or more".

    Runs the same configuration across ``seeds`` and aggregates.  A
    machine *factory* should be passed rather than an instance when the
    machine object is mutated by runs (presets are safe either way; a
    fresh System is built per run regardless).

    ``workers`` fans the seeds out over that many worker processes via
    :mod:`repro.harness.parallel` (``None`` = one per CPU).  Each seed
    is an independent deterministic simulation, so results are
    bit-identical to the default serial path -- they are reassembled in
    seed order regardless of completion order.  With ``workers > 1``
    the machine, ``app_factory`` and every extra keyword argument must
    pickle (preset names, :class:`~repro.apps.workloads.AppSpec` and
    module-level functions do; closures do not).

    ``store`` (a directory path, :class:`~repro.store.ResultStore` or
    :class:`~repro.service.JobService`) makes the repeat *incremental*:
    each seed's configuration is resolved against the content-addressed
    store first and only the misses simulate; fresh results are filed
    back.  Cached results are byte-identical to fresh ones.  The same
    picklability rules apply, plus the configuration must be
    *storable* (see :mod:`repro.store.keys`) -- closures raise
    :class:`~repro.store.UnstorableSpecError` before anything runs.
    """
    if store is not None:
        # imported here: the service builds on this module, not vice versa
        from repro.harness.parallel import RunSpec
        from repro.service import run_specs_cached

        specs = [
            RunSpec.make(
                machine, app_factory, balancer=balancer, cores=cores,
                seed=s, **kwargs,
            )
            for s in seeds
        ]
        return RepeatedResult(
            runs=run_specs_cached(specs, store, workers=workers)
        )
    if workers == 1:
        runs = [
            run_app(
                machine,
                app_factory,
                balancer=balancer,
                cores=cores,
                seed=s,
                **kwargs,
            )
            for s in seeds
        ]
    else:
        # imported here: parallel builds on this module, not vice versa
        from repro.harness.parallel import RunSpec, map_specs

        specs = [
            RunSpec.make(
                machine, app_factory, balancer=balancer, cores=cores,
                seed=s, **kwargs,
            )
            for s in seeds
        ]
        runs = map_specs(specs, workers=workers)
    return RepeatedResult(runs=runs)
