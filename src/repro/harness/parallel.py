"""Process-pool fan-out for independent simulator runs.

The paper's methodology ("repeated ten times or more", grids of core
counts x balancer modes x barrier periods) generates large batches of
fully independent, seed-deterministic simulations.  This module runs
such batches across worker processes while keeping the results
*bit-identical* to a serial execution:

* every job is described by a picklable :class:`RunSpec` (machine
  preset name or registered factory, app spec, balancer mode, core
  subset, seed, extra ``run_app`` keyword parameters);
* each worker builds its own :class:`~repro.system.System` from the
  spec and returns the :class:`~repro.metrics.results.AppRunResult`;
* results are reassembled in submission (seed/grid) order regardless
  of completion order, so aggregation downstream sees the exact
  sequence a serial loop would have produced.

Pickling rules
--------------
``ProcessPoolExecutor`` ships jobs to workers with :mod:`pickle`:

* machine: pass a **preset name** (``"tigerton"``, ``"barcelona"``,
  ``"nehalem"`` or anything added via :func:`register_machine`) or a
  module-level factory function.  Closures and lambdas do not pickle.
* app: pass an :class:`~repro.apps.workloads.AppSpec` (preferred) or a
  module-level ``system -> app`` factory function.
* extra params (``cfs_params``, ``speed_config`` ...): plain
  dataclasses of values pickle fine; ``instrument`` callbacks and
  other closures do not -- run those with ``workers=1``.

:func:`map_specs` pre-checks every spec and raises a descriptive
``ValueError`` naming the offending field before any process is
spawned.

Registered factories added at runtime (not importable from a module)
are only visible to workers on platforms whose process start method is
``fork`` (Linux); prefer module-level factories for portability.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.harness.experiment import run_app
from repro.metrics.results import AppRunResult
from repro.topology import presets
from repro.topology.machine import Machine

__all__ = [
    "MACHINE_PRESETS",
    "RunSpec",
    "SpecTimeoutError",
    "map_specs",
    "register_machine",
    "resolve_machine",
    "run_spec",
    "starmap_kwargs",
]


class SpecTimeoutError(RuntimeError):
    """One spec exceeded its wall-clock budget (a timeout failure).

    Produced by :func:`map_specs` when ``timeout_s`` is set; with
    ``return_exceptions`` it appears in the result list like any other
    per-job failure, so :class:`repro.service.JobService` retries a
    timed-out job exactly as it retries a crash, and the final error
    string a caller sees names the timeout explicitly.
    """

#: machine factories resolvable by name in a :class:`RunSpec`
MACHINE_PRESETS: dict[str, Callable[[], Machine]] = {
    "tigerton": presets.tigerton,
    "barcelona": presets.barcelona,
    "nehalem": presets.nehalem,
}


def register_machine(name: str, factory: Callable[[], Machine]) -> None:
    """Make ``factory`` resolvable as ``RunSpec(machine=name)``."""
    if not callable(factory):
        raise ValueError(f"machine factory for {name!r} is not callable")
    # registration must happen before any workers fork (module import
    # time in practice); the registry is read-only on the worker path
    MACHINE_PRESETS[name] = factory  # sim-lint: ignore[FLOW004]


def resolve_machine(
    machine: Union[str, Machine, Callable[[], Machine]],
) -> Union[Machine, Callable[[], Machine]]:
    """Turn a preset name into its factory; pass anything else through."""
    if isinstance(machine, str):
        try:
            return MACHINE_PRESETS[machine]
        except KeyError:
            raise ValueError(
                f"unknown machine preset {machine!r}; expected one of "
                f"{sorted(MACHINE_PRESETS)} (see register_machine)"
            ) from None
    return machine


@dataclass(frozen=True)
class RunSpec:
    """One picklable, self-contained ``run_app`` job.

    ``params`` holds any extra keyword arguments for
    :func:`~repro.harness.experiment.run_app` as a sorted tuple of
    ``(name, value)`` pairs -- a canonical form that keeps equal specs
    equal.  Build it with :meth:`make` to get the normalization for
    free.
    """

    machine: Union[str, Machine, Callable[[], Machine]]
    app: Callable  # AppSpec or module-level ``system -> app`` factory
    balancer: str = "speed"
    cores: Optional[Union[int, tuple[int, ...]]] = None
    seed: int = 0
    #: event-dispatch backend (see :mod:`repro.sim.backends`).  A first-
    #: class field -- never folded into ``params`` -- so a spec has
    #: exactly one representation of its engine and the store key (see
    #: :func:`repro.store.keys.spec_key`) records it explicitly.
    engine: str = "heap"
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        machine: Union[str, Machine, Callable[[], Machine]],
        app: Callable,
        balancer: str = "speed",
        cores: Optional[Union[int, Sequence[int]]] = None,
        seed: int = 0,
        engine: str = "heap",
        **params: Any,
    ) -> "RunSpec":
        if cores is not None and not isinstance(cores, int):
            cores = tuple(cores)
        return cls(
            machine=machine,
            app=app,
            balancer=balancer,
            cores=cores,
            seed=seed,
            engine=engine,
            params=tuple(sorted(params.items())),
        )


def run_spec(spec: RunSpec) -> AppRunResult:
    """Execute one :class:`RunSpec` (in this process) via ``run_app``."""
    cores = spec.cores
    if isinstance(cores, tuple):
        cores = list(cores)
    return run_app(
        resolve_machine(spec.machine),
        spec.app,
        balancer=spec.balancer,
        cores=cores,
        seed=spec.seed,
        engine=spec.engine,
        **dict(spec.params),
    )


def _require_picklable(obj: Any, what: str) -> None:
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ValueError(
            f"{what} does not pickle ({exc}); parallel execution sends jobs "
            "to worker processes, so pass machine preset names, AppSpec "
            "instances or module-level functions -- or fall back to workers=1"
        ) from None


def _fan_out(
    submit_args: Sequence[tuple],
    fn: Callable,
    workers: int,
    return_exceptions: bool = False,
    timeout_s: Optional[float] = None,
) -> list:
    """Run ``fn(*args)`` for each args tuple; results in submission order.

    With ``return_exceptions`` a failed job yields its exception object
    in place of a result instead of aborting the whole batch -- the
    hook :class:`repro.service.JobService` uses to retry individual
    worker crashes without losing the rest of a fan-out.

    With ``timeout_s`` each job gets that many wall seconds, measured
    from the moment the collector reaches its future (jobs running
    concurrently ahead of their turn only gain time, never lose it).
    A job past its deadline yields :class:`SpecTimeoutError`; the job
    that was mid-run cannot be interrupted cooperatively, so on any
    timeout the pool is shut down without waiting and its worker
    processes are killed -- safe because workers only *return* results
    (the parent does all store writes), so no shared state can be left
    half-written.
    """
    pool = ProcessPoolExecutor(max_workers=workers)
    timed_out = False
    try:
        futures = [pool.submit(fn, *args) for args in submit_args]
        out: list = []
        for i, f in enumerate(futures):
            try:
                out.append(f.result(timeout=timeout_s))
            except FuturesTimeoutError:
                f.cancel()
                timed_out = True
                exc: Exception = SpecTimeoutError(
                    f"job #{i} timeout: exceeded the {timeout_s:g}s "
                    "wall-clock budget"
                )
                if not return_exceptions:
                    raise exc from None
                out.append(exc)
            except Exception as exc:  # noqa: BLE001 - reported per job
                if not return_exceptions:
                    raise
                out.append(exc)
        return out
    finally:
        if timed_out:
            # a timed-out job is still running in its worker; joining
            # (or even interpreter exit) would block on it, so kill the
            # workers outright -- they hold no shared state.  Snapshot
            # the process table first: shutdown() clears it.
            procs = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                proc.kill()
        else:
            pool.shutdown(wait=True)


def _normalize_workers(workers: Optional[int]) -> int:
    if workers is None:
        import os

        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1 (got {workers})")
    return workers


def map_specs(
    specs: Iterable[RunSpec],
    workers: Optional[int] = 1,
    progress: Optional[Callable[[RunSpec, AppRunResult], None]] = None,
    return_exceptions: bool = False,
    timeout_s: Optional[float] = None,
) -> list[AppRunResult]:
    """Run every spec; return results in input order.

    ``workers=1`` (default) runs serially in-process -- the exact same
    code path a direct ``run_app`` loop takes.  ``workers=None`` uses
    one worker per CPU.  With workers, ``progress`` is still invoked in
    deterministic input order, after all results are in.

    With ``return_exceptions`` a failed spec contributes its exception
    object (including :class:`concurrent.futures.process
    .BrokenProcessPool` for a crashed worker) instead of raising, so a
    caller can retry just the failed subset; ``progress`` is skipped
    for failed specs.

    ``timeout_s`` bounds each spec's wall-clock time; a spec past it
    contributes (or raises) :class:`SpecTimeoutError`.  Enforcing a
    deadline requires the process-pool path -- in-process execution
    cannot be interrupted -- so ``timeout_s`` forces the fan-out even
    for ``workers=1`` / single-spec batches (results stay
    byte-identical; the parity tests cover the pool path).
    """
    specs = list(specs)
    workers = _normalize_workers(workers)
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be > 0 (got {timeout_s})")
    if timeout_s is None and (workers == 1 or len(specs) <= 1):
        results = []
        for spec in specs:
            try:
                result = run_spec(spec)
            except Exception as exc:  # noqa: BLE001 - reported per job
                if not return_exceptions:
                    raise
                results.append(exc)
                continue
            results.append(result)
            if progress is not None:
                progress(spec, result)
        return results
    for i, spec in enumerate(specs):
        _require_picklable(spec, f"RunSpec #{i} ({spec.balancer}, seed={spec.seed})")
    results = _fan_out(
        [(spec,) for spec in specs], run_spec, workers,
        return_exceptions=return_exceptions, timeout_s=timeout_s,
    )
    if progress is not None:
        for spec, result in zip(specs, results):
            if not isinstance(result, Exception):
                progress(spec, result)
    return results


def _apply_kwargs(fn: Callable, kwargs: dict) -> Any:
    return fn(**kwargs)


def starmap_kwargs(
    fn: Callable[..., Any],
    kwargs_list: Sequence[dict],
    workers: Optional[int] = 1,
) -> list:
    """``[fn(**kw) for kw in kwargs_list]`` across worker processes.

    The generic fan-out behind ``sweep(workers=N)``: outcomes come back
    in input order, so grid assembly is independent of completion
    order.  ``fn``, every kwargs dict and every outcome must pickle.
    """
    kwargs_list = list(kwargs_list)
    workers = _normalize_workers(workers)
    if workers == 1 or len(kwargs_list) <= 1:
        return [fn(**kw) for kw in kwargs_list]
    _require_picklable(fn, f"runner {getattr(fn, '__name__', fn)!r}")
    for i, kw in enumerate(kwargs_list):
        _require_picklable(kw, f"parameter assignment #{i} ({kw})")
    return _fan_out([(fn, kw) for kw in kwargs_list], _apply_kwargs, workers)
