"""Plain-text rendering of paper-style tables and figure series.

The benchmark suite prints these so a run of
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
rows/series in readable form (EXPERIMENTS.md archives one such run).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["table", "series", "kv_block"]


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned text table."""

    def fmt(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    str_rows = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def series(
    x_label: str,
    xs: Sequence[object],
    columns: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render figure-style series: one x column, one column per line."""
    headers = [x_label] + list(columns.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [columns[k][i] for k in columns])
    return table(headers, rows, title=title, float_fmt=float_fmt)


def kv_block(title: str, pairs: Mapping[str, object], float_fmt: str = "{:.2f}") -> str:
    """Render a labelled key/value block (summary numbers)."""
    lines = [title]
    width = max(len(k) for k in pairs) if pairs else 0
    for k, v in pairs.items():
        if isinstance(v, float):
            v = float_fmt.format(v)
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)
