"""Named scenarios: the configurations behind each figure and table.

Each function returns plain data (dicts / result objects) so the
benchmark harness can both assert on shapes and print paper-style
output.  Durations are scaled down from the paper's 2-80 s runs (see
``workloads`` module docstring); every scaling choice is recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.apps.barriers import WaitPolicy
from repro.apps.multiprogram import CpuHog, MakeWorkload
from repro.apps.workloads import WAIT_MODES, AppSpec, ep_app, make_nas_app
from repro.core.speed_balancer import SpeedBalancerConfig
from repro.harness.experiment import repeat_run, run_app
from repro.metrics.results import RepeatedResult
from repro.sched.task import WaitMode
from repro.topology import presets

__all__ = [
    "WAIT_POLICIES",
    "CorunnerSpec",
    "ScenarioSmoke",
    "ep_speedup_series",
    "balance_interval_sweep",
    "npb_improvement",
    "cpu_hog_series",
    "make_share_series",
    "scenario_smokes",
]

#: wait-policy shorthand used across scenarios
WAIT_POLICIES: dict[str, WaitPolicy] = {
    "yield": WaitPolicy(mode=WaitMode.YIELD),
    "sleep": WaitPolicy(mode=WaitMode.SLEEP),
    "spin": WaitPolicy(mode=WaitMode.SPIN),
    "omp-default": WaitPolicy.omp_default(),
    "omp-infinite": WaitPolicy.omp_infinite(),
}


def _machine(name: str):
    return {
        "tigerton": presets.tigerton,
        "barcelona": presets.barcelona,
        "nehalem": presets.nehalem,
    }[name]


@dataclass(frozen=True)
class CorunnerSpec:
    """Declarative, picklable co-runner description.

    The co-runner analogue of :class:`~repro.apps.workloads.AppSpec`:
    callable with a :class:`~repro.system.System` (the
    ``corunner_factories`` protocol of :func:`run_app`), but a frozen
    dataclass of plain values, so scenario configurations that share
    the machine with a cpu-hog or ``make -j`` can cross process
    boundaries and key content-addressed store entries.
    """

    kind: str  #: "cpu-hog" | "make-j"
    core: int = 0  #: pin core of the cpu-hog
    j: int = 16  #: parallelism of the make workload
    jobs: Optional[int] = None  #: total make jobs (default 4*j)

    def build(self, system):
        if self.kind == "cpu-hog":
            return CpuHog(system, core=self.core)
        if self.kind == "make-j":
            jobs = self.jobs if self.jobs is not None else 4 * self.j
            return MakeWorkload(system, j=self.j, jobs=jobs)
        raise ValueError(
            f"unknown co-runner kind {self.kind!r}; expected 'cpu-hog' or 'make-j'"
        )

    __call__ = build


def _app_factory(
    wait: str,
    n_threads: int,
    total_compute_us: int,
    bench: str = "ep.C",
    barrier_period_us: Optional[int] = None,
):
    """An :class:`AppSpec` when the wait policy is expressible as one
    (storable + picklable), else an equivalent closure.

    The two build byte-identical applications for the plain wait modes
    (``AppSpec.build`` constructs the same ``WaitPolicy``/app); the
    closure fallback covers the OMP-style policies (``omp-default``,
    ``omp-infinite``) that carry extra spin parameters -- those run
    fine serially but cannot key a store entry.
    """
    if wait in WAIT_MODES:
        return AppSpec(
            bench=bench,
            n_threads=n_threads,
            wait=wait,
            total_compute_us=total_compute_us,
            barrier_period_us=barrier_period_us,
        )

    def factory(system):
        if barrier_period_us is not None:
            return ep_app(
                system,
                n_threads=n_threads,
                wait_policy=WAIT_POLICIES[wait],
                total_compute_us=total_compute_us,
                barrier_period_us=barrier_period_us,
            )
        return make_nas_app(
            system,
            bench,
            n_threads=n_threads,
            wait_policy=WAIT_POLICIES[wait],
            total_compute_us=total_compute_us,
        )

    return factory


# ----------------------------------------------------------------------
# Figure 3: EP speedup vs core count
# ----------------------------------------------------------------------
def ep_speedup_series(
    machine: str = "tigerton",
    balancer: str = "speed",
    wait: str = "yield",
    core_counts: Iterable[int] = range(1, 17),
    n_threads: int = 16,
    one_per_core: bool = False,
    seeds: Iterable[int] = range(5),
    total_compute_us: int = 1_000_000,
    store=None,
) -> dict[int, RepeatedResult]:
    """EP compiled with 16 threads, run on 1..16 cores (Figure 3).

    ``one_per_core`` instead runs as many threads as cores, pinned --
    the paper's ideal-scaling reference line.  ``store`` makes the
    series incremental: cells already in the content-addressed store
    are served from it (see docs/store.md).
    """
    out: dict[int, RepeatedResult] = {}
    for n_cores in core_counts:
        threads = n_cores if one_per_core else n_threads
        per_thread = total_compute_us * n_threads // threads
        out[n_cores] = repeat_run(
            machine if store is not None else _machine(machine),
            _app_factory(wait, threads, per_thread),
            balancer="pinned" if one_per_core else balancer,
            cores=n_cores,
            seeds=seeds,
            store=store,
        )
    return out


# ----------------------------------------------------------------------
# Figure 2: balance interval vs synchronization granularity
# ----------------------------------------------------------------------
def balance_interval_sweep(
    barrier_periods_us: Sequence[int] = (53, 440, 3400, 27_000, 216_000),
    balance_intervals_us: Sequence[int] = (20_000, 50_000, 100_000, 200_000, 400_000),
    total_compute_us: int = 500_000,
    n_threads: int = 3,
    n_cores: int = 2,
    seeds: Iterable[int] = range(3),
    machine: str = "tigerton",
    store=None,
) -> dict[tuple[int, int], RepeatedResult]:
    """Three threads on two cores, EP with barriers (Figure 2).

    Keys are ``(barrier_period_us, balance_interval_us)``; the paper's
    x-axis is the computation between barriers, one line per balance
    interval, y-axis the slowdown vs one thread per core.
    """
    out: dict[tuple[int, int], RepeatedResult] = {}
    for period in barrier_periods_us:
        for interval in balance_intervals_us:
            cfg = SpeedBalancerConfig(interval_us=interval)
            out[(period, interval)] = repeat_run(
                machine if store is not None else _machine(machine),
                _app_factory(
                    "yield", n_threads, total_compute_us,
                    barrier_period_us=period,
                ),
                balancer="speed",
                cores=n_cores,
                seeds=seeds,
                speed_config=cfg,
                store=store,
            )
    return out


# ----------------------------------------------------------------------
# Figure 4 / Table 3: NPB workload, SPEED vs LOAD vs PINNED
# ----------------------------------------------------------------------
def npb_improvement(
    benches: Sequence[str] = ("bt.A", "cg.B", "ft.B", "is.C", "sp.A"),
    core_counts: Iterable[int] = (6, 10, 12, 14),
    balancers: Sequence[str] = ("speed", "load", "pinned"),
    wait: str = "yield",
    machine: str = "tigerton",
    seeds: Iterable[int] = range(10),
    n_threads: int = 16,
    total_compute_us: int = 400_000,
    store=None,
) -> dict[tuple[str, int, str], RepeatedResult]:
    """NPB subset across core counts and balancers (Figure 4, Table 3)."""
    out: dict[tuple[str, int, str], RepeatedResult] = {}
    for bench in benches:
        for n_cores in core_counts:
            for balancer in balancers:
                out[(bench, n_cores, balancer)] = repeat_run(
                    machine if store is not None else _machine(machine),
                    _app_factory(wait, n_threads, total_compute_us, bench=bench),
                    balancer=balancer,
                    cores=n_cores,
                    seeds=seeds,
                    store=store,
                )
    return out


# ----------------------------------------------------------------------
# Figure 5: sharing with a cpu-hog
# ----------------------------------------------------------------------
def cpu_hog_series(
    balancer: str = "speed",
    wait: str = "sleep",
    core_counts: Iterable[int] = (2, 4, 8, 12, 16),
    one_per_core: bool = False,
    n_threads: int = 16,
    seeds: Iterable[int] = range(5),
    machine: str = "tigerton",
    total_compute_us: int = 1_000_000,
    store=None,
) -> dict[int, RepeatedResult]:
    """EP sharing the machine with a cpu-hog pinned to core 0."""
    out: dict[int, RepeatedResult] = {}
    for n_cores in core_counts:
        threads = n_cores if one_per_core else n_threads
        per_thread = total_compute_us * n_threads // threads
        out[n_cores] = repeat_run(
            machine if store is not None else _machine(machine),
            _app_factory(wait, threads, per_thread),
            balancer="pinned" if one_per_core else balancer,
            cores=n_cores,
            seeds=seeds,
            corunner_factories=(CorunnerSpec("cpu-hog", core=0),),
            store=store,
        )
    return out


# ----------------------------------------------------------------------
# Figure 6: sharing with make -j
# ----------------------------------------------------------------------
def make_share_series(
    benches: Sequence[str] = ("bt.A", "cg.B", "sp.A"),
    balancers: Sequence[str] = ("speed", "load"),
    j: int = 16,
    wait: str = "yield",
    machine: str = "tigerton",
    seeds: Iterable[int] = range(5),
    n_threads: int = 16,
    total_compute_us: int = 300_000,
    store=None,
) -> dict[tuple[str, str], RepeatedResult]:
    """NPB sharing all 16 cores with a make -j co-runner (Figure 6)."""
    out: dict[tuple[str, str], RepeatedResult] = {}
    for bench in benches:
        for balancer in balancers:
            out[(bench, balancer)] = repeat_run(
                machine if store is not None else _machine(machine),
                _app_factory(wait, n_threads, total_compute_us, bench=bench),
                balancer=balancer,
                cores=16,
                seeds=seeds,
                corunner_factories=(CorunnerSpec("make-j", j=j, jobs=4 * j),),
                store=store,
            )
    return out


# ----------------------------------------------------------------------
# smoke registry: one scaled-down run per scenario family
# ----------------------------------------------------------------------
#: co-runner factories addressable by name from a :class:`ScenarioSmoke`
_CORUNNERS: dict[str, Callable] = {
    "cpu-hog": CorunnerSpec("cpu-hog", core=0),
    "make-j": CorunnerSpec("make-j", j=4, jobs=8),
}


@dataclass(frozen=True)
class ScenarioSmoke:
    """A scaled-down, single-run representative of one scenario family.

    Every scenario function in this module expands into a grid of
    :func:`repeat_run` calls -- far too much simulation to re-run under
    full tracing on every CI push.  A ``ScenarioSmoke`` samples one
    representative configuration from the family at reduced compute
    demand, as a declarative record the schedule sanitizer
    (``repro sanitize``) and the differential determinism checker can
    execute by name, in this process or a fresh subprocess.

    Everything in a smoke is plain data (machine preset name,
    :class:`~repro.apps.workloads.AppSpec`, co-runner *names* resolved
    through ``_CORUNNERS``), so a smoke without co-runners can also be
    fanned out through :mod:`repro.harness.parallel` workers -- the
    serial-vs-parallel leg of the differential checker relies on that.
    """

    name: str
    scenario: str  #: the scenario function this samples (documentation)
    machine: str
    app: AppSpec
    balancer: str = "speed"
    cores: Optional[int] = None
    corunners: tuple[str, ...] = ()
    speed_config: Optional[SpeedBalancerConfig] = field(default=None)

    def run(self, seed: int = 0, instrument=None, engine: str = "heap"):
        """Execute the smoke under full tracing; (result, system)."""
        return run_app(
            _machine(self.machine),
            self.app,
            balancer=self.balancer,
            cores=self.cores,
            seed=seed,
            corunner_factories=[_CORUNNERS[c] for c in self.corunners],
            speed_config=self.speed_config,
            trace=True,
            return_system=True,
            instrument=instrument,
            engine=engine,
        )

    def spec(self, seed: int = 0, engine: str = "heap"):
        """The same configuration as a storable, digestable ``RunSpec``.

        ``run_app(**spec)`` and :meth:`run` build byte-identical
        simulations, so ``repro.store.spec_digest(smoke.spec())`` keys
        the exact run :meth:`run` performs -- the parity tests lean on
        this to assert cached results equal fresh ones per family.
        """
        # imported here: parallel builds on the harness, not vice versa
        from repro.harness.parallel import RunSpec

        kwargs: dict = {}
        if self.corunners:
            kwargs["corunner_factories"] = tuple(
                _CORUNNERS[c] for c in self.corunners
            )
        if self.speed_config is not None:
            kwargs["speed_config"] = self.speed_config
        return RunSpec.make(
            self.machine,
            self.app,
            balancer=self.balancer,
            cores=self.cores,
            seed=seed,
            engine=engine,
            **kwargs,
        )


def scenario_smokes() -> dict[str, ScenarioSmoke]:
    """The smoke suite: every scenario family above, sampled once.

    Returned fresh per call (configs are mutable dataclasses); keys are
    stable names usable from the CLI and from subprocess digest runs.
    """
    smokes = [
        ScenarioSmoke(
            name="ep-speedup",
            scenario="ep_speedup_series",
            machine="tigerton",
            app=AppSpec(bench="ep.C", n_threads=8, total_compute_us=400_000),
            balancer="speed",
            cores=6,
        ),
        ScenarioSmoke(
            name="balance-interval",
            scenario="balance_interval_sweep",
            machine="tigerton",
            app=AppSpec(n_threads=3, total_compute_us=300_000, barrier_period_us=3_400),
            balancer="speed",
            cores=2,
            speed_config=SpeedBalancerConfig(interval_us=50_000),
        ),
        ScenarioSmoke(
            name="npb-speed",
            scenario="npb_improvement",
            machine="tigerton",
            app=AppSpec(bench="bt.A", n_threads=8, total_compute_us=200_000),
            balancer="speed",
            cores=6,
        ),
        ScenarioSmoke(
            name="npb-load",
            scenario="npb_improvement",
            machine="tigerton",
            app=AppSpec(bench="cg.B", n_threads=8, total_compute_us=150_000),
            balancer="load",
            cores=6,
        ),
        ScenarioSmoke(
            name="npb-numa",
            scenario="npb_improvement",
            machine="barcelona",
            app=AppSpec(bench="sp.A", n_threads=10, total_compute_us=150_000),
            balancer="speed",
            cores=8,
        ),
        ScenarioSmoke(
            name="cpu-hog",
            scenario="cpu_hog_series",
            machine="tigerton",
            app=AppSpec(bench="ep.C", n_threads=6, wait="sleep", total_compute_us=300_000),
            balancer="speed",
            cores=4,
            corunners=("cpu-hog",),
        ),
        ScenarioSmoke(
            name="make-share",
            scenario="make_share_series",
            machine="tigerton",
            app=AppSpec(bench="sp.A", n_threads=6, total_compute_us=150_000),
            balancer="speed",
            cores=8,
            corunners=("make-j",),
        ),
    ]
    return {s.name: s for s in smokes}
