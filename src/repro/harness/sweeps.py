"""Generic parameter sweeps over the experiment harness.

``sweep`` runs a cartesian grid of named parameters through a runner
and returns a :class:`SweepResult` that can slice series out of the
grid -- the shape every figure in the paper has (one varying x, one
line per configuration).  The figure benches hand-roll their loops for
readability; this module is the general-purpose version for users
designing new studies, e.g.::

    result = sweep(
        dict(cores=[4, 8, 12, 16], balancer=["speed", "load"]),
        lambda cores, balancer: run_app(
            presets.tigerton, my_app, balancer=balancer, cores=cores
        ).speedup,
    )
    xs, ys = result.series("cores", balancer="speed")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """Grid of outcomes keyed by parameter assignments."""

    param_names: tuple[str, ...]
    points: dict[tuple, Any]

    def get(self, **params) -> Any:
        """The outcome at one full parameter assignment."""
        key = tuple(params[name] for name in self.param_names)
        return self.points[key]

    def series(self, x_name: str, **fixed) -> tuple[list, list]:
        """Extract (xs, ys) varying ``x_name`` with the rest fixed.

        ``fixed`` must pin every other parameter; raises KeyError when a
        named parameter does not exist and ValueError when the fixing is
        incomplete.
        """
        if x_name not in self.param_names:
            raise KeyError(f"unknown parameter {x_name!r}")
        others = [n for n in self.param_names if n != x_name]
        missing = [n for n in others if n not in fixed]
        if missing:
            raise ValueError(f"series() needs values for {missing}")
        xs, ys = [], []
        for key, value in self.points.items():
            assign = dict(zip(self.param_names, key))
            if all(assign[n] == fixed[n] for n in others):
                xs.append(assign[x_name])
                ys.append(value)
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        return [xs[i] for i in order], [ys[i] for i in order]

    def values(self) -> list:
        return list(self.points.values())

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    grid: Mapping[str, Sequence],
    runner: Callable[..., Any],
    progress: Callable[[dict, Any], None] | None = None,
    workers: int | None = 1,
) -> SweepResult:
    """Run ``runner(**assignment)`` over the cartesian grid.

    ``progress`` (optional) is called after each point with the
    assignment dict and the outcome -- handy for long sweeps.

    ``workers`` fans the grid points out over worker processes via
    :mod:`repro.harness.parallel` (``None`` = one per CPU).  The grid
    is reassembled -- and ``progress`` invoked -- in deterministic
    cartesian-product order regardless of completion order, so
    ``SweepResult`` is identical to a serial sweep.  The runner, every
    assignment and every outcome must pickle with ``workers > 1``
    (module-level runner functions do; lambdas and closures do not).
    """
    if not grid:
        raise ValueError("empty parameter grid")
    names = tuple(grid.keys())
    combos = list(itertools.product(*(grid[n] for n in names)))
    points: dict[tuple, Any] = {}
    if workers == 1:
        for combo in combos:
            assignment = dict(zip(names, combo))
            outcome = runner(**assignment)
            points[combo] = outcome
            if progress is not None:
                progress(assignment, outcome)
    else:
        # imported here: parallel builds on the harness, not vice versa
        from repro.harness.parallel import starmap_kwargs

        assignments = [dict(zip(names, combo)) for combo in combos]
        outcomes = starmap_kwargs(runner, assignments, workers=workers)
        for combo, assignment, outcome in zip(combos, assignments, outcomes):
            points[combo] = outcome
            if progress is not None:
                progress(assignment, outcome)
    return SweepResult(param_names=names, points=points)
