"""Generic parameter sweeps over the experiment harness.

``sweep`` runs a cartesian grid of named parameters through a runner
and returns a :class:`SweepResult` that can slice series out of the
grid -- the shape every figure in the paper has (one varying x, one
line per configuration).  The figure benches hand-roll their loops for
readability; this module is the general-purpose version for users
designing new studies, e.g.::

    result = sweep(
        dict(cores=[4, 8, 12, 16], balancer=["speed", "load"]),
        lambda cores, balancer: run_app(
            presets.tigerton, my_app, balancer=balancer, cores=cores
        ).speedup,
    )
    xs, ys = result.series("cores", balancer="speed")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """Grid of outcomes keyed by parameter assignments."""

    param_names: tuple[str, ...]
    points: dict[tuple, Any]

    def get(self, **params) -> Any:
        """The outcome at one full parameter assignment."""
        key = tuple(params[name] for name in self.param_names)
        return self.points[key]

    def series(self, x_name: str, **fixed) -> tuple[list, list]:
        """Extract (xs, ys) varying ``x_name`` with the rest fixed.

        ``fixed`` must pin every other parameter, exactly: raises
        KeyError when a named parameter does not exist (including
        unrecognized ``fixed`` keys, which would otherwise be silently
        ignored -- a typo would select nothing or everything) and
        ValueError when the fixing is incomplete or pins ``x_name``
        itself.
        """
        if x_name not in self.param_names:
            raise KeyError(f"unknown parameter {x_name!r}")
        unknown = sorted(n for n in fixed if n not in self.param_names)
        if unknown:
            raise KeyError(
                f"unknown fixed parameter(s) {unknown}; this sweep has "
                f"{list(self.param_names)}"
            )
        if x_name in fixed:
            raise ValueError(
                f"cannot fix the varying parameter {x_name!r}; pass it as "
                "x_name or fix it, not both"
            )
        others = [n for n in self.param_names if n != x_name]
        missing = [n for n in others if n not in fixed]
        if missing:
            raise ValueError(f"series() needs values for {missing}")
        xs, ys = [], []
        for key, value in self.points.items():
            assign = dict(zip(self.param_names, key))
            if all(assign[n] == fixed[n] for n in others):
                xs.append(assign[x_name])
                ys.append(value)
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        return [xs[i] for i in order], [ys[i] for i in order]

    def values(self) -> list:
        return list(self.points.values())

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    grid: Mapping[str, Sequence],
    runner: Callable[..., Any],
    progress: Callable[[dict, Any], None] | None = None,
    workers: int | None = 1,
    store=None,
) -> SweepResult:
    """Run ``runner(**assignment)`` over the cartesian grid.

    ``progress`` (optional) is called after each point with the
    assignment dict and the outcome -- handy for long sweeps.

    ``workers`` fans the grid points out over worker processes via
    :mod:`repro.harness.parallel` (``None`` = one per CPU).  The grid
    is reassembled -- and ``progress`` invoked -- in deterministic
    cartesian-product order regardless of completion order, so
    ``SweepResult`` is identical to a serial sweep.  The runner, every
    assignment and every outcome must pickle with ``workers > 1``
    (module-level runner functions do; lambdas and closures do not).

    ``store`` (a directory path or :class:`~repro.store.ResultStore`)
    makes the sweep *incremental*: each cell is keyed by the runner's
    code identity plus its full assignment
    (:func:`repro.store.sweep_cell_key`), cells already in the store
    are served from it without running anything, and fresh outcomes
    are filed back.  Re-running an identical sweep therefore executes
    zero cells; changing one grid value executes exactly the new
    cells.  The runner must be a module-level function and every
    outcome either a result object or a plain JSON-able value.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    names = tuple(grid.keys())
    combos = list(itertools.product(*(grid[n] for n in names)))
    assignments = [dict(zip(names, combo)) for combo in combos]
    points: dict[tuple, Any] = {}
    if store is not None:
        outcomes = _cached_outcomes(runner, assignments, store, workers)
        for combo, assignment, outcome in zip(combos, assignments, outcomes):
            points[combo] = outcome
            if progress is not None:
                progress(assignment, outcome)
    elif workers == 1:
        for combo, assignment in zip(combos, assignments):
            outcome = runner(**assignment)
            points[combo] = outcome
            if progress is not None:
                progress(assignment, outcome)
    else:
        # imported here: parallel builds on the harness, not vice versa
        from repro.harness.parallel import starmap_kwargs

        outcomes = starmap_kwargs(runner, assignments, workers=workers)
        for combo, assignment, outcome in zip(combos, assignments, outcomes):
            points[combo] = outcome
            if progress is not None:
                progress(assignment, outcome)
    return SweepResult(param_names=names, points=points)


def _cached_outcomes(
    runner: Callable[..., Any],
    assignments: list[dict],
    store,
    workers: int | None,
) -> list:
    """Serve each assignment from the store; run and file the misses."""
    # imported here: the store builds on the harness, not vice versa
    from repro.store import (
        ResultStore,
        StoreIntegrityError,
        digest_of,
        sweep_cell_key,
    )

    if isinstance(store, str):
        store = ResultStore(store)
    keys = [sweep_cell_key(runner, a) for a in assignments]
    digests = [digest_of(k) for k in keys]
    outcomes: list[Any] = [None] * len(assignments)
    miss: list[int] = []
    for i, digest in enumerate(digests):
        entry = None
        try:
            entry = store.get(digest)
        except StoreIntegrityError:
            # detected corruption: drop the entry and recompute the cell
            store.delete(digest)
        if entry is None:
            miss.append(i)
        else:
            outcomes[i] = entry.payload
    if miss:
        from repro.harness.parallel import starmap_kwargs

        fresh = starmap_kwargs(
            runner, [assignments[i] for i in miss], workers=workers
        )
        for i, outcome in zip(miss, fresh):
            store.put(keys[i], outcome)
            outcomes[i] = outcome
    return outcomes
