"""Memory hierarchy effects: migration cost and NUMA placement.

The paper's argument for cheap migrations (Section 4) cites Li et al.:
cache-locality loss costs "from microseconds (in cache footprint) to 2
milliseconds (larger than cache footprint) on contemporary UMA Intel
processors", against a ~100 ms scheduling quantum.  NUMA migrations are
different: they strand a task's memory on the old node, a *persistent*
cost, which is why ``speedbalancer`` blocks them outright.

:class:`repro.mem.cache_model.CacheModel` turns those observations into
a priced model used by every balancer in the simulator.
"""

from repro.mem.cache_model import CacheModel

__all__ = ["CacheModel"]
