"""Pricing migrations: cache refill debt and NUMA residence.

Model
-----
When a task migrates it loses the cache state it built on the old core
and must refill the destination's caches.  We charge this as
*migration debt*: wall-microseconds of execution that produce no
progress, paid on the task's next dispatches.  The debt is

``min(footprint, destination_llc_size) / fill_bandwidth``

clamped to ``[min_cost_us, max_cost_us]``; moves between cores that
share their largest cache (SMT siblings, cache buddies) cost only
``shared_cache_cost_us``.  With the defaults this spans exactly the
paper's quoted range: an EP thread (tiny footprint) pays ~5 us, a NAS
ft.B thread (RSS far beyond the 4 MB L2) pays the 2 ms cap.

NUMA residence is handled separately (and persistently): a task's
memory lives on its first-touch node (``Task.home_node``); executing on
any other node divides its work rate by
``Machine.numa_remote_slowdown``.  A later migration back home restores
full speed.  This is why blocking NUMA migrations (the speed balancer's
default, Section 5.2) is profitable even though it reduces balancing
freedom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.machine import DomainLevel, Machine

__all__ = ["CacheModel"]


@dataclass
class CacheModel:
    """Tunable migration-cost model.

    Attributes
    ----------
    fill_bandwidth_bytes_per_us:
        Cache refill bandwidth.  2 GB/s = 2000 bytes/us refills a 4 MB
        L2 in ~2 ms, reproducing Li et al.'s upper bound.
    min_cost_us / max_cost_us:
        Clamp on the refill debt ("several us" for EP ... "2 ms").
    smt_cost_us:
        Cost of moving between SMT hardware contexts of one core
        (the kernel treats these moves as free of cache penalty).
    shared_cache_cost_us:
        Cost when source and destination share their largest cache
        (only the private levels refill).
    first_touch_window_us:
        NUMA first-touch modeling: a task migrated before it has
        executed this much *compute* re-homes its memory on the new
        node (the bulk of its allocations still lie ahead -- real codes
        initialize their data after the launcher/speedbalancer has
        pinned them).  Migration after the window strands memory on the
        old node, the persistent cost NUMA-blocking avoids.
    """

    fill_bandwidth_bytes_per_us: float = 2000.0
    min_cost_us: float = 5.0
    max_cost_us: float = 2000.0
    smt_cost_us: float = 1.0
    shared_cache_cost_us: float = 30.0
    first_touch_window_us: float = 50_000.0

    def migration_cost_us(
        self,
        machine: Machine,
        footprint_bytes: int,
        src: Optional[int],
        dst: int,
    ) -> float:
        """Debt (non-productive wall us) for moving a task src -> dst.

        ``src=None`` means initial placement: no cache state to lose.
        """
        if src is None or src == dst:
            return 0.0
        level = machine.domain_level_between(src, dst)
        if level == DomainLevel.SMT:
            return self.smt_cost_us
        if machine.shared_cache(src, dst) is not None:
            return self.shared_cache_cost_us
        llc = machine.largest_cache_of(dst)
        llc_bytes = llc.size_bytes if llc is not None else 0
        moved = min(footprint_bytes, llc_bytes) if llc_bytes else footprint_bytes
        cost = moved / self.fill_bandwidth_bytes_per_us
        return float(min(self.max_cost_us, max(self.min_cost_us, cost)))
