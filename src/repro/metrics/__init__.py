"""Result containers and statistics for runs and experiments.

The paper's evaluation reports three kinds of numbers, all produced
here:

* **speedup** relative to ideal/serial execution (Figures 3 and 5);
* **improvement ratios** between balancers, both of averages and of
  worst cases over 10 runs (Figure 4, Table 3);
* **variation**, "the ratio of the maximum to minimum run times across
  10 runs" (Table 3) -- the paper's headline stability claim is that
  this drops from up to ~100% under Linux load balancing to under ~5%
  with speed balancing.
"""

from repro.metrics.results import AppRunResult, RepeatedResult
from repro.metrics.trace import TraceRecorder
from repro.metrics import export, fairness, stats, trace

__all__ = [
    "AppRunResult",
    "RepeatedResult",
    "TraceRecorder",
    "export",
    "fairness",
    "stats",
    "trace",
]
