"""Result/trace export: dicts, JSON and CSV.

Experiments that take minutes to simulate deserve durable outputs:
``result_to_dict`` / ``results_to_json`` serialize
:class:`~repro.metrics.results.AppRunResult` (and repeats) including
the derived metrics; ``trace_to_csv`` dumps a
:class:`~repro.metrics.trace.TraceRecorder` for external plotting.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Union

from repro.metrics.results import AppRunResult, RepeatedResult
from repro.metrics.trace import TraceRecorder

__all__ = ["result_to_dict", "results_to_json", "trace_to_csv"]


def result_to_dict(result: Union[AppRunResult, RepeatedResult]) -> dict:
    """Serialize a run (or repeat aggregate) including derived metrics."""
    if isinstance(result, RepeatedResult):
        return {
            "type": "repeated",
            "runs": [result_to_dict(r) for r in result.runs],
            "mean_time_us": result.mean_time_us,
            "worst_time_us": result.worst_time_us,
            "best_time_us": result.best_time_us,
            "variation_pct": result.variation_pct,
            "mean_speedup": result.mean_speedup,
            "mean_migrations": result.mean_migrations,
        }
    return {
        "type": "run",
        "app_name": result.app_name,
        "balancer": result.balancer,
        "n_cores": result.n_cores,
        "n_threads": result.n_threads,
        "seed": result.seed,
        "elapsed_us": result.elapsed_us,
        "total_work_us": result.total_work_us,
        "migrations": result.migrations,
        "system_migrations": result.system_migrations,
        "speedup": result.speedup,
        "spin_fraction": result.spin_fraction,
        "finish_spread": result.finish_spread,
        "progress_balance": result.progress_balance,
        "thread_exec_us": list(result.thread_exec_us),
        "thread_compute_us": list(result.thread_compute_us),
        "thread_finish_us": list(result.thread_finish_us),
    }


def results_to_json(
    results: Iterable[Union[AppRunResult, RepeatedResult]], indent: int = 2
) -> str:
    """JSON document for a collection of results."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def trace_to_csv(trace: TraceRecorder) -> str:
    """CSV with one row per execution segment."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["tid", "task", "core", "start_us", "end_us", "kind"])
    for s in trace.segments:
        writer.writerow([s.tid, s.task_name, s.core, s.start, s.end, s.kind])
    return buf.getvalue()
