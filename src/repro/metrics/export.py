"""Result/trace export and import: dicts, JSON and CSV.

Experiments that take minutes to simulate deserve durable outputs:
``result_to_dict`` / ``results_to_json`` serialize
:class:`~repro.metrics.results.AppRunResult` (and repeats) including
the derived metrics; ``result_from_dict`` / ``results_from_json`` are
the exact inverses (derived metrics are recomputed, not trusted), so a
result can round-trip through disk -- the content-addressed store
(:mod:`repro.store`) is built on that guarantee.  ``trace_to_dict`` /
``trace_from_dict`` do the same for a full
:class:`~repro.metrics.trace.TraceRecorder` history, and
``trace_to_csv`` dumps one for external plotting.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Union

from repro.metrics.results import AppRunResult, RepeatedResult
from repro.metrics.trace import MigrationEvent, Segment, TraceRecorder

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "results_to_json",
    "results_from_json",
    "trace_to_dict",
    "trace_from_dict",
    "trace_to_csv",
]


def result_to_dict(result: Union[AppRunResult, RepeatedResult]) -> dict:
    """Serialize a run (or repeat aggregate) including derived metrics."""
    if isinstance(result, RepeatedResult):
        return {
            "type": "repeated",
            "runs": [result_to_dict(r) for r in result.runs],
            "mean_time_us": result.mean_time_us,
            "worst_time_us": result.worst_time_us,
            "best_time_us": result.best_time_us,
            "variation_pct": result.variation_pct,
            "mean_speedup": result.mean_speedup,
            "mean_migrations": result.mean_migrations,
        }
    return {
        "type": "run",
        "app_name": result.app_name,
        "balancer": result.balancer,
        "n_cores": result.n_cores,
        "n_threads": result.n_threads,
        "seed": result.seed,
        "elapsed_us": result.elapsed_us,
        "total_work_us": result.total_work_us,
        "migrations": result.migrations,
        "system_migrations": result.system_migrations,
        "speedup": result.speedup,
        "spin_fraction": result.spin_fraction,
        "finish_spread": result.finish_spread,
        "progress_balance": result.progress_balance,
        "thread_exec_us": list(result.thread_exec_us),
        "thread_compute_us": list(result.thread_compute_us),
        "thread_finish_us": list(result.thread_finish_us),
    }


def result_from_dict(d: dict) -> Union[AppRunResult, RepeatedResult]:
    """Rebuild a result from its :func:`result_to_dict` form.

    Only measured fields are read back; derived metrics (``speedup``,
    ``variation_pct``, ...) are properties recomputed from those
    fields, so a loaded result is *identical* to the original --
    ``loaded.canonical_json() == original.canonical_json()`` byte for
    byte.  Unknown keys are ignored (forward compatibility); missing
    measured fields raise ``KeyError``.
    """
    kind = d.get("type", "run")
    if kind == "repeated":
        return RepeatedResult(runs=[_run_from_dict(r) for r in d["runs"]])
    if kind == "run":
        return _run_from_dict(d)
    raise ValueError(f"unknown result type {kind!r}; expected 'run' or 'repeated'")


def _run_from_dict(d: dict) -> AppRunResult:
    return AppRunResult(
        app_name=d["app_name"],
        balancer=d["balancer"],
        n_cores=d["n_cores"],
        n_threads=d["n_threads"],
        seed=d["seed"],
        elapsed_us=d["elapsed_us"],
        total_work_us=d["total_work_us"],
        migrations=d["migrations"],
        thread_exec_us=list(d["thread_exec_us"]),
        thread_compute_us=list(d["thread_compute_us"]),
        thread_finish_us=list(d["thread_finish_us"]),
        system_migrations=d.get("system_migrations", 0),
    )


def results_to_json(
    results: Iterable[Union[AppRunResult, RepeatedResult]], indent: int = 2
) -> str:
    """JSON document for a collection of results."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_from_json(text: str) -> list[Union[AppRunResult, RepeatedResult]]:
    """Parse a :func:`results_to_json` document back into result objects."""
    doc = json.loads(text)
    if not isinstance(doc, list):
        raise ValueError(
            f"expected a JSON array of results, got {type(doc).__name__}"
        )
    return [result_from_dict(d) for d in doc]


def trace_to_dict(trace: TraceRecorder) -> dict:
    """Serialize a complete recorded history, truncation counters included."""
    return {
        "limit": trace.limit,
        "dropped": trace.dropped,
        "migrations_dropped": trace.migrations_dropped,
        "segments": [
            [s.tid, s.task_name, s.core, s.start, s.end, s.kind]
            for s in trace.segments
        ],
        "migrations": [
            [m.time, m.tid, m.task_name, m.src, m.dst, int(m.forced), m.reason]
            for m in trace.migrations
        ],
    }


def trace_from_dict(d: dict) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from its :func:`trace_to_dict` form.

    Records are restored verbatim (bypassing the recorder's own cap
    logic) so the loaded trace -- including ``dropped`` counters and
    therefore :attr:`~repro.metrics.trace.TraceRecorder.truncated` --
    is indistinguishable from the live one:
    :func:`repro.analysis.sanitizer.trace_digest` of the two is equal.
    """
    trace = TraceRecorder(limit=d["limit"])
    trace.segments = [
        Segment(tid, name, core, start, end, kind)
        for tid, name, core, start, end, kind in d["segments"]
    ]
    trace.migrations = [
        MigrationEvent(time, tid, name, src, dst, bool(forced), reason)
        for time, tid, name, src, dst, forced, reason in d["migrations"]
    ]
    trace.dropped = d["dropped"]
    trace.migrations_dropped = d["migrations_dropped"]
    return trace


def trace_to_csv(trace: TraceRecorder) -> str:
    """CSV with one row per execution segment."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["tid", "task", "core", "start_us", "end_us", "kind"])
    for s in trace.segments:
        writer.writerow([s.tid, s.task_name, s.core, s.start, s.end, s.kind])
    return buf.getvalue()
