"""Fairness measures over thread progress.

The paper's core requirement is "that all tasks within the application
make equal progress".  Beyond min/max, the standard scalar for this is
**Jain's fairness index**,

    J(x) = (sum x_i)^2 / (n * sum x_i^2),

which is 1.0 for perfectly equal allocations and 1/n when one thread
gets everything.  ``rotation_fairness`` applies it to a run's
per-thread compute over a time window (via the trace), which is how
the test suite quantifies that speed balancing's rotation actually
equalizes progress where queue-length balancing does not.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics.trace import TraceRecorder, task_share

__all__ = ["jain_index", "rotation_fairness"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index in [1/n, 1]."""
    if not values:
        raise ValueError("jain_index of empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0  # nobody got anything: trivially equal
    sq = sum(v * v for v in values)
    return total * total / (len(values) * sq)


def rotation_fairness(
    trace: TraceRecorder,
    tids: Sequence[int],
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> float:
    """Jain index of the threads' productive CPU shares over a window."""
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    shares = [task_share(trace, tid, start, end, kind="run") for tid in tids]
    return jain_index(shares)
