"""Run result containers.

``AppRunResult`` captures one application execution on one simulated
system; ``RepeatedResult`` aggregates the 10-seed repeats the paper
uses everywhere ("Each experiment has been repeated ten times or
more").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.metrics import stats

__all__ = ["AppRunResult", "RepeatedResult"]


@dataclass
class AppRunResult:
    """Measurements from one app in one run."""

    app_name: str
    balancer: str
    n_cores: int
    n_threads: int
    seed: int
    elapsed_us: int
    total_work_us: int
    migrations: int
    #: per-thread cumulative execution times (occupancy)
    thread_exec_us: list[int] = field(default_factory=list)
    #: per-thread productive (non-spin) execution times
    thread_compute_us: list[int] = field(default_factory=list)
    #: per-thread completion times (absolute simulation time)
    thread_finish_us: list[int] = field(default_factory=list)
    #: total migrations in the whole system during the run
    system_migrations: int = 0

    @property
    def speedup(self) -> float:
        """Speedup over serial execution of the same total work.

        With N threads on N cores and no interference this approaches
        N -- the paper's "One-per-core" ideal lines in Figures 3/5.
        """
        return self.total_work_us / self.elapsed_us

    @property
    def spin_fraction(self) -> float:
        """Fraction of occupancy burned in synchronization waits."""
        total = sum(self.thread_exec_us)
        if total == 0:
            return 0.0
        return 1.0 - sum(self.thread_compute_us) / total

    @property
    def finish_spread(self) -> float:
        """(last finish - first finish) / elapsed: tail imbalance.

        Near 0 when all threads cross the line together (SPEED's goal);
        large when early finishers idle while stragglers grind (the
        LOAD-with-yield-barriers failure mode, where half the threads
        are done at half time).
        """
        if len(self.thread_finish_us) < 2 or self.elapsed_us == 0:
            return 0.0
        return (max(self.thread_finish_us) - min(self.thread_finish_us)) / self.elapsed_us

    @property
    def progress_balance(self) -> float:
        """min/max of per-thread productive time (1.0 = equal progress).

        SPMD applications need "all tasks within the application [to]
        make equal progress" -- this is the direct measurement.
        """
        if not self.thread_compute_us or max(self.thread_compute_us) == 0:
            return 1.0
        return min(self.thread_compute_us) / max(self.thread_compute_us)

    def as_dict(self) -> dict:
        """All measured fields as a plain JSON-able dict.

        Results are plain dataclasses of ints/strs/lists, so they both
        pickle (crossing process boundaries in
        :mod:`repro.harness.parallel`) and serialize canonically --
        ``json.dumps(r.as_dict(), sort_keys=True)`` is the byte-exact
        form the serial-vs-parallel determinism tests compare.
        """
        return asdict(self)

    def canonical_json(self) -> str:
        """The byte-exact serialized form of this result.

        Sorted keys, no whitespace: two results serialize identically
        iff every measured field is identical.  This is the form the
        serial-vs-parallel determinism tests compare and the unit the
        schedule sanitizer's run digests are built from
        (:func:`repro.analysis.sanitizer.run_digest`).
        """
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class RepeatedResult:
    """The same configuration across seeds (the paper's 10 runs)."""

    runs: list[AppRunResult]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("RepeatedResult needs at least one run")

    @property
    def times_us(self) -> list[int]:
        return [r.elapsed_us for r in self.runs]

    @property
    def mean_time_us(self) -> float:
        return stats.mean([float(t) for t in self.times_us])

    @property
    def worst_time_us(self) -> int:
        return max(self.times_us)

    @property
    def best_time_us(self) -> int:
        return min(self.times_us)

    @property
    def variation_pct(self) -> float:
        """max/min run-time ratio minus one, in percent (Table 3)."""
        return stats.variation_pct([float(t) for t in self.times_us])

    @property
    def mean_speedup(self) -> float:
        return stats.mean([r.speedup for r in self.runs])

    @property
    def mean_migrations(self) -> float:
        return stats.mean([float(r.migrations) for r in self.runs])

    # -- comparisons (Figure 4 / Table 3 style) -------------------------
    def improvement_avg_pct(self, baseline: "RepeatedResult") -> float:
        """Percent improvement of mean run time over ``baseline``.

        Positive when this configuration is faster on average.
        """
        return (baseline.mean_time_us / self.mean_time_us - 1.0) * 100.0

    def improvement_worst_pct(self, baseline: "RepeatedResult") -> float:
        """Percent improvement of the worst run over baseline's worst."""
        return (baseline.worst_time_us / self.worst_time_us - 1.0) * 100.0
