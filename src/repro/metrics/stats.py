"""Small statistics helpers shared by results and the harness."""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "mean",
    "geomean",
    "variation_pct",
    "ratio_of_means",
    "ratio_of_worsts",
    "coefficient_of_variation",
]


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def geomean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("geomean of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def variation_pct(run_times: Sequence[float]) -> float:
    """The paper's variation metric: (max/min - 1) * 100.

    Table 3's caption: "The percentage variation is the ratio of the
    maximum to minimum run times across 10 runs."
    """
    if not run_times:
        raise ValueError("variation of empty sequence")
    lo, hi = min(run_times), max(run_times)
    if lo <= 0:
        raise ValueError("run times must be positive")
    return (hi / lo - 1.0) * 100.0


def ratio_of_means(baseline: Sequence[float], candidate: Sequence[float]) -> float:
    """baseline_mean / candidate_mean (run times: >1 means candidate wins)."""
    return mean(baseline) / mean(candidate)


def ratio_of_worsts(baseline: Sequence[float], candidate: Sequence[float]) -> float:
    """Worst-case ratio: baseline_max / candidate_max.

    Figure 4 reports ``SB_WORST / LB_WORST`` style comparisons (there
    as candidate/baseline of the inverse metric); with run *times*,
    a value > 1 means the candidate's worst run beats the baseline's.
    """
    return max(baseline) / max(candidate)


def coefficient_of_variation(xs: Sequence[float]) -> float:
    """stdev/mean, a scale-free spread measure used in the test suite."""
    m = mean(xs)
    if m == 0:
        raise ValueError("CV undefined for zero mean")
    var = sum((x - m) ** 2 for x in xs) / len(xs)
    return math.sqrt(var) / m
