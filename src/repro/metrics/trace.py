"""Execution tracing: who ran where, when, doing what.

Enable with ``System(..., trace=True)`` (or attach a
:class:`TraceRecorder` later).  Every charged execution interval is
recorded as a :class:`Segment`; the analysis helpers answer the
questions the paper's figures are built from -- per-core utilization,
per-thread CPU share over time windows (the speed metric itself), and
an ASCII Gantt chart that makes rotation visible:

>>> print(ascii_gantt(system.trace, width=60))   # doctest: +SKIP
core  0 AAAAAAAAaaaaBBBB....
core  1 BBBBBBBBBBAAAAAA....

Capital letters mark compute, lowercase synchronization waiting, ``.``
idle time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Segment", "TraceRecorder", "core_utilization", "task_share", "ascii_gantt"]


@dataclass(frozen=True)
class Segment:
    """One charged execution interval."""

    tid: int
    task_name: str
    core: int
    start: int
    end: int
    #: "run" for productive compute, "wait" for spin/yield burn
    kind: str

    @property
    def duration(self) -> int:
        return self.end - self.start


class TraceRecorder:
    """Collects execution segments (bounded; oldest dropped beyond cap)."""

    def __init__(self, limit: int = 2_000_000):
        self.segments: list[Segment] = []
        self.limit = limit
        self.dropped = 0

    def record(self, tid: int, name: str, core: int, start: int, end: int, kind: str) -> None:
        if end <= start:
            return
        if len(self.segments) >= self.limit:
            self.dropped += 1
            return
        self.segments.append(Segment(tid, name, core, start, end, kind))

    @property
    def span(self) -> tuple[int, int]:
        """(first start, last end) over all segments."""
        if not self.segments:
            return (0, 0)
        return (
            min(s.start for s in self.segments),
            max(s.end for s in self.segments),
        )


def core_utilization(
    trace: TraceRecorder,
    n_cores: int,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> list[float]:
    """Busy fraction per core over [start, end)."""
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    if end <= start:
        return [0.0] * n_cores
    busy = [0] * n_cores
    for s in trace.segments:
        lo, hi = max(s.start, start), min(s.end, end)
        if hi > lo:
            busy[s.core] += hi - lo
    return [b / (end - start) for b in busy]


def task_share(
    trace: TraceRecorder,
    tid: int,
    start: int,
    end: int,
    kind: Optional[str] = None,
) -> float:
    """CPU share of one task over a window -- the speed metric, post hoc."""
    if end <= start:
        raise ValueError("empty window")
    got = 0
    for s in trace.segments:
        if s.tid != tid:
            continue
        if kind is not None and s.kind != kind:
            continue
        lo, hi = max(s.start, start), min(s.end, end)
        if hi > lo:
            got += hi - lo
    return got / (end - start)


def ascii_gantt(
    trace: TraceRecorder,
    n_cores: int,
    width: int = 80,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> str:
    """Render per-core timelines; letters identify tasks (A..Z cycling).

    Capitals = compute, lowercase = synchronization wait, ``.`` = idle.
    When several segments land in one character cell, the longest wins.
    """
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    if end <= start:
        return "(empty trace)"
    cell = (end - start) / width
    # stable task -> letter mapping in first-seen order
    letters: dict[int, str] = {}
    for s in trace.segments:
        if s.tid not in letters:
            letters[s.tid] = chr(ord("A") + len(letters) % 26)
    grid = [[(".", 0.0)] * width for _ in range(n_cores)]
    for s in trace.segments:
        lo, hi = max(s.start, start), min(s.end, end)
        if hi <= lo:
            continue
        c0 = int((lo - start) / cell)
        c1 = min(width - 1, int((hi - start - 1) / cell))
        ch = letters[s.tid]
        if s.kind == "wait":
            ch = ch.lower()
        for c in range(c0, c1 + 1):
            seg_cover = min(hi, start + (c + 1) * cell) - max(lo, start + c * cell)
            if seg_cover > grid[s.core][c][1]:
                grid[s.core][c] = (ch, seg_cover)
    lines = [
        f"core {cid:2d} " + "".join(ch for ch, _ in row)
        for cid, row in enumerate(grid)
    ]
    return "\n".join(lines)
