"""Execution tracing: who ran where, when, doing what.

Enable with ``System(..., trace=True)`` (or attach a
:class:`TraceRecorder` later).  Every charged execution interval is
recorded as a :class:`Segment` and every migration as a
:class:`MigrationEvent`; the analysis helpers answer the questions the
paper's figures are built from -- per-core utilization, per-thread CPU
share over time windows (the speed metric itself), and an ASCII Gantt
chart that makes rotation visible:

>>> print(ascii_gantt(system.trace, n_cores=2, width=60))   # doctest: +SKIP
core  0 AAAAAAAAaaaaBBBB....
core  1 BBBBBBBBBBAAAAAA....

Capital letters mark compute, lowercase synchronization waiting, ``.``
idle time.

Storage layout
--------------
The recorder is *columnar*: segments and migrations live in parallel
``array``-backed columns (64-bit timestamps/tids, 32-bit ids) with
task names, kinds and reasons interned into small string tables.  The
hot path -- one :meth:`TraceRecorder.record` per charged interval --
appends six scalars and allocates nothing; :class:`Segment` /
:class:`MigrationEvent` dataclasses are materialized lazily when the
``segments`` / ``migrations`` sequence views are indexed.  The
analysis helpers in this module and the sanitizer's digest read the
columns directly.

Bounds
------
The recorder is bounded: past ``limit`` segments it drops new segment
records and counts them in :attr:`TraceRecorder.dropped`; migrations
have their own cap, ``migration_limit`` (defaulting to ``limit``),
counted in :attr:`TraceRecorder.migrations_dropped`.  A trace with
*either* counter non-zero is truncated -- not a representative sample;
everything of that record kind after its cut-off is missing -- so the
analysis helpers refuse to compute over one (raising
:class:`TraceTruncatedError`) unless explicitly told otherwise, and the
schedule sanitizer (:mod:`repro.analysis.sanitizer`) reports truncation
as a finding of its own.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = [
    "Segment",
    "MigrationEvent",
    "TraceRecorder",
    "TraceTruncatedError",
    "core_utilization",
    "task_share",
    "ascii_gantt",
]


class TraceTruncatedError(ValueError):
    """An analysis was asked to treat a truncated trace as complete.

    Raised by :func:`core_utilization` / :func:`task_share` /
    :func:`ascii_gantt` when the recorder dropped records
    (``trace.dropped > 0`` or ``trace.migrations_dropped > 0``):
    utilization and share values computed from a prefix of the run
    would silently read as if cores went idle and tasks stopped at the
    cut-off.  Pass ``allow_truncated=True`` to compute over the
    recorded prefix anyway.
    """


@dataclass(frozen=True)
class Segment:
    """One charged execution interval."""

    tid: int
    task_name: str
    core: int
    start: int
    end: int
    #: "run" for productive compute, "wait" for spin/yield burn
    kind: str

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class MigrationEvent:
    """One recorded migration (the trace-level mirror of
    :class:`~repro.system.MigrationRecord`, kept independent so the
    trace module has no dependency on the system layer)."""

    time: int
    tid: int
    task_name: str
    src: Optional[int]
    dst: int
    forced: bool
    reason: str


class _LazyView(Sequence):
    """Columnar records viewed as a sequence of materialized objects.

    Supports everything the old plain-list attributes did -- ``len``,
    indexing (negative and slices), iteration, ``==`` against lists --
    while the data stays in the recorder's columns; each access builds
    the dataclass on the fly.
    """

    __slots__ = ("_rec",)

    def __init__(self, rec: "TraceRecorder") -> None:
        self._rec = rec

    def _materialize(self, i: int):
        raise NotImplementedError

    def _count(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        return self._count()

    def __getitem__(self, i):
        n = self._count()
        if isinstance(i, slice):
            return [self._materialize(j) for j in range(*i.indices(n))]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("trace view index out of range")
        return self._materialize(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, _LazyView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return repr(list(self))


class _SegmentsView(_LazyView):
    __slots__ = ()

    def _count(self) -> int:
        return len(self._rec._s_tid)

    def _materialize(self, i: int) -> Segment:
        r = self._rec
        return Segment(
            r._s_tid[i],
            r._strings[r._s_name[i]],
            r._s_core[i],
            r._s_start[i],
            r._s_end[i],
            r._strings[r._s_kind[i]],
        )


class _MigrationsView(_LazyView):
    __slots__ = ()

    def _count(self) -> int:
        return len(self._rec._m_time)

    def _materialize(self, i: int) -> MigrationEvent:
        r = self._rec
        src = r._m_src[i]
        return MigrationEvent(
            r._m_time[i],
            r._m_tid[i],
            r._strings[r._m_name[i]],
            None if src < 0 else src,
            r._m_dst[i],
            bool(r._m_forced[i]),
            r._strings[r._m_reason[i]],
        )


class TraceRecorder:
    """Collects execution segments and migration events (bounded).

    Past ``limit`` segment records new segments are dropped and counted
    in :attr:`dropped`; past ``migration_limit`` migration records
    (default: ``limit``) new migrations are dropped and counted in
    :attr:`migrations_dropped`.  A recorder with either counter
    non-zero is :attr:`truncated` and the analysis helpers in this
    module refuse to treat it as a complete history.

    Storage is columnar (see the module docstring): ``segments`` and
    ``migrations`` are lazy sequence views over parallel arrays.
    Assigning a list to either (as the export round-trip loaders do)
    reloads the columns from it.
    """

    def __init__(self, limit: int = 2_000_000, migration_limit: Optional[int] = None):
        self.limit = limit
        self.migration_limit = limit if migration_limit is None else migration_limit
        self.dropped = 0
        self.migrations_dropped = 0
        #: interned string table shared by names, kinds and reasons
        self._strings: list[str] = []
        self._string_id: dict[str, int] = {}
        # segment columns
        self._s_tid = array("q")
        self._s_name = array("i")
        self._s_core = array("i")
        self._s_start = array("q")
        self._s_end = array("q")
        self._s_kind = array("i")
        # migration columns (src -1 encodes None)
        self._m_time = array("q")
        self._m_tid = array("q")
        self._m_name = array("i")
        self._m_src = array("i")
        self._m_dst = array("i")
        self._m_forced = array("b")
        self._m_reason = array("i")
        # maintained span over segments
        self._span_lo = 0
        self._span_hi = 0

    # ------------------------------------------------------------------
    # recording (the hot path: scalar appends only)
    # ------------------------------------------------------------------
    def _intern(self, s: str) -> int:
        sid = self._string_id.get(s)
        if sid is None:
            sid = self._string_id[s] = len(self._strings)
            self._strings.append(s)
        return sid

    def record(self, tid: int, name: str, core: int, start: int, end: int, kind: str) -> None:
        if end <= start:
            return
        n = len(self._s_tid)
        if n >= self.limit:
            self.dropped += 1
            return
        self._s_tid.append(tid)
        self._s_name.append(self._intern(name))
        self._s_core.append(core)
        self._s_start.append(start)
        self._s_end.append(end)
        self._s_kind.append(self._intern(kind))
        if n == 0 or start < self._span_lo:
            self._span_lo = start
        if end > self._span_hi:
            self._span_hi = end

    def record_migration(
        self,
        time: int,
        tid: int,
        task_name: str,
        src: Optional[int],
        dst: int,
        forced: bool,
        reason: str,
    ) -> None:
        if len(self._m_time) >= self.migration_limit:
            self.migrations_dropped += 1
            return
        self._m_time.append(time)
        self._m_tid.append(tid)
        self._m_name.append(self._intern(task_name))
        self._m_src.append(-1 if src is None else src)
        self._m_dst.append(dst)
        self._m_forced.append(1 if forced else 0)
        self._m_reason.append(self._intern(reason))

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------
    @property
    def segments(self) -> _SegmentsView:
        """Sequence view materializing :class:`Segment` lazily."""
        return _SegmentsView(self)

    @segments.setter
    def segments(self, value: Iterable[Segment]) -> None:
        """Reload the segment columns (export round-trip loaders)."""
        for col in (
            self._s_tid, self._s_name, self._s_core,
            self._s_start, self._s_end, self._s_kind,
        ):
            del col[:]
        self._span_lo = self._span_hi = 0
        for s in value:
            n = len(self._s_tid)
            self._s_tid.append(s.tid)
            self._s_name.append(self._intern(s.task_name))
            self._s_core.append(s.core)
            self._s_start.append(s.start)
            self._s_end.append(s.end)
            self._s_kind.append(self._intern(s.kind))
            if n == 0 or s.start < self._span_lo:
                self._span_lo = s.start
            if s.end > self._span_hi:
                self._span_hi = s.end

    @property
    def migrations(self) -> _MigrationsView:
        """Sequence view materializing :class:`MigrationEvent` lazily."""
        return _MigrationsView(self)

    @migrations.setter
    def migrations(self, value: Iterable[MigrationEvent]) -> None:
        """Reload the migration columns (export round-trip loaders)."""
        for col in (
            self._m_time, self._m_tid, self._m_name,
            self._m_src, self._m_dst, self._m_forced, self._m_reason,
        ):
            del col[:]
        for m in value:
            self._m_time.append(m.time)
            self._m_tid.append(m.tid)
            self._m_name.append(self._intern(m.task_name))
            self._m_src.append(-1 if m.src is None else m.src)
            self._m_dst.append(m.dst)
            self._m_forced.append(1 if m.forced else 0)
            self._m_reason.append(self._intern(m.reason))

    def iter_segment_tuples(self) -> Iterator[tuple[int, str, int, int, int, str]]:
        """Yield ``(tid, name, core, start, end, kind)`` without
        materializing :class:`Segment` objects (column readers)."""
        strings = self._strings
        for tid, nid, core, start, end, kid in zip(
            self._s_tid, self._s_name, self._s_core,
            self._s_start, self._s_end, self._s_kind,
        ):
            yield tid, strings[nid], core, start, end, strings[kid]

    def iter_migration_tuples(
        self,
    ) -> Iterator[tuple[int, int, str, Optional[int], int, bool, str]]:
        """Yield ``(time, tid, name, src, dst, forced, reason)`` without
        materializing :class:`MigrationEvent` objects."""
        strings = self._strings
        for time, tid, nid, src, dst, forced, rid in zip(
            self._m_time, self._m_tid, self._m_name,
            self._m_src, self._m_dst, self._m_forced, self._m_reason,
        ):
            yield time, tid, strings[nid], (None if src < 0 else src), dst, bool(forced), strings[rid]

    # ------------------------------------------------------------------
    @property
    def truncated(self) -> bool:
        """True when any record was dropped beyond its cap."""
        return self.dropped > 0 or self.migrations_dropped > 0

    @property
    def span(self) -> tuple[int, int]:
        """(first start, last end) over all segments (maintained, O(1))."""
        if not self._s_tid:
            return (0, 0)
        return (self._span_lo, self._span_hi)


def _require_complete(trace: TraceRecorder, allow_truncated: bool, what: str) -> None:
    if allow_truncated or not trace.truncated:
        return
    raise TraceTruncatedError(
        f"{what} over a truncated trace ({trace.dropped} segments dropped "
        f"beyond the {trace.limit}-segment limit and "
        f"{trace.migrations_dropped} migrations dropped beyond the "
        f"{trace.migration_limit}-migration limit); the result would "
        "silently exclude everything after the cut-off.  Raise the "
        "recorder limits, or pass allow_truncated=True to compute over "
        "the recorded prefix."
    )


def core_utilization(
    trace: TraceRecorder,
    n_cores: int,
    start: Optional[int] = None,
    end: Optional[int] = None,
    allow_truncated: bool = False,
) -> list[float]:
    """Busy fraction per core over [start, end).

    Raises :class:`TraceTruncatedError` on a truncated trace unless
    ``allow_truncated`` is set (dropped segments would read as idle).
    """
    _require_complete(trace, allow_truncated, "core_utilization")
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    if end <= start:
        return [0.0] * n_cores
    busy = [0] * n_cores
    for core, s_start, s_end in zip(trace._s_core, trace._s_start, trace._s_end):
        lo = s_start if s_start > start else start
        hi = s_end if s_end < end else end
        if hi > lo:
            busy[core] += hi - lo
    return [b / (end - start) for b in busy]


def task_share(
    trace: TraceRecorder,
    tid: int,
    start: int,
    end: int,
    kind: Optional[str] = None,
    allow_truncated: bool = False,
) -> float:
    """CPU share of one task over a window -- the speed metric, post hoc.

    Raises :class:`TraceTruncatedError` on a truncated trace unless
    ``allow_truncated`` is set (dropped segments would deflate the share).
    """
    _require_complete(trace, allow_truncated, "task_share")
    if end <= start:
        raise ValueError("empty window")
    kid = -1
    if kind is not None:
        kid = trace._string_id.get(kind, -2)  # -2: kind never recorded
    got = 0
    for s_tid, s_start, s_end, s_kid in zip(
        trace._s_tid, trace._s_start, trace._s_end, trace._s_kind
    ):
        if s_tid != tid:
            continue
        if kind is not None and s_kid != kid:
            continue
        lo = s_start if s_start > start else start
        hi = s_end if s_end < end else end
        if hi > lo:
            got += hi - lo
    return got / (end - start)


def ascii_gantt(
    trace: TraceRecorder,
    n_cores: int,
    width: int = 80,
    start: Optional[int] = None,
    end: Optional[int] = None,
    allow_truncated: bool = False,
) -> str:
    """Render per-core timelines; letters identify tasks (A..Z cycling).

    Capitals = compute, lowercase = synchronization wait, ``.`` = idle.
    When several segments land in one character cell, the longest wins.
    Raises :class:`TraceTruncatedError` on a truncated trace unless
    ``allow_truncated`` is set (the chart would render phantom idle time).
    """
    _require_complete(trace, allow_truncated, "ascii_gantt")
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    if end <= start:
        return "(empty trace)"
    cell = (end - start) / width
    # stable task -> letter mapping in first-seen order
    letters: dict[int, str] = {}
    for tid in trace._s_tid:
        if tid not in letters:
            letters[tid] = chr(ord("A") + len(letters) % 26)
    wait_kid = trace._string_id.get("wait", -1)
    grid = [[(".", 0.0)] * width for _ in range(n_cores)]
    for s_tid, s_core, s_start, s_end, s_kid in zip(
        trace._s_tid, trace._s_core, trace._s_start, trace._s_end, trace._s_kind
    ):
        lo, hi = max(s_start, start), min(s_end, end)
        if hi <= lo:
            continue
        c0 = int((lo - start) / cell)
        c1 = min(width - 1, int((hi - start - 1) / cell))
        ch = letters[s_tid]
        if s_kid == wait_kid:
            ch = ch.lower()
        for c in range(c0, c1 + 1):
            seg_cover = min(hi, start + (c + 1) * cell) - max(lo, start + c * cell)
            if seg_cover > grid[s_core][c][1]:
                grid[s_core][c] = (ch, seg_cover)
    lines = [
        f"core {cid:2d} " + "".join(ch for ch, _ in row)
        for cid, row in enumerate(grid)
    ]
    return "\n".join(lines)
