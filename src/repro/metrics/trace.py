"""Execution tracing: who ran where, when, doing what.

Enable with ``System(..., trace=True)`` (or attach a
:class:`TraceRecorder` later).  Every charged execution interval is
recorded as a :class:`Segment` and every migration as a
:class:`MigrationEvent`; the analysis helpers answer the questions the
paper's figures are built from -- per-core utilization, per-thread CPU
share over time windows (the speed metric itself), and an ASCII Gantt
chart that makes rotation visible:

>>> print(ascii_gantt(system.trace, n_cores=2, width=60))   # doctest: +SKIP
core  0 AAAAAAAAaaaaBBBB....
core  1 BBBBBBBBBBAAAAAA....

Capital letters mark compute, lowercase synchronization waiting, ``.``
idle time.

The recorder is bounded: past ``limit`` entries it drops new records
and counts them in :attr:`TraceRecorder.dropped`.  A truncated trace is
**not** a representative sample -- everything after the cut-off is
missing -- so the analysis helpers refuse to compute over one (raising
:class:`TraceTruncatedError`) unless explicitly told otherwise, and the
schedule sanitizer (:mod:`repro.analysis.sanitizer`) reports truncation
as a finding of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Segment",
    "MigrationEvent",
    "TraceRecorder",
    "TraceTruncatedError",
    "core_utilization",
    "task_share",
    "ascii_gantt",
]


class TraceTruncatedError(ValueError):
    """An analysis was asked to treat a truncated trace as complete.

    Raised by :func:`core_utilization` / :func:`task_share` /
    :func:`ascii_gantt` when the recorder dropped records
    (``trace.dropped > 0``): utilization and share values computed from
    a prefix of the run would silently read as if cores went idle and
    tasks stopped at the cut-off.  Pass ``allow_truncated=True`` to
    compute over the recorded prefix anyway.
    """


@dataclass(frozen=True)
class Segment:
    """One charged execution interval."""

    tid: int
    task_name: str
    core: int
    start: int
    end: int
    #: "run" for productive compute, "wait" for spin/yield burn
    kind: str

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class MigrationEvent:
    """One recorded migration (the trace-level mirror of
    :class:`~repro.system.MigrationRecord`, kept independent so the
    trace module has no dependency on the system layer)."""

    time: int
    tid: int
    task_name: str
    src: Optional[int]
    dst: int
    forced: bool
    reason: str


class TraceRecorder:
    """Collects execution segments and migration events (bounded).

    Past ``limit`` records of either kind, new entries are dropped and
    counted in :attr:`dropped` / :attr:`migrations_dropped`; a recorder
    with either counter non-zero is :attr:`truncated` and the analysis
    helpers in this module refuse to treat it as a complete history.
    """

    def __init__(self, limit: int = 2_000_000):
        self.segments: list[Segment] = []
        self.migrations: list[MigrationEvent] = []
        self.limit = limit
        self.dropped = 0
        self.migrations_dropped = 0

    def record(self, tid: int, name: str, core: int, start: int, end: int, kind: str) -> None:
        if end <= start:
            return
        if len(self.segments) >= self.limit:
            self.dropped += 1
            return
        self.segments.append(Segment(tid, name, core, start, end, kind))

    def record_migration(
        self,
        time: int,
        tid: int,
        task_name: str,
        src: Optional[int],
        dst: int,
        forced: bool,
        reason: str,
    ) -> None:
        if len(self.migrations) >= self.limit:
            self.migrations_dropped += 1
            return
        self.migrations.append(
            MigrationEvent(time, tid, task_name, src, dst, forced, reason)
        )

    @property
    def truncated(self) -> bool:
        """True when any record was dropped beyond the cap."""
        return self.dropped > 0 or self.migrations_dropped > 0

    @property
    def span(self) -> tuple[int, int]:
        """(first start, last end) over all segments."""
        if not self.segments:
            return (0, 0)
        return (
            min(s.start for s in self.segments),
            max(s.end for s in self.segments),
        )


def _require_complete(trace: TraceRecorder, allow_truncated: bool, what: str) -> None:
    if allow_truncated or not trace.truncated:
        return
    raise TraceTruncatedError(
        f"{what} over a truncated trace ({trace.dropped} segments and "
        f"{trace.migrations_dropped} migrations dropped beyond the "
        f"{trace.limit}-record limit); the result would silently exclude "
        "everything after the cut-off.  Raise the recorder limit, or pass "
        "allow_truncated=True to compute over the recorded prefix."
    )


def core_utilization(
    trace: TraceRecorder,
    n_cores: int,
    start: Optional[int] = None,
    end: Optional[int] = None,
    allow_truncated: bool = False,
) -> list[float]:
    """Busy fraction per core over [start, end).

    Raises :class:`TraceTruncatedError` on a truncated trace unless
    ``allow_truncated`` is set (dropped segments would read as idle).
    """
    _require_complete(trace, allow_truncated, "core_utilization")
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    if end <= start:
        return [0.0] * n_cores
    busy = [0] * n_cores
    for s in trace.segments:
        lo, hi = max(s.start, start), min(s.end, end)
        if hi > lo:
            busy[s.core] += hi - lo
    return [b / (end - start) for b in busy]


def task_share(
    trace: TraceRecorder,
    tid: int,
    start: int,
    end: int,
    kind: Optional[str] = None,
    allow_truncated: bool = False,
) -> float:
    """CPU share of one task over a window -- the speed metric, post hoc.

    Raises :class:`TraceTruncatedError` on a truncated trace unless
    ``allow_truncated`` is set (dropped segments would deflate the share).
    """
    _require_complete(trace, allow_truncated, "task_share")
    if end <= start:
        raise ValueError("empty window")
    got = 0
    for s in trace.segments:
        if s.tid != tid:
            continue
        if kind is not None and s.kind != kind:
            continue
        lo, hi = max(s.start, start), min(s.end, end)
        if hi > lo:
            got += hi - lo
    return got / (end - start)


def ascii_gantt(
    trace: TraceRecorder,
    n_cores: int,
    width: int = 80,
    start: Optional[int] = None,
    end: Optional[int] = None,
    allow_truncated: bool = False,
) -> str:
    """Render per-core timelines; letters identify tasks (A..Z cycling).

    Capitals = compute, lowercase = synchronization wait, ``.`` = idle.
    When several segments land in one character cell, the longest wins.
    Raises :class:`TraceTruncatedError` on a truncated trace unless
    ``allow_truncated`` is set (the chart would render phantom idle time).
    """
    _require_complete(trace, allow_truncated, "ascii_gantt")
    t0, t1 = trace.span
    start = t0 if start is None else start
    end = t1 if end is None else end
    if end <= start:
        return "(empty trace)"
    cell = (end - start) / width
    # stable task -> letter mapping in first-seen order
    letters: dict[int, str] = {}
    for s in trace.segments:
        if s.tid not in letters:
            letters[s.tid] = chr(ord("A") + len(letters) % 26)
    grid = [[(".", 0.0)] * width for _ in range(n_cores)]
    for s in trace.segments:
        lo, hi = max(s.start, start), min(s.end, end)
        if hi <= lo:
            continue
        c0 = int((lo - start) / cell)
        c1 = min(width - 1, int((hi - start - 1) / cell))
        ch = letters[s.tid]
        if s.kind == "wait":
            ch = ch.lower()
        for c in range(c0, c1 + 1):
            seg_cover = min(hi, start + (c + 1) * cell) - max(lo, start + c * cell)
            if seg_cover > grid[s.core][c][1]:
                grid[s.core][c] = (ch, seg_cover)
    lines = [
        f"core {cid:2d} " + "".join(ch for ch, _ in row)
        for cid, row in enumerate(grid)
    ]
    return "\n".join(lines)
