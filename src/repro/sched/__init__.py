"""Per-core scheduling: tasks, run queues and the time dimension.

Contemporary multiprocessor OSes use two-level scheduling (paper,
Section 2): per-core run queues with a fair scheduler ("scheduling in
time") plus a load balancer moving tasks between queues ("scheduling in
space").  This package implements the *time* dimension:

* :mod:`repro.sched.task` -- the task model: states, wait modes,
  programs (the behavioural scripts run by workload models), execution
  accounting (the basis of the speed metric), affinity, migration
  bookkeeping;
* :mod:`repro.sched.runqueue` -- a CFS run queue keyed by virtual
  runtime, plus an O(1)-style round-robin queue used by the DWRR
  baseline;
* :mod:`repro.sched.cfs` -- CFS policy parameters (target latency,
  minimum granularity, wakeup granularity, sleeper credit);
* :mod:`repro.sched.core` -- ``CoreSim``: one simulated core; dispatch,
  time slicing, preemption, yield/spin/sleep semantics and execution-
  time charging.

The *space* dimension lives in :mod:`repro.balance` (queue-length
balancers) and :mod:`repro.core` (the paper's speed balancer).
"""

from repro.sched.task import (
    Action,
    ActionType,
    Program,
    Task,
    TaskState,
    WaitMode,
)
from repro.sched.cfs import CfsParams
from repro.sched.runqueue import CfsRunQueue, RoundRobinQueue
from repro.sched.core import CoreSim

__all__ = [
    "Action",
    "ActionType",
    "CfsParams",
    "CfsRunQueue",
    "CoreSim",
    "Program",
    "RoundRobinQueue",
    "Task",
    "TaskState",
    "WaitMode",
]
