"""CFS policy parameters.

The values model the Completely Fair Scheduler in the Linux 2.6.28
kernel the paper used (Section 2: "Since version 2.6.23, each queue is
managed by the Completely Fair Scheduler").  They are grouped in a
dataclass so experiments can perturb them (the paper notes "a typical
scheduling time quantum is 100 ms" when arguing migration costs are
small relative to a quantum; the effective CFS slice is
``target_latency / nr_running`` bounded below by ``min_granularity``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CfsParams", "O1Params"]


@dataclass
class CfsParams:
    """Tunables of the per-core fair scheduler (all microseconds).

    Attributes
    ----------
    target_latency:
        Scheduling period within which every runnable task should run
        once (``sysctl_sched_latency``).
    min_granularity:
        Lower bound on a time slice; with many runnable tasks the
        period stretches to ``nr * min_granularity``.
    wakeup_granularity:
        A waking task preempts the current one only if its vruntime is
        behind by more than this (prevents over-eager preemption).
    sleeper_credit:
        Cap on the credit a waking sleeper receives: its vruntime is
        set to at least ``min_vruntime - sleeper_credit``.  Linux uses
        half the latency period.
    yield_penalty:
        vruntime nudge applied by ``sched_yield`` beyond the rightmost
        task, ensuring every other runnable task runs first.
    """

    target_latency: int = 24_000
    min_granularity: int = 3_000
    wakeup_granularity: int = 1_000
    sleeper_credit: int = 12_000
    yield_penalty: int = 1

    def slice_for(self, nr_running: int, weight: int = 1024, total_weight: int = 0) -> int:
        """Time slice for one task among ``nr_running`` runnable tasks.

        Implements CFS's ``sched_slice``: the period is
        ``max(target_latency, nr * min_granularity)`` and each task
        receives a weight-proportional share of it.
        """
        nr = max(1, nr_running)
        period = max(self.target_latency, nr * self.min_granularity)
        if total_weight <= 0:
            total_weight = nr * 1024
        share = int(period * weight / total_weight)
        return max(self.min_granularity, share)


@dataclass
class O1Params(CfsParams):
    """Pre-CFS O(1) scheduler: fixed time slices, no sleeper credit.

    Models the per-core policy of the Linux 2.6.22 kernel the paper's
    DWRR prototype ran on: every default-priority task gets the same
    fixed quantum (100 ms for nice 0) and round-robins through the
    active/expired arrays.  ``slice_for`` ignores the runnable count.
    """

    timeslice_us: int = 100_000

    def slice_for(self, nr_running: int, weight: int = 1024, total_weight: int = 0) -> int:
        return self.timeslice_us
