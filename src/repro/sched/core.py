"""One simulated core: dispatch, time slicing, charging, preemption.

``CoreSim`` implements the *time* dimension of scheduling on a single
core: it picks the leftmost (smallest vruntime) runnable task, runs it
for up to a CFS time slice, charges its execution time (the quantity
the speed metric is built on) and handles the three synchronization
wait behaviours -- spin, ``sched_yield`` loop, sleep -- whose different
visibility to queue-length balancing is central to the paper.

Event discipline
----------------
A core has at most one pending engine event (slice end / compute
completion / yield expiry).  Any state change -- wakeup enqueue,
migration in or out, barrier release, balancer interruption -- calls
:meth:`resched`, which charges the interval elapsed so far, requeues
the current task and dispatches afresh.  A generation counter makes
superseded events harmless.

Execution rate
--------------
A task retires ``rate`` microseconds of work per wall microsecond,

    rate = clock_factor * smt_factor / numa_slowdown

where ``smt_factor`` derates a hardware context whose SMT sibling is
busy and ``numa_slowdown`` applies when the task's memory lives on a
remote NUMA node (see :mod:`repro.mem.cache_model`).  The rate is
captured at dispatch; every rate-changing transition (sibling busy/idle
flip, migration) forces a resched, so captured-rate charging is exact.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Optional

from repro.sched.cfs import CfsParams
from repro.sched.runqueue import CfsRunQueue, O1RunQueue, _entry_counter
from repro.sched.task import NICE_0_WEIGHT, Action, ActionType, Task, TaskState, WaitMode
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System
    from repro.topology.machine import Core

__all__ = ["CoreSim", "CoreStats"]

#: epsilon below which remaining work counts as done (guards float dust)
_WORK_EPS = 1e-6


@dataclass
class CoreStats:
    """Per-core counters used by the metrics layer."""

    busy_us: int = 0
    spin_us: int = 0  # busy time spent in synchronization spin/yield
    context_switches: int = 0
    dispatches: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    idle_balance_calls: int = 0


class CoreSim:
    """A single simulated core with a CFS run queue."""

    def __init__(self, system: "System", hw: "Core") -> None:
        self.system = system
        self.engine = system.engine
        self.hw = hw
        self.cid: int = hw.cid
        self.params: CfsParams = system.cfs_params
        self.rq = O1RunQueue() if system.scheduler == "o1" else CfsRunQueue()
        self.current: Optional[Task] = None
        self.dispatch_started_at: int = 0
        self.stats = CoreStats()
        #: DWRR round-expired tasks: runnable, but parked off the queue
        self.throttled: list[Task] = []
        #: balancer hooks fired when the core runs out of work
        self.idle_callbacks: list[Callable[["CoreSim"], None]] = []
        self.idle_since: int = 0
        self._event = None  # pending engine event
        self._gen: int = 0
        self._in_resched = False
        self._rate_at_dispatch: float = 1.0
        #: microseconds a yielding waiter occupies the core per yield
        #: when co-runners are queued (a sched_yield loop hands over
        #: almost immediately; this is the simulation granularity)
        self.yield_check_us: int = system.yield_check_us
        # -- memory-contention index wiring (see System._mem_scope_busy):
        # cores of one contention scope share a sorted (cid, intensity)
        # list; a core joins it while running a positive-intensity task
        self._mem_track: bool = system.machine.mem_contention_alpha > 0.0
        scope_key = (
            hw.numa_node if system.machine.mem_contention_scope == "node" else -1
        )
        self._mem_busy: list[tuple[int, float]] = system._mem_scope_busy.setdefault(
            scope_key, []
        )
        #: the scope's version cell: bumped on every index mutation so
        #: the per-core co-intensity memo below self-invalidates
        self._mem_epoch: list[int] = system._mem_scope_epoch.setdefault(
            scope_key, [0]
        )
        #: batch-aware fast paths (see repro.sim.backends): only the
        #: batched engine arms the memoized co-intensity sum; the heap
        #: path keeps the historical per-event loop untouched
        self._batched: bool = system.engine.batching
        self._co_epoch: int = -1
        self._co_sum: float = 0.0
        #: global load-epoch cell (see System._load_epoch), bumped on
        #: every nr_running-affecting mutation of *this* core
        self._load_epoch: list[int] = system._load_epoch
        # -- dispatch-path caches: machine/topology facts are immutable
        # for the lifetime of a System, so the per-dispatch rate and
        # slice computations read locals instead of chasing attributes.
        # clock_factor is the one dynamic member: System.set_clock_factor
        # writes this cache alongside the hw record.
        machine = system.machine
        self._clock_factor: float = hw.clock_factor
        self._numa_node = hw.numa_node
        self._numa: bool = machine.numa
        self._numa_remote_slowdown: float = machine.numa_remote_slowdown
        self._smt_derate: float = machine.smt_derate
        self._mem_alpha: float = machine.mem_contention_alpha
        #: SMT affects the rate only with a sibling and a derate that is
        #: not exactly 1.0 (multiplying by 1.0 is an exact float no-op,
        #: so skipping it is bit-identical)
        self._smt_active: bool = (
            hw.smt_sibling is not None and machine.smt_derate != 1.0
        )
        #: lazily resolved sibling CoreSim (cores are built in cid order,
        #: so the sibling may not exist yet during __init__)
        self._sib_core: Optional["CoreSim"] = None
        self._event_label: str = f"core{self.cid}"
        #: the slice-expiry handler core events are scheduled against:
        #: the batched backend routes through the fused straight-line
        #: replica of the dispatch cycle, the heap backend through the
        #: historical call chain (see _on_core_event_batched).  The
        #: fused body reaches into CfsRunQueue internals, so the O(1)
        #: queue (scheduler="o1") keeps the plain chain even when
        #: batched -- the two handlers are digest-equivalent either way.
        self._oce: Callable[[int], None] = (
            self._on_core_event_batched
            if self._batched and type(self.rq) is CfsRunQueue
            else self._on_core_event
        )

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def nr_running(self) -> int:
        """Linux's per-core load: queued plus currently running tasks.

        This is the quantity the queue-length balancers equalize -- and
        note that spinning/yielding waiters are counted while sleepers
        are not, exactly the distinction the paper exploits.
        """
        return self.rq.count + (1 if self.current is not None else 0)

    @property
    def is_idle(self) -> bool:
        return self.current is None and self.rq.count == 0

    def runnable_tasks(self) -> list[Task]:
        """All runnable tasks on this core, current first."""
        out = [self.current] if self.current is not None else []
        out.extend(self.rq.tasks())
        return out

    def sibling(self) -> Optional["CoreSim"]:
        sib = self._sib_core
        if sib is None and self.hw.smt_sibling is not None:
            sib = self._sib_core = self.system.cores[self.hw.smt_sibling]
        return sib

    # ------------------------------------------------------------------
    # entry points used by System / balancers / barriers
    # ------------------------------------------------------------------
    def enqueue(self, task: Task, wakeup: bool = False) -> None:
        """Place a runnable task on this core's queue.

        ``wakeup`` enables CFS wakeup preemption: a freshly woken task
        whose vruntime is sufficiently behind the current task's
        preempts it.
        """
        task.cur_core = self.cid
        task.state = TaskState.RUNNABLE
        self.system.note_residency(task)
        self.rq.push(task)
        self._load_epoch[0] += 1
        if self._in_resched:
            return  # the active dispatch loop will see the new task
        if self.current is None:
            self.resched()
        elif self.current.is_waiting and self.current.wait_mode == WaitMode.YIELD:
            # a lone yield-poller was occupying the core in whole
            # slices; its very next sched_yield hands over to the
            # arrival, which is "now" at simulation granularity
            self.resched()
        elif wakeup and self._should_preempt(task):
            self.resched()
        self._notify_sibling_rate_change()

    def dequeue(self, task: Task) -> None:
        """Remove a queued (not running) task, e.g. for migration."""
        if task in self.rq:
            self.rq.remove(task)
        elif task in self.throttled:
            self.throttled.remove(task)
        else:
            raise ValueError(f"{task} not queued on core {self.cid}")
        self._load_epoch[0] += 1
        task.cur_core = None
        self.system.note_residency(task)

    def interrupt(self) -> None:
        """Charge and deschedule the running task immediately.

        Used by forced migration (``sched_setaffinity`` semantics: "a
        task is moved immediately to another core, without allowing the
        task to finish the run time remaining in its quantum").
        """
        if self.current is None:
            return
        self._charge_current()
        task = self.current
        self.current = None
        self._load_epoch[0] += 1
        self._mem_note_off(task)
        task.state = TaskState.RUNNABLE
        task.last_descheduled_at = self.engine.now
        task.last_core = self.cid
        # caller decides where the task goes next

    def resched(self) -> None:
        """Charge the current task, requeue it and dispatch afresh."""
        if self._in_resched:
            return
        self._charge_current()
        self._put_back_current()
        self._dispatch_next()

    def charge_now(self) -> None:
        """Charge the running task up to the current instant.

        Used by barriers just before clearing a running waiter's wait
        flags, so the elapsed interval is classified as synchronization
        time rather than compute.
        """
        self._charge_current()

    def notify_waiter_released(self, task: Task) -> None:
        """A barrier this task was spinning/yielding on just opened."""
        if task is self.current:
            self.resched()
        # queued tasks advance at their next dispatch

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _charge_current(self) -> None:
        """Account the interval since dispatch to the running task."""
        task = self.current
        if task is None:
            return
        now = self.engine.now
        dt = now - self.dispatch_started_at
        self.dispatch_started_at = now
        if dt <= 0:
            return
        task.exec_us += dt
        waiting = task.waiting_on is not None  # is_waiting, sans property hop
        system = self.system
        if system.trace is not None:
            system.trace.record(
                task.tid, task.name, self.cid, now - dt, now,
                "wait" if waiting else "run",
            )
        task.vruntime += dt * (NICE_0_WEIGHT / task.weight)
        self.rq.note_current_vruntime(task.vruntime)
        stats = self.stats
        stats.busy_us += dt
        if waiting:
            stats.spin_us += dt
        else:
            rate = self._rate_at_dispatch
            debt_paid = min(float(dt), task.migration_debt_us)
            task.migration_debt_us -= debt_paid
            productive = dt - debt_paid
            task.work_remaining -= productive * rate
            task.compute_us += int(productive)
        # inlined System.on_task_charged: the specialized hook skips the
        # base-class no-op on_charge most kernel balancers inherit
        if system._kb_on_charge is not None:
            system._kb_on_charge(self, task, dt)
        observers = system.charge_observers
        if observers:
            for observer in observers:
                observer(self, task, dt)

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def _put_back_current(self) -> None:
        task = self.current
        if task is None:
            return
        self.current = None
        self._mem_note_off(task)
        task.last_descheduled_at = self.engine.now
        task.last_core = self.cid
        self.stats.context_switches += 1
        if task.state != TaskState.RUNNING:
            # already slept/exited/migrated under us: nr_running dropped
            self._load_epoch[0] += 1
            return
        task.state = TaskState.RUNNABLE
        if task.throttled:
            self._load_epoch[0] += 1
            self.throttled.append(task)
        else:
            # requeue of the running task: nr_running is unchanged, and
            # no load can be observed before the enclosing dispatch
            # restores ``current`` (mid-dispatch readers go through
            # _go_idle, which bumps) -- so the epoch stays put and
            # steady-state slice rotation keeps the balance memos warm
            self.rq.push(task)

    def _dispatch_next(self) -> None:
        """Pick the next runnable task and start executing it."""
        self._cancel_event()
        self._in_resched = True
        try:
            while True:
                task = self.rq.pop_min()
                if task is None:
                    self._go_idle()  # bumps the load epoch itself
                    if self.rq.count == 0:
                        return  # genuinely idle
                    continue  # idle balance pulled something
                if task.throttled:
                    # parked off the queue: nr_running really dropped
                    self._load_epoch[0] += 1
                    self.throttled.append(task)
                    continue
                if task.waiting_on is not None or (
                    not task.needs_advance
                    and (
                        task.work_remaining > _WORK_EPS
                        or task.migration_debt_us > _WORK_EPS
                    )
                ):
                    break  # _prepare's immediate-True cases, inlined
                if self._prepare(task):
                    break
                # task slept or exited during prepare: it left the core
                # for real, so the load epoch must move; pick again.
                # (The pop -> _start round trip itself is load-neutral
                # and deliberately does NOT bump: mid-dispatch readers
                # are funneled through _go_idle, which bumps, and
                # leaving the epoch alone is what lets the balancer
                # memos survive steady-state slice rotation.)
                self._load_epoch[0] += 1
        finally:
            self._in_resched = False
        self._start(task)

    def _prepare(self, task: Task) -> bool:
        """Advance the task's program until it has on-CPU work.

        Returns False if the task left the runnable state (sleep/exit).
        """
        now = self.engine.now
        while True:
            if task.waiting_on is not None:
                if task.wait_mode == WaitMode.SLEEP:  # pragma: no cover - defensive
                    raise AssertionError("sleeping waiter found on a run queue")
                return True  # spin or yield on CPU
            if not task.needs_advance and (
                task.work_remaining > _WORK_EPS or task.migration_debt_us > _WORK_EPS
            ):
                return True
            task.needs_advance = False
            action = task.program.next_action(task, now)
            if action.type == ActionType.COMPUTE:
                task.work_remaining = float(action.work_us)
                if task.home_node is None and self.system.machine.numa:
                    task.home_node = self.hw.numa_node  # first touch
                return True
            if action.type == ActionType.WAIT_BARRIER:
                assert action.barrier is not None
                released = action.barrier.arrive(task, now)
                if released:
                    task.needs_advance = True
                    continue  # barrier opened; on to the next action
                if task.state == TaskState.SLEEPING:
                    task.cur_core = None
                    self.system.note_residency(task)
                    return False  # sleep-mode wait
                return True  # spin/yield-mode wait
            if action.type == ActionType.SLEEP:
                self.system.put_to_sleep(task, wake_in=action.sleep_us)
                return False
            if action.type == ActionType.EXIT:
                self.system.task_exited(task)
                return False
            raise AssertionError(f"unknown action {action}")  # pragma: no cover

    def _start(self, task: Task) -> None:
        now = self.engine.now
        task.state = TaskState.RUNNING
        task.cur_core = self.cid
        self.current = task
        self._mem_note_on(task)
        self.dispatch_started_at = now
        self.stats.dispatches += 1
        self._rate_at_dispatch = self.effective_rate(task)
        run_for = self._run_duration(task)
        self._gen += 1
        self._event = self.engine.schedule(
            run_for if run_for > 1 else 1,
            self._oce,
            self._event_label,
            self._gen,
        )
        if self._smt_active:
            self._notify_sibling_rate_change()

    def _run_duration(self, task: Task) -> int:
        """How long this dispatch lasts, absent external interruption."""
        # only called from _start, where ``task`` is already current:
        # nr_running is therefore len(rq) + 1 without the property hop
        nr = self.rq.count + 1
        weight = task.weight
        total_weight = self.rq.total_weight() + weight
        params = self.params
        if type(params) is CfsParams:
            # inlined CfsParams.slice_for (sched_slice), term for term;
            # nr >= 1 and total_weight >= weight > 0 hold here, so the
            # max(1, nr) and zero-weight fallbacks cannot fire
            scaled = nr * params.min_granularity
            period = params.target_latency
            if scaled > period:
                period = scaled
            slice_us = int(period * weight / total_weight)
            if slice_us < params.min_granularity:
                slice_us = params.min_granularity
        else:
            slice_us = params.slice_for(nr, weight, total_weight)
        if task.waiting_on is not None:
            if task.wait_mode == WaitMode.YIELD and self.rq.count > 0:
                # yield to the queued co-runner almost immediately
                run_for = min(slice_us, self.yield_check_us)
            else:  # SPIN, or a yielder alone on the queue (yield is a
                # no-op then: it polls like a spinner)
                run_for = slice_us
            if task.spin_deadline is not None:
                run_for = min(run_for, max(1, task.spin_deadline - self.engine.now))
            return run_for
        rate = self._rate_at_dispatch
        need = task.migration_debt_us + task.work_remaining / rate
        return min(slice_us, math.ceil(need - 1e-9))

    def _on_core_event(self, gen: int) -> None:
        if gen != self._gen or self.current is None:
            return  # superseded
        task = self.current
        self._charge_current()
        now = self.engine.now
        if task.waiting_on is not None:
            if task.spin_deadline is not None and now >= task.spin_deadline:
                # KMP_BLOCKTIME expired: the waiter goes to sleep.
                barrier = task.waiting_on
                assert barrier is not None
                self.current = None
                self._load_epoch[0] += 1
                self._mem_note_off(task)
                task.last_descheduled_at = now
                task.last_core = self.cid
                barrier.spin_timeout(task, now)
                self.system.note_residency(task)
                self._dispatch_next()
                return
            if task.wait_mode == WaitMode.YIELD:
                # sched_yield: move past the rightmost task and requeue.
                task.vruntime = (
                    max(task.vruntime, self.rq.max_vruntime()) + self.params.yield_penalty
                )
            self._redispatch(task)
            return
        if task.work_remaining <= _WORK_EPS and task.migration_debt_us <= _WORK_EPS:
            task.work_remaining = 0.0
            task.needs_advance = True
        self._redispatch(task)

    def _redispatch(self, task: Task) -> None:
        """Slice expiry with ``task`` already charged: pick next runner.

        Fast path: when ``task`` has the core to itself (empty queue,
        not throttled, still has on-CPU work or a spin/yield wait), the
        requeue/pop cycle is a guaranteed identity -- push and pop_min
        of the lone entry restore the queue and cannot change
        ``min_vruntime`` beyond what :meth:`_charge_current`'s
        ``note_current_vruntime`` already did, and the mem-index
        remove+insort of the same ``(cid, intensity)`` pair rebuilds the
        same list -- so the dispatch restarts in place.  Every counter
        the slow path touches (context switches, dispatches, the
        rate-at-dispatch resample, the engine event) is replicated,
        keeping stats and digests bit-identical.
        """
        if (
            self.rq.count == 0
            and not task.throttled
            and task.state == TaskState.RUNNING
            and (
                task.waiting_on is not None
                or (
                    not task.needs_advance
                    and (
                        task.work_remaining > _WORK_EPS
                        or task.migration_debt_us > _WORK_EPS
                    )
                )
            )
        ):
            now = self.engine.now
            task.last_descheduled_at = now
            task.last_core = self.cid
            self.stats.context_switches += 1
            self.stats.dispatches += 1
            self._rate_at_dispatch = self.effective_rate(task)
            run_for = self._run_duration(task)
            self._gen += 1
            self._event = self.engine.schedule(
                run_for if run_for > 1 else 1,
                self._oce,
                self._event_label,
                self._gen,
            )
            if self._smt_active:
                self._notify_sibling_rate_change()
            return
        self._put_back_current()
        self._dispatch_next()

    def _on_core_event_batched(self, gen: int) -> None:
        """Fused slice-expiry handler for batching engine backends.

        Replicates the heap path's call chain -- :meth:`_on_core_event`
        -> :meth:`_charge_current` -> :meth:`_redispatch` ->
        (:meth:`_put_back_current` + :meth:`_dispatch_next` +
        :meth:`_start`) with :meth:`effective_rate`,
        :meth:`_run_duration`, :meth:`_cancel_event` and the engine's
        ``schedule`` flattened into one straight-line body.  Every
        mutation, counter and float operation appears in the same order
        with the same operands as in those methods, so runs are
        bit-identical to the heap backend; rare branches (KMP spin
        timeouts, idle transitions, program advance, non-CFS slice
        policies) drop back to the shared helpers.  The golden-digest
        parity suite holds the two paths together -- when editing one
        of the replicated methods, mirror the change here.

        Why it exists: the per-event cost of the simulator is dominated
        not by any single computation but by the Python call overhead
        of the chain above (~15 frames per dispatched event).  The
        batched backend's throughput win comes from this fusion plus
        the epoch-memoized balancer and contention-rate passes; the
        heap backend keeps the historical frame-per-step structure that
        produced every existing baseline.
        """
        if gen != self._gen or self.current is None:
            return  # superseded
        task = self.current
        engine = self.engine
        now = engine.now
        system = self.system
        rq = self.rq
        # ---- inline _charge_current
        dt = now - self.dispatch_started_at
        if dt > 0:
            self.dispatch_started_at = now
            task.exec_us += dt
            waiting = task.waiting_on is not None
            trace = system.trace
            if trace is not None:
                trace.record(
                    task.tid, task.name, self.cid, now - dt, now,
                    "wait" if waiting else "run",
                )
            vr = task.vruntime + dt * (NICE_0_WEIGHT / task.weight)
            task.vruntime = vr
            # inline rq.note_current_vruntime(vr): lazy peek-min scan
            floor = vr
            heap_ = rq._heap
            live = rq._live
            while heap_:
                entry = heap_[0]
                if live.get(entry[2].tid) is entry:
                    if entry[0] < floor:
                        floor = entry[0]
                    break
                heappop(heap_)
            if floor > rq.min_vruntime:
                rq.min_vruntime = floor
            stats = self.stats
            stats.busy_us += dt
            if waiting:
                stats.spin_us += dt
            else:
                rate = self._rate_at_dispatch
                debt_paid = min(float(dt), task.migration_debt_us)
                task.migration_debt_us -= debt_paid
                productive = dt - debt_paid
                task.work_remaining -= productive * rate
                task.compute_us += int(productive)
            kb = system._kb_on_charge
            if kb is not None:
                kb(self, task, dt)
            observers = system.charge_observers
            if observers:
                for observer in observers:
                    observer(self, task, dt)
        # ---- inline _on_core_event's wait/work bookkeeping
        if task.waiting_on is not None:
            if task.spin_deadline is not None and now >= task.spin_deadline:
                # rare: KMP_BLOCKTIME expired -- shared slow helpers
                barrier = task.waiting_on
                assert barrier is not None
                self.current = None
                self._load_epoch[0] += 1
                self._mem_note_off(task)
                task.last_descheduled_at = now
                task.last_core = self.cid
                barrier.spin_timeout(task, now)
                system.note_residency(task)
                self._dispatch_next()
                return
            if task.wait_mode == WaitMode.YIELD:
                # inline rq.max_vruntime(): lazy max-heap peek
                mheap = rq._max_heap
                live = rq._live
                mv = rq.min_vruntime
                while mheap:
                    mentry = mheap[0][2]
                    if live.get(mentry[2].tid) is mentry:
                        mv = mentry[0]
                        break
                    heappop(mheap)
                task.vruntime = max(task.vruntime, mv) + self.params.yield_penalty
        elif task.work_remaining <= _WORK_EPS and task.migration_debt_us <= _WORK_EPS:
            task.work_remaining = 0.0
            task.needs_advance = True
        # ---- inline _redispatch
        if (
            rq.count == 0
            and not task.throttled
            and task.state == TaskState.RUNNING
            and (
                task.waiting_on is not None
                or (
                    not task.needs_advance
                    and (
                        task.work_remaining > _WORK_EPS
                        or task.migration_debt_us > _WORK_EPS
                    )
                )
            )
        ):
            # lone-task fast path: the queue round trip is an identity
            task.last_descheduled_at = now
            task.last_core = self.cid
            stats = self.stats
            stats.context_switches += 1
            stats.dispatches += 1
        else:
            # ---- inline _put_back_current (push inlined too: the
            # current task can never already be queued, so push's
            # already-queued guard is vacuous here).  The mem-index
            # remove is DEFERRED: the only readers of the contention
            # index that can run mid-dispatch sit behind _go_idle and
            # _prepare, which flush the pending remove first.  If the
            # dispatch reaches _start without either, and the incoming
            # task has the exact same mem intensity, the remove+insort
            # pair is an identity on the sorted list and is elided
            # together with its two epoch bumps -- which is what keeps
            # the co-intensity memo warm across steady-state rotation.
            self.current = None
            prev = task
            off_pending = self._mem_track and prev.mem_intensity > 0.0
            task.last_descheduled_at = now
            task.last_core = self.cid
            self.stats.context_switches += 1
            if task.state == TaskState.RUNNING:
                task.state = TaskState.RUNNABLE
                if task.throttled:
                    self._load_epoch[0] += 1
                    self.throttled.append(task)
                else:
                    # requeue: load-neutral, so no epoch bump (mirrors
                    # _put_back_current); inline rq.push(task)
                    entry = (task.vruntime, next(_entry_counter), task)  # sim-lint: ignore[FLOW004]
                    rq._live[task.tid] = entry
                    heappush(rq._heap, entry)
                    heappush(rq._max_heap, (-entry[0], -entry[1], entry))
                    rq._total_weight += task.weight
                    rq.count += 1
            else:
                # slept/exited/migrated under us: nr_running dropped
                self._load_epoch[0] += 1
            # ---- inline _dispatch_next (with _cancel_event folded in:
            # the pending event is the one firing right now, already
            # popped, so clearing the slot and bumping the generation
            # is all the cancel would observably do)
            self._event = None
            self._gen += 1
            self._in_resched = True
            try:
                while True:
                    # inline rq.pop_min(); _heap/_live re-read each lap
                    # because _go_idle/_prepare side effects can compact
                    # (rebind) them
                    task = None
                    heap_ = rq._heap
                    live = rq._live
                    while heap_:
                        entry = heappop(heap_)
                        cand = entry[2]
                        if live.get(cand.tid) is entry:
                            del live[cand.tid]
                            rq._total_weight -= cand.weight
                            rq.count -= 1
                            if entry[0] > rq.min_vruntime:
                                rq.min_vruntime = entry[0]
                            task = cand
                            break
                    if task is None:
                        if off_pending:  # flush before readers can look
                            off_pending = False
                            del self._mem_busy[bisect_left(self._mem_busy, (self.cid, 0.0))]
                            self._mem_epoch[0] += 1
                        self._go_idle()  # bumps the load epoch itself
                        if rq.count == 0:
                            return  # genuinely idle
                        continue  # idle balance pulled something
                    if task.throttled:
                        # parked off the queue: nr_running dropped
                        self._load_epoch[0] += 1
                        self.throttled.append(task)
                        continue
                    if task.waiting_on is not None or (
                        not task.needs_advance
                        and (
                            task.work_remaining > _WORK_EPS
                            or task.migration_debt_us > _WORK_EPS
                        )
                    ):
                        break  # _prepare's immediate-True cases, inlined
                    if off_pending:  # flush before readers can look
                        off_pending = False
                        del self._mem_busy[bisect_left(self._mem_busy, (self.cid, 0.0))]
                        self._mem_epoch[0] += 1
                    if self._prepare(task):
                        break
                    # slept or exited during prepare: load really
                    # dropped; pick again (see _dispatch_next on why
                    # the pop -> start round trip itself never bumps)
                    self._load_epoch[0] += 1
            finally:
                self._in_resched = False
            # ---- inline _start (sans the schedule tail shared below)
            task.state = TaskState.RUNNING
            task.cur_core = self.cid
            self.current = task
            if off_pending and task.mem_intensity == prev.mem_intensity:
                pass  # identity remove+insort of the same pair: elided
            else:
                if off_pending:
                    del self._mem_busy[bisect_left(self._mem_busy, (self.cid, 0.0))]
                    self._mem_epoch[0] += 1
                if self._mem_track and task.mem_intensity > 0.0:
                    insort(self._mem_busy, (self.cid, task.mem_intensity))
                    self._mem_epoch[0] += 1
            self.dispatch_started_at = now
            self.stats.dispatches += 1
        # ---- inline effective_rate
        rate = self._clock_factor
        if self._smt_active:
            sib = self._sib_core
            if sib is None and self.hw.smt_sibling is not None:
                sib = self._sib_core = system.cores[self.hw.smt_sibling]
            if sib is not None and sib.current is not None:
                rate *= self._smt_derate
        home = task.home_node
        if self._numa and home is not None and home != self._numa_node:
            rate /= self._numa_remote_slowdown
        mem_intensity = task.mem_intensity
        if self._mem_track and mem_intensity > 0.0:
            if self._co_epoch == self._mem_epoch[0]:
                co = self._co_sum
            else:
                co = 0.0
                my_cid = self.cid
                for cid, intensity in self._mem_busy:
                    if cid != my_cid:
                        co += intensity
                self._co_epoch = self._mem_epoch[0]
                self._co_sum = co
            rate /= 1.0 + mem_intensity * self._mem_alpha * co
        self._rate_at_dispatch = rate
        # ---- inline _run_duration
        nr = rq.count + 1
        weight = task.weight
        total_weight = rq.total_weight() + weight
        params = self.params
        if type(params) is CfsParams:
            scaled = nr * params.min_granularity
            period = params.target_latency
            if scaled > period:
                period = scaled
            slice_us = int(period * weight / total_weight)
            if slice_us < params.min_granularity:
                slice_us = params.min_granularity
        else:
            slice_us = params.slice_for(nr, weight, total_weight)
        if task.waiting_on is not None:
            if task.wait_mode == WaitMode.YIELD and rq.count > 0:
                run_for = min(slice_us, self.yield_check_us)
            else:
                run_for = slice_us
            if task.spin_deadline is not None:
                run_for = min(run_for, max(1, task.spin_deadline - now))
        else:
            need = task.migration_debt_us + task.work_remaining / rate
            run_for = min(slice_us, math.ceil(need - 1e-9))
        # ---- inline BatchedEngine.schedule (delay >= 1, so the
        # negative-delay validation cannot fire)
        self._gen += 1
        ev_time = now + (run_for if run_for > 1 else 1)
        ev = Event(
            ev_time, engine._seq, self._oce, self._event_label, engine, self._gen
        )
        engine._seq += 1
        buckets = engine._buckets
        bucket = buckets.get(ev_time)
        if bucket is None:
            buckets[ev_time] = deque((ev,))
            heappush(engine._times, ev_time)
        else:
            bucket.append(ev)
        engine._size += 1
        self._event = ev
        if self._smt_active:
            self._notify_sibling_rate_change()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def effective_rate(self, task: Task) -> float:
        """Work retired per wall microsecond for ``task`` on this core.

        Memory-bandwidth contention is sampled at dispatch time (a
        quasi-static approximation: a co-runner arriving mid-slice does
        not retroactively slow this slice; slices are ms-scale so the
        error is small, and the approximation is noted in DESIGN.md).
        """
        rate = self._clock_factor
        if self._smt_active:
            sib = self.sibling()
            if sib is not None and sib.current is not None:
                rate *= self._smt_derate
        home = task.home_node
        if self._numa and home is not None and home != self._numa_node:
            rate /= self._numa_remote_slowdown
        if self._mem_track and task.mem_intensity > 0.0:
            if self._batched and self._co_epoch == self._mem_epoch[0]:
                # batch-aware fast path: the scope index is unchanged
                # since the last sum (epochs match), so reuse it.  The
                # cached value was produced by the identical loop below,
                # so replaying it is bit-identical by construction.
                co = self._co_sum
            else:
                # Maintained scope index instead of an all-core sweep.
                # The index holds only positive intensities, sorted by
                # cid, so this sum adds the same floats in the same
                # order as the old core-order sweep (zeros add
                # exactly), bit-identically.
                co = 0.0
                my_cid = self.cid
                for cid, intensity in self._mem_busy:
                    if cid != my_cid:
                        co += intensity
                if self._batched:
                    self._co_epoch = self._mem_epoch[0]
                    self._co_sum = co
            rate /= 1.0 + task.mem_intensity * self._mem_alpha * co
        return rate

    def _mem_note_on(self, task: Task) -> None:
        """The core started running ``task``: join the contention scope."""
        if self._mem_track and task.mem_intensity > 0.0:
            insort(self._mem_busy, (self.cid, task.mem_intensity))
            self._mem_epoch[0] += 1

    def _mem_note_off(self, task: Task) -> None:
        """``task`` (the previous ``current``) left the core."""
        if self._mem_track and task.mem_intensity > 0.0:
            # one entry per cid, and intensities are positive, so the
            # insertion point of (cid, 0.0) is exactly our entry
            del self._mem_busy[bisect_left(self._mem_busy, (self.cid, 0.0))]
            self._mem_epoch[0] += 1

    def _should_preempt(self, woken: Task) -> bool:
        cur = self.current
        if cur is None:
            return True
        # charge so the comparison uses the current task's live vruntime
        self._charge_current()
        return woken.vruntime + self.params.wakeup_granularity < cur.vruntime

    def _go_idle(self) -> None:
        """Run idle-balance hooks; the queue may be refilled by a pull."""
        # the hooks below read loads mid-dispatch, after pops/parks that
        # the enclosing _dispatch_next only bumps for in its finally --
        # refresh the epoch here so no memoized balance pass can replay
        self._load_epoch[0] += 1
        self.idle_since = self.engine.now
        self.stats.idle_balance_calls += 1
        for cb in list(self.idle_callbacks):
            cb(self)
            if self.rq.count > 0:
                break
        if self.rq.count == 0:
            self._notify_sibling_rate_change()

    def _cancel_event(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._gen += 1

    def _notify_sibling_rate_change(self) -> None:
        """SMT siblings' execution rates depend on our occupancy."""
        if not self._smt_active or self._smt_derate >= 1.0:
            return
        sib = self.sibling()
        if sib is None or sib.current is None or sib._in_resched:
            return
        # Only interrupt the sibling if its execution rate actually
        # changed; unconditional rescheds would ping-pong forever.
        if sib.effective_rate(sib.current) != sib._rate_at_dispatch:
            sib.resched()

    def __repr__(self) -> str:
        cur = self.current.name if self.current else "idle"
        return f"<Core {self.cid} running={cur} queued={len(self.rq)}>"
