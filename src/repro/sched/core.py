"""One simulated core: dispatch, time slicing, charging, preemption.

``CoreSim`` implements the *time* dimension of scheduling on a single
core: it picks the leftmost (smallest vruntime) runnable task, runs it
for up to a CFS time slice, charges its execution time (the quantity
the speed metric is built on) and handles the three synchronization
wait behaviours -- spin, ``sched_yield`` loop, sleep -- whose different
visibility to queue-length balancing is central to the paper.

Event discipline
----------------
A core has at most one pending engine event (slice end / compute
completion / yield expiry).  Any state change -- wakeup enqueue,
migration in or out, barrier release, balancer interruption -- calls
:meth:`resched`, which charges the interval elapsed so far, requeues
the current task and dispatches afresh.  A generation counter makes
superseded events harmless.

Execution rate
--------------
A task retires ``rate`` microseconds of work per wall microsecond,

    rate = clock_factor * smt_factor / numa_slowdown

where ``smt_factor`` derates a hardware context whose SMT sibling is
busy and ``numa_slowdown`` applies when the task's memory lives on a
remote NUMA node (see :mod:`repro.mem.cache_model`).  The rate is
captured at dispatch; every rate-changing transition (sibling busy/idle
flip, migration) forces a resched, so captured-rate charging is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.sched.cfs import CfsParams
from repro.sched.runqueue import CfsRunQueue, O1RunQueue
from repro.sched.task import NICE_0_WEIGHT, Action, ActionType, Task, TaskState, WaitMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

__all__ = ["CoreSim", "CoreStats"]

#: epsilon below which remaining work counts as done (guards float dust)
_WORK_EPS = 1e-6


@dataclass
class CoreStats:
    """Per-core counters used by the metrics layer."""

    busy_us: int = 0
    spin_us: int = 0  # busy time spent in synchronization spin/yield
    context_switches: int = 0
    dispatches: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    idle_balance_calls: int = 0


class CoreSim:
    """A single simulated core with a CFS run queue."""

    def __init__(self, system: "System", hw) -> None:
        self.system = system
        self.engine = system.engine
        self.hw = hw
        self.cid: int = hw.cid
        self.params: CfsParams = system.cfs_params
        self.rq = O1RunQueue() if system.scheduler == "o1" else CfsRunQueue()
        self.current: Optional[Task] = None
        self.dispatch_started_at: int = 0
        self.stats = CoreStats()
        #: DWRR round-expired tasks: runnable, but parked off the queue
        self.throttled: list[Task] = []
        #: balancer hooks fired when the core runs out of work
        self.idle_callbacks: list[Callable[["CoreSim"], None]] = []
        self.idle_since: int = 0
        self._event = None  # pending engine event
        self._gen: int = 0
        self._in_resched = False
        self._rate_at_dispatch: float = 1.0
        #: microseconds a yielding waiter occupies the core per yield
        #: when co-runners are queued (a sched_yield loop hands over
        #: almost immediately; this is the simulation granularity)
        self.yield_check_us: int = system.yield_check_us

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def nr_running(self) -> int:
        """Linux's per-core load: queued plus currently running tasks.

        This is the quantity the queue-length balancers equalize -- and
        note that spinning/yielding waiters are counted while sleepers
        are not, exactly the distinction the paper exploits.
        """
        return len(self.rq) + (1 if self.current is not None else 0)

    @property
    def is_idle(self) -> bool:
        return self.current is None and len(self.rq) == 0

    def runnable_tasks(self) -> list[Task]:
        """All runnable tasks on this core, current first."""
        out = [self.current] if self.current is not None else []
        out.extend(self.rq.tasks())
        return out

    def sibling(self) -> Optional["CoreSim"]:
        sib = self.hw.smt_sibling
        return self.system.cores[sib] if sib is not None else None

    # ------------------------------------------------------------------
    # entry points used by System / balancers / barriers
    # ------------------------------------------------------------------
    def enqueue(self, task: Task, wakeup: bool = False) -> None:
        """Place a runnable task on this core's queue.

        ``wakeup`` enables CFS wakeup preemption: a freshly woken task
        whose vruntime is sufficiently behind the current task's
        preempts it.
        """
        task.cur_core = self.cid
        task.state = TaskState.RUNNABLE
        self.rq.push(task)
        if self._in_resched:
            return  # the active dispatch loop will see the new task
        if self.current is None:
            self.resched()
        elif self.current.is_waiting and self.current.wait_mode == WaitMode.YIELD:
            # a lone yield-poller was occupying the core in whole
            # slices; its very next sched_yield hands over to the
            # arrival, which is "now" at simulation granularity
            self.resched()
        elif wakeup and self._should_preempt(task):
            self.resched()
        self._notify_sibling_rate_change()

    def dequeue(self, task: Task) -> None:
        """Remove a queued (not running) task, e.g. for migration."""
        if task in self.rq:
            self.rq.remove(task)
        elif task in self.throttled:
            self.throttled.remove(task)
        else:
            raise ValueError(f"{task} not queued on core {self.cid}")
        task.cur_core = None

    def interrupt(self) -> None:
        """Charge and deschedule the running task immediately.

        Used by forced migration (``sched_setaffinity`` semantics: "a
        task is moved immediately to another core, without allowing the
        task to finish the run time remaining in its quantum").
        """
        if self.current is None:
            return
        self._charge_current()
        task = self.current
        self.current = None
        task.state = TaskState.RUNNABLE
        task.last_descheduled_at = self.engine.now
        task.last_core = self.cid
        # caller decides where the task goes next

    def resched(self) -> None:
        """Charge the current task, requeue it and dispatch afresh."""
        if self._in_resched:
            return
        self._charge_current()
        self._put_back_current()
        self._dispatch_next()

    def charge_now(self) -> None:
        """Charge the running task up to the current instant.

        Used by barriers just before clearing a running waiter's wait
        flags, so the elapsed interval is classified as synchronization
        time rather than compute.
        """
        self._charge_current()

    def notify_waiter_released(self, task: Task) -> None:
        """A barrier this task was spinning/yielding on just opened."""
        if task is self.current:
            self.resched()
        # queued tasks advance at their next dispatch

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _charge_current(self) -> None:
        """Account the interval since dispatch to the running task."""
        task = self.current
        if task is None:
            return
        now = self.engine.now
        dt = now - self.dispatch_started_at
        self.dispatch_started_at = now
        if dt <= 0:
            return
        task.exec_us += dt
        if self.system.trace is not None:
            self.system.trace.record(
                task.tid, task.name, self.cid, now - dt, now,
                "wait" if task.is_waiting else "run",
            )
        task.vruntime += dt * (NICE_0_WEIGHT / task.weight)
        self.rq.note_current_vruntime(task.vruntime)
        self.stats.busy_us += dt
        if task.is_waiting:
            self.stats.spin_us += dt
        else:
            rate = self._rate_at_dispatch
            debt_paid = min(float(dt), task.migration_debt_us)
            task.migration_debt_us -= debt_paid
            productive = dt - debt_paid
            task.work_remaining -= productive * rate
            task.compute_us += int(productive)
        self.system.on_task_charged(self, task, dt)

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def _put_back_current(self) -> None:
        task = self.current
        if task is None:
            return
        self.current = None
        task.last_descheduled_at = self.engine.now
        task.last_core = self.cid
        self.stats.context_switches += 1
        if task.state != TaskState.RUNNING:
            return  # already slept/exited/migrated under us
        task.state = TaskState.RUNNABLE
        if task.throttled:
            self.throttled.append(task)
        else:
            self.rq.push(task)

    def _dispatch_next(self) -> None:
        """Pick the next runnable task and start executing it."""
        self._cancel_event()
        self._in_resched = True
        try:
            while True:
                task = self.rq.pop_min()
                if task is None:
                    self._go_idle()
                    if len(self.rq) == 0:
                        return  # genuinely idle
                    continue  # idle balance pulled something
                if task.throttled:
                    self.throttled.append(task)
                    continue
                if self._prepare(task):
                    break
                # task slept or exited during prepare; pick again
        finally:
            self._in_resched = False
        self._start(task)

    def _prepare(self, task: Task) -> bool:
        """Advance the task's program until it has on-CPU work.

        Returns False if the task left the runnable state (sleep/exit).
        """
        now = self.engine.now
        while True:
            if task.is_waiting:
                if task.wait_mode == WaitMode.SLEEP:  # pragma: no cover - defensive
                    raise AssertionError("sleeping waiter found on a run queue")
                return True  # spin or yield on CPU
            if not task.needs_advance and (
                task.work_remaining > _WORK_EPS or task.migration_debt_us > _WORK_EPS
            ):
                return True
            task.needs_advance = False
            action = task.program.next_action(task, now)
            if action.type == ActionType.COMPUTE:
                task.work_remaining = float(action.work_us)
                if task.home_node is None and self.system.machine.numa:
                    task.home_node = self.hw.numa_node  # first touch
                return True
            if action.type == ActionType.WAIT_BARRIER:
                assert action.barrier is not None
                released = action.barrier.arrive(task, now)
                if released:
                    task.needs_advance = True
                    continue  # barrier opened; on to the next action
                if task.state == TaskState.SLEEPING:
                    task.cur_core = None
                    return False  # sleep-mode wait
                return True  # spin/yield-mode wait
            if action.type == ActionType.SLEEP:
                self.system.put_to_sleep(task, wake_in=action.sleep_us)
                return False
            if action.type == ActionType.EXIT:
                self.system.task_exited(task)
                return False
            raise AssertionError(f"unknown action {action}")  # pragma: no cover

    def _start(self, task: Task) -> None:
        now = self.engine.now
        task.state = TaskState.RUNNING
        task.cur_core = self.cid
        self.current = task
        self.dispatch_started_at = now
        self.stats.dispatches += 1
        self._rate_at_dispatch = self.effective_rate(task)
        run_for = self._run_duration(task)
        self._gen += 1
        gen = self._gen
        self._event = self.engine.schedule(
            max(1, run_for), lambda: self._on_core_event(gen), f"core{self.cid}"
        )
        self._notify_sibling_rate_change()

    def _run_duration(self, task: Task) -> int:
        """How long this dispatch lasts, absent external interruption."""
        nr = self.nr_running
        slice_us = self.params.slice_for(
            nr, task.weight, self.rq.total_weight() + task.weight
        )
        if task.is_waiting:
            if task.wait_mode == WaitMode.YIELD and len(self.rq) > 0:
                # yield to the queued co-runner almost immediately
                run_for = min(slice_us, self.yield_check_us)
            else:  # SPIN, or a yielder alone on the queue (yield is a
                # no-op then: it polls like a spinner)
                run_for = slice_us
            if task.spin_deadline is not None:
                run_for = min(run_for, max(1, task.spin_deadline - self.engine.now))
            return run_for
        rate = self._rate_at_dispatch
        need = task.migration_debt_us + task.work_remaining / rate
        return min(slice_us, math.ceil(need - 1e-9))

    def _on_core_event(self, gen: int) -> None:
        if gen != self._gen or self.current is None:
            return  # superseded
        task = self.current
        self._charge_current()
        now = self.engine.now
        if task.is_waiting:
            if task.spin_deadline is not None and now >= task.spin_deadline:
                # KMP_BLOCKTIME expired: the waiter goes to sleep.
                barrier = task.waiting_on
                assert barrier is not None
                self.current = None
                task.last_descheduled_at = now
                task.last_core = self.cid
                barrier.spin_timeout(task, now)
                self._dispatch_next()
                return
            if task.wait_mode == WaitMode.YIELD:
                # sched_yield: move past the rightmost task and requeue.
                task.vruntime = (
                    max(task.vruntime, self.rq.max_vruntime()) + self.params.yield_penalty
                )
            self.resched()
            return
        if task.work_remaining <= _WORK_EPS and task.migration_debt_us <= _WORK_EPS:
            task.work_remaining = 0.0
            task.needs_advance = True
        self.resched()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def effective_rate(self, task: Task) -> float:
        """Work retired per wall microsecond for ``task`` on this core.

        Memory-bandwidth contention is sampled at dispatch time (a
        quasi-static approximation: a co-runner arriving mid-slice does
        not retroactively slow this slice; slices are ms-scale so the
        error is small, and the approximation is noted in DESIGN.md).
        """
        rate = self.hw.clock_factor
        sib = self.sibling()
        if sib is not None and sib.current is not None:
            rate *= self.system.machine.smt_derate
        if (
            self.system.machine.numa
            and task.home_node is not None
            and task.home_node != self.hw.numa_node
        ):
            rate /= self.system.machine.numa_remote_slowdown
        machine = self.system.machine
        if machine.mem_contention_alpha > 0.0 and task.mem_intensity > 0.0:
            co = 0.0
            for other in self.system.cores:
                if other is self or other.current is None:
                    continue
                if (
                    machine.mem_contention_scope == "node"
                    and other.hw.numa_node != self.hw.numa_node
                ):
                    continue
                co += other.current.mem_intensity
            rate /= 1.0 + task.mem_intensity * machine.mem_contention_alpha * co
        return rate

    def _should_preempt(self, woken: Task) -> bool:
        cur = self.current
        if cur is None:
            return True
        # charge so the comparison uses the current task's live vruntime
        self._charge_current()
        return woken.vruntime + self.params.wakeup_granularity < cur.vruntime

    def _go_idle(self) -> None:
        """Run idle-balance hooks; the queue may be refilled by a pull."""
        self.idle_since = self.engine.now
        self.stats.idle_balance_calls += 1
        for cb in list(self.idle_callbacks):
            cb(self)
            if len(self.rq) > 0:
                break
        if len(self.rq) == 0:
            self._notify_sibling_rate_change()

    def _cancel_event(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._gen += 1

    def _notify_sibling_rate_change(self) -> None:
        """SMT siblings' execution rates depend on our occupancy."""
        if self.hw.smt_sibling is None or self.system.machine.smt_derate >= 1.0:
            return
        sib = self.sibling()
        if sib is None or sib.current is None or sib._in_resched:
            return
        # Only interrupt the sibling if its execution rate actually
        # changed; unconditional rescheds would ping-pong forever.
        if sib.effective_rate(sib.current) != sib._rate_at_dispatch:
            sib.resched()

    def __repr__(self) -> str:
        cur = self.current.name if self.current else "idle"
        return f"<Core {self.cid} running={cur} queued={len(self.rq)}>"
