"""Run queues: CFS (vruntime-ordered) and O(1)-style round robin.

``CfsRunQueue`` stands in for the kernel's red-black tree of schedulable
entities.  A binary heap with lazy deletion gives the same O(log n)
pick-next/insert complexity; arbitrary removal (needed constantly by
the balancers) marks entries dead and ignores them on pop.

``RoundRobinQueue`` models the pre-CFS O(1) scheduler's active/expired
arrays, which is the substrate the DWRR prototype (Linux 2.6.22) was
built on -- the paper could only evaluate DWRR on the 2.6.22 O(1)
kernel because the 2.6.24 CFS port did not boot.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Optional

from repro.sched.task import Task

__all__ = ["CfsRunQueue", "O1RunQueue", "RoundRobinQueue"]

_entry_counter = itertools.count()


class CfsRunQueue:
    """Priority queue of runnable (not running) tasks, keyed by vruntime.

    Also maintains ``min_vruntime``, the monotonically increasing
    baseline CFS uses to normalize sleepers and migrating tasks.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Task]] = []
        self._live: dict[int, tuple[float, int, Task]] = {}  # tid -> entry
        self.min_vruntime: float = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, task: Task) -> bool:
        return task.tid in self._live

    def tasks(self) -> list[Task]:
        """Snapshot of queued tasks (unordered)."""
        return [e[2] for e in self._live.values()]

    def total_weight(self) -> int:
        return sum(t.weight for t in self.tasks())

    # ------------------------------------------------------------------
    def push(self, task: Task) -> None:
        if task.tid in self._live:
            raise ValueError(f"{task} already queued")
        entry = (task.vruntime, next(_entry_counter), task)
        self._live[task.tid] = entry
        heapq.heappush(self._heap, entry)

    def pop_min(self) -> Optional[Task]:
        """Remove and return the leftmost (smallest vruntime) task."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            task = entry[2]
            if self._live.get(task.tid) is entry:
                del self._live[task.tid]
                self._advance_min(task.vruntime)
                return task
        return None

    def peek_min(self) -> Optional[Task]:
        while self._heap:
            entry = self._heap[0]
            task = entry[2]
            if self._live.get(task.tid) is entry:
                return task
            heapq.heappop(self._heap)
        return None

    def remove(self, task: Task) -> None:
        """Remove an arbitrary task (migration/sleep).  O(1) amortized."""
        if task.tid not in self._live:
            raise ValueError(f"{task} not queued")
        del self._live[task.tid]
        # stale heap entry is skipped lazily by pop_min/peek_min

    def max_vruntime(self) -> float:
        """Largest vruntime among queued tasks (for sched_yield)."""
        if not self._live:
            return self.min_vruntime
        return max(e[0] for e in self._live.values())

    def requeue(self, task: Task) -> None:
        """Re-insert after a vruntime change (yield, slice expiry)."""
        if task.tid in self._live:
            self.remove(task)
        self.push(task)

    # ------------------------------------------------------------------
    def _advance_min(self, candidate: float) -> None:
        """min_vruntime never decreases (CFS invariant)."""
        if candidate > self.min_vruntime:
            self.min_vruntime = candidate

    def note_current_vruntime(self, vruntime: float) -> None:
        """Fold the running task's vruntime into min_vruntime tracking.

        CFS updates ``min_vruntime`` from min(leftmost, current); since
        the current task usually has the smallest vruntime this is the
        main driver of the baseline.
        """
        leftmost = self.peek_min()
        floor = vruntime if leftmost is None else min(vruntime, leftmost.vruntime)
        self._advance_min(floor)


class O1RunQueue:
    """O(1)-scheduler facade with the CFS run-queue interface.

    Lets :class:`~repro.sched.core.CoreSim` run with pre-CFS semantics
    (the Linux 2.6.22 kernel the DWRR prototype was built on): strict
    FIFO round robin over an active/expired array pair, no virtual
    runtime.  ``pop_min`` pops the active head, swapping in the expired
    array when active drains; vruntime-related methods are no-ops so
    the CFS-oriented call sites stay untouched.
    """

    def __init__(self) -> None:
        self._rr = RoundRobinQueue()
        self.min_vruntime: float = 0.0

    def __len__(self) -> int:
        return len(self._rr)

    def __contains__(self, task: Task) -> bool:
        return task in self._rr

    def tasks(self) -> list[Task]:
        return self._rr.tasks()

    def total_weight(self) -> int:
        return sum(t.weight for t in self.tasks())

    def push(self, task: Task) -> None:
        if task in self._rr:
            raise ValueError(f"{task} already queued")
        self._rr.push_active(task)

    def pop_min(self) -> Optional[Task]:
        t = self._rr.pop_active()
        if t is None and self._rr.expired:
            self._rr.swap()
            t = self._rr.pop_active()
        return t

    def peek_min(self) -> Optional[Task]:
        if self._rr.active:
            return self._rr.active[0]
        if self._rr.expired:
            return self._rr.expired[0]
        return None

    def remove(self, task: Task) -> None:
        self._rr.remove(task)

    def max_vruntime(self) -> float:
        return self.min_vruntime

    def requeue(self, task: Task) -> None:
        self.remove(task)
        self.push(task)

    def note_current_vruntime(self, vruntime: float) -> None:
        """vruntime is meaningless under O(1); ignore it."""


class RoundRobinQueue:
    """O(1)-scheduler-style active/expired FIFO pair.

    Tasks run in FIFO order from the *active* queue; a task that
    exhausts its (round) slice moves to *expired*.  When active drains
    the arrays swap.  Used directly by :class:`O1RunQueue` and, at the
    balancer level, mirrored by DWRR's round bookkeeping -- see
    :class:`repro.balance.dwrr.DwrrBalancer`.
    """

    def __init__(self) -> None:
        self.active: deque[Task] = deque()
        self.expired: deque[Task] = deque()

    def __len__(self) -> int:
        return len(self.active) + len(self.expired)

    def __contains__(self, task: Task) -> bool:
        return task in self.active or task in self.expired

    def tasks(self) -> list[Task]:
        return list(self.active) + list(self.expired)

    def push_active(self, task: Task) -> None:
        self.active.append(task)

    def push_expired(self, task: Task) -> None:
        self.expired.append(task)

    def pop_active(self) -> Optional[Task]:
        return self.active.popleft() if self.active else None

    def remove(self, task: Task) -> None:
        try:
            self.active.remove(task)
        except ValueError:
            self.expired.remove(task)

    def swap(self) -> None:
        """Swap active and expired arrays (round advance)."""
        self.active, self.expired = self.expired, self.active
