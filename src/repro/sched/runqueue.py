"""Run queues: CFS (vruntime-ordered) and O(1)-style round robin.

``CfsRunQueue`` stands in for the kernel's red-black tree of schedulable
entities.  A binary heap with lazy deletion gives the same O(log n)
pick-next/insert complexity; arbitrary removal (needed constantly by
the balancers) marks entries dead and ignores them on pop.

``RoundRobinQueue`` models the pre-CFS O(1) scheduler's active/expired
arrays, which is the substrate the DWRR prototype (Linux 2.6.22) was
built on -- the paper could only evaluate DWRR on the 2.6.22 O(1)
kernel because the 2.6.24 CFS port did not boot.

Aggregate maintenance
---------------------
``total_weight`` and ``max_vruntime`` are *maintained* on push/pop/
remove instead of recomputed by scanning the queue: ``slice_for`` needs
the total weight on every dispatch and the ``sched_yield`` path needs
the rightmost vruntime on every yield, so recomputation made both
O(queue length) per event.  Weights are integers, so the running total
is exact; the maximum is served by a second lazy-deletion heap keyed by
negated vruntime (vruntime is immutable while a task is queued --
``requeue`` re-inserts -- so a heap entry can never go stale in value,
only in liveness).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Optional

from repro.sched.task import Task

__all__ = ["CfsRunQueue", "O1RunQueue", "RoundRobinQueue"]

_entry_counter = itertools.count()

#: rebuild a lazy-deletion heap when stale entries outnumber live ones
#: by this factor (plus a small constant so tiny queues never compact)
_COMPACT_FACTOR = 4
_COMPACT_MIN = 64


class CfsRunQueue:
    """Priority queue of runnable (not running) tasks, keyed by vruntime.

    Also maintains ``min_vruntime``, the monotonically increasing
    baseline CFS uses to normalize sleepers and migrating tasks.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Task]] = []
        self._live: dict[int, tuple[float, int, Task]] = {}  # tid -> entry
        #: max-side lazy heap: (-vruntime, -counter, min-heap entry)
        self._max_heap: list[tuple[float, int, tuple[float, int, Task]]] = []
        self._total_weight: int = 0
        #: queue length as a plain attribute: hot readers (dispatch,
        #: balancer sweeps) skip the __len__ call frame
        self.count: int = 0
        self.min_vruntime: float = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def __contains__(self, task: Task) -> bool:
        return task.tid in self._live

    def tasks(self) -> list[Task]:
        """Snapshot of queued tasks (unordered)."""
        return [e[2] for e in self._live.values()]

    def total_weight(self) -> int:
        """Summed weight of queued tasks (maintained, O(1))."""
        return self._total_weight

    # ------------------------------------------------------------------
    def push(self, task: Task) -> None:
        if task.tid in self._live:
            raise ValueError(f"{task} already queued")
        # the counter only tie-breaks equal vruntimes *within* one heap;
        # absolute values never leave the process, so workers drifting
        # apart cannot change any schedule
        entry = (task.vruntime, next(_entry_counter), task)  # sim-lint: ignore[FLOW004]
        self._live[task.tid] = entry
        heapq.heappush(self._heap, entry)
        heapq.heappush(self._max_heap, (-entry[0], -entry[1], entry))
        self._total_weight += task.weight
        self.count += 1

    def pop_min(self) -> Optional[Task]:
        """Remove and return the leftmost (smallest vruntime) task."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            task = entry[2]
            if self._live.get(task.tid) is entry:
                del self._live[task.tid]
                self._total_weight -= task.weight
                self.count -= 1
                if task.vruntime > self.min_vruntime:  # _advance_min, inlined
                    self.min_vruntime = task.vruntime
                return task
        return None

    def peek_min(self) -> Optional[Task]:
        while self._heap:
            entry = self._heap[0]
            task = entry[2]
            if self._live.get(task.tid) is entry:
                return task
            heapq.heappop(self._heap)
        return None

    def remove(self, task: Task) -> None:
        """Remove an arbitrary task (migration/sleep).  O(1) amortized."""
        entry = self._live.pop(task.tid, None)
        if entry is None:
            raise ValueError(f"{task} not queued")
        self._total_weight -= task.weight
        self.count -= 1
        # stale heap entries are skipped lazily by pop_min/peek_min/
        # max_vruntime; compact when they dominate so removal-heavy
        # balancer churn cannot grow the heaps without bound
        if len(self._heap) > _COMPACT_FACTOR * len(self._live) + _COMPACT_MIN:
            self._compact()

    def max_vruntime(self) -> float:
        """Largest vruntime among queued tasks (for sched_yield).

        Served from the max-side lazy heap: stale top entries are
        discarded until a live one surfaces, so the amortized cost is
        O(log n) against the O(n) scan this replaces.
        """
        heap = self._max_heap
        live = self._live
        while heap:
            entry = heap[0][2]
            if live.get(entry[2].tid) is entry:
                return entry[0]
            heapq.heappop(heap)
        return self.min_vruntime

    def requeue(self, task: Task) -> None:
        """Re-insert after a vruntime change (yield, slice expiry)."""
        if task.tid in self._live:
            self.remove(task)
        self.push(task)

    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop stale lazy-deletion entries and re-heapify in place."""
        live = self._live
        self._heap = [e for e in self._heap if live.get(e[2].tid) is e]
        heapq.heapify(self._heap)
        self._max_heap = [m for m in self._max_heap if live.get(m[2][2].tid) is m[2]]
        heapq.heapify(self._max_heap)

    def _advance_min(self, candidate: float) -> None:
        """min_vruntime never decreases (CFS invariant)."""
        if candidate > self.min_vruntime:
            self.min_vruntime = candidate

    def note_current_vruntime(self, vruntime: float) -> None:
        """Fold the running task's vruntime into min_vruntime tracking.

        CFS updates ``min_vruntime`` from min(leftmost, current); since
        the current task usually has the smallest vruntime this is the
        main driver of the baseline.  Runs on every charge, so the
        peek-min scan is inlined (entry[0] is the queued task's
        vruntime: it is immutable while queued).
        """
        floor = vruntime
        heap = self._heap
        live = self._live
        while heap:
            entry = heap[0]
            if live.get(entry[2].tid) is entry:
                if entry[0] < floor:
                    floor = entry[0]
                break
            heapq.heappop(heap)
        if floor > self.min_vruntime:
            self.min_vruntime = floor


class O1RunQueue:
    """O(1)-scheduler facade with the CFS run-queue interface.

    Lets :class:`~repro.sched.core.CoreSim` run with pre-CFS semantics
    (the Linux 2.6.22 kernel the DWRR prototype was built on): strict
    FIFO round robin over an active/expired array pair, no virtual
    runtime.  ``pop_min`` pops the active head, swapping in the expired
    array when active drains; vruntime-related methods are no-ops so
    the CFS-oriented call sites stay untouched.
    """

    def __init__(self) -> None:
        self._rr = RoundRobinQueue()
        self._total_weight: int = 0
        #: queue length as a plain attribute (see CfsRunQueue.count)
        self.count: int = 0
        self.min_vruntime: float = 0.0

    def __len__(self) -> int:
        return self.count

    def __contains__(self, task: Task) -> bool:
        return task in self._rr

    def tasks(self) -> list[Task]:
        return self._rr.tasks()

    def total_weight(self) -> int:
        """Summed weight of queued tasks (maintained, O(1))."""
        return self._total_weight

    def push(self, task: Task) -> None:
        if task in self._rr:
            raise ValueError(f"{task} already queued")
        self._rr.push_active(task)
        self._total_weight += task.weight
        self.count += 1

    def pop_min(self) -> Optional[Task]:
        t = self._rr.pop_active()
        if t is None and self._rr.expired:
            self._rr.swap()
            t = self._rr.pop_active()
        if t is not None:
            self._total_weight -= t.weight
            self.count -= 1
        return t

    def peek_min(self) -> Optional[Task]:
        if self._rr.active:
            return self._rr.active[0]
        if self._rr.expired:
            return self._rr.expired[0]
        return None

    def remove(self, task: Task) -> None:
        self._rr.remove(task)
        self._total_weight -= task.weight
        self.count -= 1

    def max_vruntime(self) -> float:
        return self.min_vruntime

    def requeue(self, task: Task) -> None:
        self.remove(task)
        self.push(task)

    def note_current_vruntime(self, vruntime: float) -> None:
        """vruntime is meaningless under O(1); ignore it."""


class RoundRobinQueue:
    """O(1)-scheduler-style active/expired FIFO pair.

    Tasks run in FIFO order from the *active* queue; a task that
    exhausts its (round) slice moves to *expired*.  When active drains
    the arrays swap.  Used directly by :class:`O1RunQueue` and, at the
    balancer level, mirrored by DWRR's round bookkeeping -- see
    :class:`repro.balance.dwrr.DwrrBalancer`.

    A tid -> deque membership map (mirroring ``CfsRunQueue``'s tid map)
    makes ``__contains__`` O(1) and lets :meth:`remove` go straight to
    the holding deque -- absence raises without scanning either array,
    and presence costs one ``deque.remove`` instead of up to two.  The
    map stores the deque *object*, so :meth:`swap` (which only
    exchanges the ``active``/``expired`` attribute bindings) needs no
    fixup.
    """

    def __init__(self) -> None:
        self.active: deque[Task] = deque()
        self.expired: deque[Task] = deque()
        self._where: dict[int, deque[Task]] = {}  # tid -> holding deque

    def __len__(self) -> int:
        return len(self.active) + len(self.expired)

    def __contains__(self, task: Task) -> bool:
        return task.tid in self._where

    def tasks(self) -> list[Task]:
        return list(self.active) + list(self.expired)

    def push_active(self, task: Task) -> None:
        self.active.append(task)
        self._where[task.tid] = self.active

    def push_expired(self, task: Task) -> None:
        self.expired.append(task)
        self._where[task.tid] = self.expired

    def pop_active(self) -> Optional[Task]:
        if not self.active:
            return None
        task = self.active.popleft()
        del self._where[task.tid]
        return task

    def remove(self, task: Task) -> None:
        dq = self._where.pop(task.tid, None)
        if dq is None:
            raise ValueError(f"{task} not queued")
        dq.remove(task)

    def swap(self) -> None:
        """Swap active and expired arrays (round advance)."""
        self.active, self.expired = self.expired, self.active
