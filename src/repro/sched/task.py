"""Task model: states, wait modes, programs and accounting.

A :class:`Task` is the unit the schedulers manage -- the paper's
footnote 2 applies here too: "Linux does not differentiate between
threads and processes: these are all tasks."

Behaviour is supplied by a :class:`Program`, a small iterator-style
object that yields :class:`Action` records (compute for W microseconds,
wait at a barrier, sleep, exit).  Workload models in
:mod:`repro.apps` are just programs; the scheduler layer never knows
whether a task is an EP thread, a cpu-hog or a make job.

Accounting
----------
``exec_us`` accumulates wall-clock microseconds during which the task
occupied a core -- exactly what Linux's taskstats interface reports and
what the paper's ``speedbalancer`` samples to compute

    speed = t_exec / t_real.

Spinning and yielding in a synchronization operation *does* count as
execution time (the thread occupies the core), while sleeping does not;
this asymmetry is what makes queue-length balancing behave so
differently under ``sched_yield`` vs ``sleep`` barriers (Sections 3 and
6.2), and the simulator preserves it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.barriers import Barrier
    from repro.sched.core import CoreSim

__all__ = ["TaskState", "WaitMode", "ActionType", "Action", "Program", "Task"]

_task_ids = itertools.count()

#: CFS nice-to-weight uses a ~1.25x ratio per nice level; NICE_0_WEIGHT
#: is the weight of a default-priority task (Linux uses 1024).
NICE_0_WEIGHT = 1024


def nice_to_weight(nice: int) -> int:
    """Linux-style geometric nice weights (10% CPU per nice level)."""
    w = NICE_0_WEIGHT / (1.25 ** nice)
    return max(1, int(round(w)))


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    NEW = "new"  # created, not yet placed on a core
    RUNNABLE = "runnable"  # on a run queue, not executing
    RUNNING = "running"  # currently occupying a core
    SLEEPING = "sleeping"  # blocked; off every run queue
    FINISHED = "finished"  # exited


class WaitMode(enum.Enum):
    """How a task behaves while waiting at a synchronization point.

    Mirrors the implementations the paper evaluates:

    * ``SPIN`` -- poll continuously; stays on the run queue and burns
      CPU (OpenMP ``KMP_BLOCKTIME=infinite``, UPC polling mode).
    * ``YIELD`` -- loop on ``sched_yield``; stays on the run queue (so
      queue-length balancers count it as load) but cedes the core to
      co-runners (default UPC/MPI behaviour).
    * ``SLEEP`` -- block (``usleep``); leaves the run queue, letting the
      OS balancer pull work onto the idling core (Intel OpenMP after
      ``KMP_BLOCKTIME`` expires; the paper's modified UPC runtime).
    """

    SPIN = "spin"
    YIELD = "yield"
    SLEEP = "sleep"


class ActionType(enum.Enum):
    """What a program asks the scheduler to do next."""

    COMPUTE = "compute"
    WAIT_BARRIER = "wait_barrier"
    SLEEP = "sleep"
    EXIT = "exit"


@dataclass
class Action:
    """One step of a program.

    ``work_us`` is compute demand in microseconds *at clock factor
    1.0*; a core with ``clock_factor`` f retires it in ``work_us / f``
    wall microseconds (modulo NUMA and SMT derating -- see
    :mod:`repro.mem.cache_model`).
    """

    type: ActionType
    work_us: int = 0
    barrier: Optional["Barrier"] = None
    sleep_us: int = 0

    @staticmethod
    def compute(work_us: int) -> "Action":
        return Action(ActionType.COMPUTE, work_us=int(work_us))

    @staticmethod
    def wait(barrier: "Barrier") -> "Action":
        return Action(ActionType.WAIT_BARRIER, barrier=barrier)

    @staticmethod
    def sleep(sleep_us: int) -> "Action":
        return Action(ActionType.SLEEP, sleep_us=int(sleep_us))

    @staticmethod
    def exit() -> "Action":
        return Action(ActionType.EXIT)


class Program:
    """Behavioural script of a task.

    Subclasses override :meth:`next_action`; it is called whenever the
    task finishes its previous action and must return the next one.
    Programs must be deterministic given their constructor arguments
    and any rng streams they hold.
    """

    def next_action(self, task: "Task", now: int) -> Action:
        raise NotImplementedError

    def on_start(self, task: "Task", now: int) -> None:
        """Hook invoked when the task first becomes runnable."""

    def on_exit(self, task: "Task", now: int) -> None:
        """Hook invoked when the task exits."""


class _ExitProgram(Program):
    def next_action(self, task: "Task", now: int) -> Action:
        return Action.exit()


class Task:
    """A schedulable entity.

    Parameters
    ----------
    program:
        Behaviour script; defaults to immediate exit.
    name:
        Debugging label, e.g. ``"ep.t3"`` or ``"cpu-hog"``.
    nice:
        Unix nice value; converted to a CFS weight.
    footprint_bytes:
        Resident set size, used by the migration-cost model (Table 2's
        RSS column drives this for the NAS workloads).
    app_id:
        Identifier of the parallel application this task belongs to
        (None for unrelated system tasks).  The user-level speed
        balancer manages exactly the tasks of its application, the
        kernel-level balancers manage everything -- a distinction the
        paper draws repeatedly.
    mem_intensity:
        0.0 (pure CPU, EP-like) .. 1.0 (bandwidth bound).  Feeds the
        memory-bandwidth contention model that reproduces Table 2's
        sub-linear speedups for the memory-intensive NAS codes.
    """

    def __init__(
        self,
        program: Optional[Program] = None,
        name: str = "",
        nice: int = 0,
        footprint_bytes: int = 0,
        app_id: Optional[str] = None,
        mem_intensity: float = 0.0,
    ) -> None:
        # process-global tids are a debugging convenience only: schedule
        # comparisons go through the sanitizer, which renumbers tids in
        # creation order, so worker processes disagreeing on raw values
        # is harmless by construction
        self.tid: int = next(_task_ids)  # sim-lint: ignore[FLOW004]
        self.name = name or f"task{self.tid}"
        self.program: Program = program if program is not None else _ExitProgram()
        self.nice = nice
        self.weight = nice_to_weight(nice)
        self.footprint_bytes = footprint_bytes
        self.app_id = app_id
        self.mem_intensity = float(mem_intensity)

        self.state = TaskState.NEW
        # --- scheduling fields -----------------------------------------
        self.vruntime: float = 0.0
        self.cur_core: Optional[int] = None  # core id when RUNNABLE/RUNNING
        self.allowed_cores: Optional[frozenset[int]] = None  # None = anywhere
        # --- current action --------------------------------------------
        self.work_remaining: float = 0.0  # microseconds at factor 1.0
        self.wait_mode: Optional[WaitMode] = None
        self.waiting_on: Optional["Barrier"] = None
        self.spin_deadline: Optional[int] = None  # BLOCKTIME spin->sleep switch
        self.needs_advance: bool = True  # must ask program for next action
        # --- accounting --------------------------------------------------
        self.exec_us: int = 0  # total occupancy (the taskstats number)
        self.compute_us: int = 0  # occupancy that produced progress
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        # --- migration bookkeeping ---------------------------------------
        self.migrations: int = 0
        self.last_migrated_at: int = -(10 ** 12)
        self.last_descheduled_at: int = -(10 ** 12)
        self.last_core: Optional[int] = None
        self.migration_debt_us: float = 0.0  # cache-refill cost to pay
        #: cache of current-or-last core maintained by
        #: :meth:`repro.system.System.note_residency` (the per-core
        #: residency index the user-level balancers query); None once
        #: FINISHED or while the task has never touched a core.
        self.resident_core: Optional[int] = None
        # --- memory placement (NUMA) -------------------------------------
        self.home_node: Optional[int] = None  # first-touch node
        # --- DWRR fields --------------------------------------------------
        self.round_slice_remaining: int = 0
        self.round_number: int = 0
        #: set by the DWRR balancer when the task exhausted its round
        #: slice; a throttled task is runnable but parked off the queue
        #: until its core's round advances.
        self.throttled: bool = False

    # ------------------------------------------------------------------
    def pin(self, cores: frozenset[int] | set[int] | tuple[int, ...]) -> None:
        """Restrict the task to ``cores`` (``sched_setaffinity``)."""
        self.allowed_cores = frozenset(cores)

    def can_run_on(self, cid: int) -> bool:
        return self.allowed_cores is None or cid in self.allowed_cores

    @property
    def is_waiting(self) -> bool:
        """True while the task is inside a synchronization wait."""
        return self.waiting_on is not None

    def exec_time_at(self, now: int, core: Optional["CoreSim"] = None) -> int:
        """Cumulative execution time as of ``now``.

        If the task is currently running, the in-flight interval since
        its dispatch is included -- this is what reading taskstats at an
        arbitrary moment reports.
        """
        total = self.exec_us
        if self.state == TaskState.RUNNING and core is not None:
            total += max(0, now - core.dispatch_started_at)
        return total

    def cache_hot(self, now: int, hot_window_us: int) -> bool:
        """Linux's locality heuristic: ran within ``hot_window_us``.

        The paper (Section 2): "a task is designated as cache-hot if it
        has executed recently (~5ms) on the core".  A *running* task is
        trivially hot (and the Linux balancer never migrates it anyway).
        """
        if self.state == TaskState.RUNNING:
            return True
        return (now - self.last_descheduled_at) < hot_window_us

    def __repr__(self) -> str:
        return (
            f"<Task {self.name} tid={self.tid} {self.state.value}"
            f" core={self.cur_core} exec={self.exec_us}us mig={self.migrations}>"
        )
