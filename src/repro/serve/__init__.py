"""`repro serve` -- simulation-as-a-service over the content store.

The serving layer turns the batch pipeline
(:func:`repro.service.run_specs_cached`) into a long-lived multi-tenant
daemon without changing what a result *is*: a job submitted over HTTP
is keyed, executed, stored and digested exactly as a direct call would
key, execute, store and digest it (byte-identical results -- the
parity contract the serve tests and CI smoke assert).

Modules:

* :mod:`~repro.serve.protocol` -- wire spec codec, HTTP/1.1, SSE
* :mod:`~repro.serve.tenants`  -- queues, token buckets, service windows
* :mod:`~repro.serve.dispatch` -- speed-aware weighted-fair dispatcher
* :mod:`~repro.serve.workers`  -- sharded store + process/thread pools
* :mod:`~repro.serve.metrics`  -- counters, latency percentiles
* :mod:`~repro.serve.server`   -- the asyncio daemon
* :mod:`~repro.serve.client`   -- blocking stdlib client
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.dispatch import SpeedAwareDispatcher
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.protocol import (
    ProtocolError,
    spec_from_wire,
    spec_to_wire,
    wire_digest,
)
from repro.serve.server import (
    BackgroundServer,
    ReproServer,
    ServeConfig,
    run_server,
)
from repro.serve.tenants import AdmissionError, Tenant, TenantConfig
from repro.serve.workers import (
    ProcessWorkerPool,
    ShardedStore,
    ThreadWorkerPool,
    shard_index,
)

__all__ = [
    "AdmissionError",
    "BackgroundServer",
    "ProcessWorkerPool",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeMetrics",
    "ShardedStore",
    "SpeedAwareDispatcher",
    "Tenant",
    "TenantConfig",
    "ThreadWorkerPool",
    "percentile",
    "run_server",
    "shard_index",
    "spec_from_wire",
    "spec_to_wire",
    "wire_digest",
]
