"""Blocking client for the `repro serve` daemon (stdlib HTTP only).

:class:`ServeClient` is what `repro client ...` and the load-test
driver use: submit spec batches, poll status, stream SSE events, fetch
results and metrics.  It deliberately depends on nothing beyond
``http.client`` -- the daemon speaks one-request-per-connection
HTTP/1.1, so a connection per call is the protocol, not an
inefficiency.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence
from urllib.parse import urlsplit

from repro.harness.parallel import RunSpec
from repro.serve import clock as _clock
from repro.serve.protocol import spec_to_wire

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx daemon response, carrying the decoded error payload."""

    def __init__(self, status: int, payload: Any):
        message = (
            payload.get("error", str(payload))
            if isinstance(payload, dict)
            else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload

    @property
    def retry_after_s(self) -> Optional[float]:
        """The server-suggested backoff on a 429/503, if any."""
        if isinstance(self.payload, dict):
            value = self.payload.get("retry_after_s")
            if isinstance(value, (int, float)):
                return float(value)
        return None


@dataclass
class ServeClient:
    """Talk to one daemon at ``base_url`` (e.g. http://127.0.0.1:8421)."""

    base_url: str
    timeout_s: float = 60.0

    def _split(self) -> tuple[str, int]:
        parts = urlsplit(self.base_url)
        if parts.scheme != "http" or parts.hostname is None:
            raise ValueError(
                f"base_url must be http://host:port (got {self.base_url!r})"
            )
        return parts.hostname, parts.port or 80

    def _request(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Any:
        host, port = self._split()
        conn = http.client.HTTPConnection(host, port, timeout=self.timeout_s)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                decoded = json.loads(raw.decode()) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = raw.decode(errors="replace")
            if resp.status >= 400:
                raise ServeError(resp.status, decoded)
            return decoded
        finally:
            conn.close()

    # -- API calls ------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def submit(
        self, specs: Sequence[RunSpec], tenant: str = "default"
    ) -> dict:
        """Submit a spec batch; returns the 202 body (per-job views)."""
        return self._request(
            "POST",
            "/v1/jobs",
            {"tenant": tenant, "specs": [spec_to_wire(s) for s in specs]},
        )

    def submit_wires(self, wires: Sequence[dict], tenant: str = "default") -> dict:
        """Submit pre-encoded wire specs (the CLI's spec-file path)."""
        return self._request(
            "POST", "/v1/jobs", {"tenant": tenant, "specs": list(wires)}
        )

    def status(self, digest: str) -> dict:
        return self._request("GET", f"/v1/jobs/{digest}")

    def jobs(self, tenant: Optional[str] = None) -> list[dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def result(self, digest: str) -> dict:
        return self._request("GET", f"/v1/results/{digest}")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    # -- SSE ------------------------------------------------------------
    def events(self, digest: str) -> Iterator[tuple[str, dict]]:
        """Stream ``(event, data)`` pairs for one job until ``end``.

        Yields every status transition the daemon publishes (including
        the replay of transitions that happened before the stream was
        opened), terminating after the ``end`` event.
        """
        host, port = self._split()
        conn = http.client.HTTPConnection(host, port, timeout=self.timeout_s)
        try:
            conn.request("GET", f"/v1/jobs/{digest}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                try:
                    decoded = json.loads(raw.decode()) if raw else None
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = raw.decode(errors="replace")
                raise ServeError(resp.status, decoded)
            event, data = "", ""
            while True:
                line = resp.fp.readline()
                if not line:
                    return
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("event: "):
                    event = text[len("event: "):]
                elif text.startswith("data: "):
                    data = text[len("data: "):]
                elif text == "" and event:
                    yield event, json.loads(data) if data else {}
                    if event == "end":
                        return
                    event, data = "", ""
        finally:
            conn.close()

    # -- polling --------------------------------------------------------
    def wait(
        self,
        digest: str,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the view.

        Raises :class:`TimeoutError` if ``timeout_s`` elapses first.
        """
        deadline = (
            _clock.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            view = self.status(digest)
            if view["state"] in ("done", "cached", "failed"):
                return view
            if deadline is not None and _clock.monotonic() > deadline:
                raise TimeoutError(
                    f"job {digest[:12]}... still {view['state']} after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)
