"""The serving layer's single sanctioned wall-clock source.

Everything under :mod:`repro.serve` lives *outside* simulated time: it
schedules real network I/O, measures real latencies and rate-limits
real clients, so -- like :mod:`repro.harness.bench` -- it is
legitimately wall-clock-bound.  The determinism linter's SIM003 rule
bans wall-clock reads exactly because simulation code must use
``engine.now``; the serving layer concentrates its one exempt read
here so every other serve module stays clean under the rule and every
consumer takes an injectable ``clock`` callable (tests pass a fake).
"""

from __future__ import annotations

import time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Seconds from the process-wide monotonic clock.

    The one SIM003-exempt wall-clock read of the serving layer
    (mirroring the ``repro/harness/bench.py`` precedent): admission
    windows, token buckets, latency percentiles and worker-timeout
    deadlines are all measured in real seconds, never simulated ones.
    """
    return time.monotonic()  # sim-lint: ignore[SIM003]
