"""Speed-aware weighted-fair dispatch across tenants.

The paper's thesis, applied to the serving layer: balancing on queue
*length* starves whoever is slow.  A dispatcher that always drains the
longest queue hands the worker pool to the flooding tenant (its queue
is always longest), while a round-robin over queues hands equal *turn
counts* to tenants whose jobs differ 100x in cost -- the tenant with
heavy jobs eats the pool either way.  What admission should equalize
is the *service speed* each tenant observes: worker-busy seconds
received per wall second, per unit weight.

:class:`SpeedAwareDispatcher` therefore pulls from the **slowest-served
eligible tenant** -- minimum ``service_share()`` (trailing-window busy
rate over weight, :class:`~repro.serve.tenants.ServiceWindow`) among
tenants with queued work.  Consequences, asserted by the fairness
tests:

* a flooding tenant's share rises as its jobs complete, so every other
  tenant's queued work is preferred until shares level -- no
  starvation, regardless of queue-length ratios;
* tenants with expensive jobs accumulate share *faster* per job, so
  they get proportionally fewer turns -- cheap interactive submissions
  interleave ahead of background sweeps exactly as Lim & Min's
  interactivity-aware balancer prioritizes the latency-sensitive
  workload;
* weights buy proportional service: doubling a tenant's weight halves
  its measured share, moving it earlier in the order.

Ties (e.g. all-idle startup) break on tenant name, keeping dispatch
order deterministic for the tests.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.serve.tenants import Tenant

__all__ = ["SpeedAwareDispatcher"]


class SpeedAwareDispatcher:
    """Pick the slowest-served eligible tenant (see module docs)."""

    def __init__(self) -> None:
        #: dispatch decisions taken, exposed via /v1/metrics
        self.decisions = 0

    def pick(
        self,
        tenants: Iterable[Tenant],
        now: Optional[float] = None,
        eligible: Optional[Callable[[Tenant], bool]] = None,
    ) -> Optional[Tenant]:
        """The tenant to serve next, or ``None`` if nothing is eligible.

        ``eligible`` narrows candidacy beyond queue-nonempty -- the
        server passes "has a job routable to this idle worker's shard"
        (:meth:`~repro.serve.tenants.Tenant.has_routable`).
        """
        best: Optional[Tenant] = None
        best_key: Optional[tuple[float, str]] = None
        for tenant in tenants:
            if not tenant.queue:
                continue
            if eligible is not None and not eligible(tenant):
                continue
            key = (tenant.service_share(now), tenant.name)
            if best_key is None or key < best_key:
                best, best_key = tenant, key
        if best is not None:
            self.decisions += 1
        return best
