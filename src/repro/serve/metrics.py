"""Serving metrics: counters, latency percentiles, utilization.

Everything ``GET /v1/metrics`` reports is computed here from plain
monotonic counters and a bounded reservoir of completion latencies --
no background sampling threads, no wall-clock reads outside the
injected ``clock``.  The snapshot is a plain JSON-able dict so the
fairness and backpressure tests can assert on exact counter values.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Mapping, Optional

from repro.serve import clock as _clock
from repro.serve.tenants import Tenant

__all__ = ["ServeMetrics", "percentile"]


def percentile(samples: list[float], p: float) -> float:
    """Linear-interpolated percentile ``p`` (0..100) of ``samples``.

    Returns 0.0 for an empty list -- the metrics endpoint reports
    zeros rather than nulls before any job completes.
    """
    if not samples:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100] (got {p})")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class ServeMetrics:
    """Daemon-wide counters + a bounded latency reservoir."""

    def __init__(
        self,
        clock: Callable[[], float] = _clock.monotonic,
        latency_samples: int = 4096,
    ):
        self._clock = clock
        self.started_at = clock()
        self.requests = 0
        self.bad_requests = 0
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.deduped = 0  #: submissions resolved to an existing job/entry
        self.completed = 0
        self.cached = 0  #: completions served from the store, no simulation
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.sse_streams = 0
        self.drains = 0
        self._latencies: deque[float] = deque(maxlen=latency_samples)
        self._worker_busy: dict[int, float] = {}

    # -- recording ------------------------------------------------------
    def record_completion(self, state: str, latency_s: float) -> None:
        """Count one terminal transition and sample its latency.

        Latency is submit-to-terminal wall seconds -- the number a
        closed-loop client observes, which is what the percentile rows
        of ``/v1/metrics`` summarize.
        """
        self.completed += 1
        if state == "cached":
            self.cached += 1
        elif state == "failed":
            self.failed += 1
        self._latencies.append(latency_s)

    def record_worker_busy(self, worker_id: int, busy_s: float) -> None:
        self._worker_busy[worker_id] = (
            self._worker_busy.get(worker_id, 0.0) + busy_s
        )

    # -- snapshot -------------------------------------------------------
    def latency_percentiles(self) -> dict[str, float]:
        samples = list(self._latencies)
        return {
            "p50_s": percentile(samples, 50.0),
            "p95_s": percentile(samples, 95.0),
            "p99_s": percentile(samples, 99.0),
            "samples": float(len(samples)),
        }

    def utilization(self, n_workers: int, now: Optional[float] = None) -> float:
        """Fraction of worker capacity spent busy since startup."""
        if n_workers < 1:
            return 0.0
        elapsed = max(1e-9, (self._clock() if now is None else now) - self.started_at)
        busy = sum(self._worker_busy.values())
        return min(1.0, busy / (n_workers * elapsed))

    def snapshot(
        self,
        tenants: Iterable[Tenant] = (),
        n_workers: int = 0,
        inflight: Mapping[str, str] | None = None,
    ) -> dict:
        """The full ``/v1/metrics`` payload as a plain dict."""
        now = self._clock()
        executed = self.completed - self.cached - self.failed
        hits = self.cached + self.deduped
        lookups = hits + executed
        tenant_rows = {}
        for t in sorted(tenants, key=lambda t: t.name):
            c = t.counters
            tenant_rows[t.name] = {
                "queue_depth": len(t.queue),
                "queue_limit": t.config.queue_limit,
                "weight": t.config.weight,
                "admitted": c.admitted,
                "rejected": c.rejected,
                "dispatched": c.dispatched,
                "completed": c.completed,
                "cached": c.cached,
                "failed": c.failed,
                "service_rate_busy_s_per_s": t.window.rate(now),
                "service_share": t.service_share(now),
            }
        return {
            "uptime_s": now - self.started_at,
            "requests": self.requests,
            "bad_requests": self.bad_requests,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "deduped": self.deduped,
            "completed": self.completed,
            "executed": executed,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "sse_streams": self.sse_streams,
            "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
            "latency": self.latency_percentiles(),
            "workers": {
                "count": n_workers,
                "inflight": len(inflight or {}),
                "utilization": self.utilization(n_workers, now),
                "busy_s": {str(k): v for k, v in sorted(self._worker_busy.items())},
            },
            "tenants": tenant_rows,
        }
