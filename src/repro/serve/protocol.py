"""Wire protocol of the serving layer: specs, HTTP/1.1, SSE.

Three small vocabularies live here, shared by the daemon
(:mod:`repro.serve.server`), the worker pool
(:mod:`repro.serve.workers`) and the client
(:mod:`repro.serve.client`):

* **spec codec** -- a submitted configuration travels as the *store
  key* of its :class:`~repro.harness.parallel.RunSpec`
  (:func:`repro.store.keys.spec_key`), so the wire form, the dedup
  key and the on-disk entry key are one and the same JSON tree.
  :func:`spec_from_wire` is the inverse: it resolves
  ``__dataclass__``/``__enum__``/``__function__`` references back to
  live objects, restricted to ``repro.*`` modules so a request body
  can never name arbitrary importable code.
* **HTTP/1.1 primitives** -- a deliberately minimal asyncio request
  reader and response encoder (one request per connection,
  ``Connection: close``).  The daemon serves JSON and SSE only; a
  full framework would add dependencies the container does not have.
* **SSE framing** -- ``event:``/``data:`` blocks for the
  ``GET /v1/jobs/{digest}/events`` stream.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.harness.parallel import RunSpec
from repro.store.keys import digest_of, spec_key

__all__ = [
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "error_body",
    "json_response",
    "read_request",
    "spec_from_wire",
    "spec_to_wire",
    "sse_event",
    "value_from_wire",
    "wire_digest",
]

#: request bodies beyond this are rejected with 413 before parsing
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A request (or a wire spec) violates the serving protocol."""


# ----------------------------------------------------------------------
# spec codec
# ----------------------------------------------------------------------
def spec_to_wire(spec: RunSpec) -> dict:
    """The JSON wire form of a spec: exactly its canonical store key.

    Using :func:`~repro.store.keys.spec_key` verbatim means
    ``digest_of(wire)`` *is* the store digest -- the daemon never has
    to reconstruct a spec just to learn its identity.
    """
    return spec_key(spec)


def wire_digest(wire: dict) -> str:
    """The content digest of a wire spec (= its store entry key)."""
    return digest_of(wire)


def _resolve_ref(ref: str, what: str) -> Any:
    """Resolve ``"module:qualname"`` from a wire tree, repro-only."""
    if not isinstance(ref, str) or ":" not in ref:
        raise ProtocolError(f"malformed {what} reference {ref!r}")
    mod, _, qual = ref.partition(":")
    if mod != "repro" and not mod.startswith("repro."):
        raise ProtocolError(
            f"{what} reference {ref!r} is outside the repro package; "
            "wire specs may only name repro.* code"
        )
    try:
        obj: Any = importlib.import_module(mod)
        for part in qual.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve {what} {ref!r} ({exc})") from None
    return obj


def value_from_wire(tree: Any) -> Any:
    """Invert :func:`~repro.store.keys.canonical_value` on a wire tree."""
    if tree is None or isinstance(tree, (bool, int, float, str)):
        return tree
    if isinstance(tree, list):
        return [value_from_wire(v) for v in tree]
    if isinstance(tree, dict):
        if "__enum__" in tree:
            ref = tree["__enum__"]
            if not isinstance(ref, str) or "." not in ref:
                raise ProtocolError(f"malformed enum reference {ref!r}")
            type_ref, _, member = ref.rpartition(".")
            enum_type = _resolve_ref(type_ref, "enum")
            try:
                return enum_type[member]
            except KeyError:
                raise ProtocolError(
                    f"{type_ref} has no member {member!r}"
                ) from None
        if "__dataclass__" in tree:
            cls = _resolve_ref(tree["__dataclass__"], "dataclass")
            if not dataclasses.is_dataclass(cls):
                raise ProtocolError(
                    f"{tree['__dataclass__']!r} is not a dataclass"
                )
            fields = tree.get("fields", {})
            if not isinstance(fields, dict):
                raise ProtocolError("dataclass wire form needs a fields object")
            return cls(**{k: value_from_wire(v) for k, v in fields.items()})
        if "__function__" in tree:
            return _resolve_ref(tree["__function__"], "function")
        if "__dict__" in tree:
            pairs = tree["__dict__"]
            if not isinstance(pairs, list):
                raise ProtocolError("__dict__ wire form needs a pair list")
            return {
                value_from_wire(k): value_from_wire(v) for k, v in pairs
            }
        return {k: value_from_wire(v) for k, v in tree.items()}
    raise ProtocolError(
        f"wire value {tree!r} (type {type(tree).__qualname__}) is not JSON"
    )


def spec_from_wire(wire: dict) -> RunSpec:
    """Reconstruct the :class:`RunSpec` behind one wire tree.

    Round-trip stable: ``spec_digest(spec_from_wire(w)) == wire_digest(w)``
    for every tree :func:`spec_to_wire` produces (asserted by the
    protocol tests), so the daemon, its workers and a direct
    ``run_specs_cached`` call all key one configuration identically.
    """
    if not isinstance(wire, dict):
        raise ProtocolError(f"wire spec must be an object, got {type(wire).__qualname__}")
    if wire.get("kind") != "run":
        raise ProtocolError(f"wire spec kind must be 'run', got {wire.get('kind')!r}")
    missing = {"machine", "app", "balancer", "seed", "engine"} - set(wire)
    if missing:
        raise ProtocolError(f"wire spec is missing field(s) {sorted(missing)}")
    machine = value_from_wire(wire["machine"])
    if not (isinstance(machine, str) or callable(machine)):
        raise ProtocolError(f"wire machine {machine!r} is neither a preset name nor a factory")
    app = value_from_wire(wire["app"])
    if not callable(app):
        raise ProtocolError(f"wire app {app!r} is not an AppSpec or factory")
    cores = value_from_wire(wire.get("cores"))
    params = wire.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("wire params must be an object")
    if not isinstance(wire["seed"], int) or isinstance(wire["seed"], bool):
        raise ProtocolError(f"wire seed must be an int, got {wire['seed']!r}")
    return RunSpec.make(
        machine,
        app,
        balancer=str(wire["balancer"]),
        cores=cores,
        seed=wire["seed"],
        engine=str(wire["engine"]),
        **{str(k): value_from_wire(v) for k, v in params.items()},
    )


# ----------------------------------------------------------------------
# HTTP/1.1 primitives
# ----------------------------------------------------------------------
@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  #: keys lower-cased
    body: bytes

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON ({exc})") from None


@dataclass
class Response:
    """One HTTP response; ``encode`` produces the full byte stream."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self, streaming: bool = False) -> bytes:
        """Full response bytes; ``streaming`` emits the head only,
        without ``Content-Length`` (the SSE mode: the client reads the
        event stream until EOF)."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = {
            "Content-Type": self.content_type,
            "Connection": "close",
            **({} if streaming else {"Content-Length": str(len(self.body))}),
            **self.headers,
        }
        for name in headers:
            lines.append(f"{name}: {headers[name]}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head if streaming else head + self.body


def json_response(
    payload: Any, status: int = 200, headers: Optional[dict[str, str]] = None
) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    return Response(status=status, body=body, headers=dict(headers or {}))


def error_body(status: int, message: str, **extra: Any) -> dict:
    """The uniform error payload: ``{"error": ..., "status": ...}``."""
    return {"error": message, "status": status, **extra}


async def read_request(reader: Any) -> Optional[Request]:
    """Parse one HTTP/1.1 request from an asyncio stream reader.

    Returns ``None`` on a cleanly closed connection before any bytes;
    raises :class:`ProtocolError` on malformed or oversized input.
    """
    import asyncio

    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large") from None
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise ProtocolError("request head is not latin-1") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length!r}") from None
    if n < 0 or n > MAX_BODY_BYTES:
        raise ProtocolError(f"request body of {n} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(n) if n else b""
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


# ----------------------------------------------------------------------
# SSE framing
# ----------------------------------------------------------------------
def sse_event(event: str, data: Any) -> bytes:
    """One Server-Sent-Events block: ``event:`` + single-line ``data:``."""
    payload = json.dumps(data, sort_keys=True)
    return f"event: {event}\ndata: {payload}\n\n".encode()
