"""The `repro serve` daemon: asyncio HTTP front over the sharded store.

One asyncio loop owns everything except simulation itself: it parses
requests, admits batches against per-tenant token buckets and bounded
queues, runs the speed-aware dispatcher whenever a worker goes idle,
and streams job lifecycles over SSE.  Simulations run in the
:mod:`repro.serve.workers` pool (one process per store shard);
completions re-enter the loop via ``call_soon_threadsafe``, so no
handler ever blocks on a simulation.

Endpoints (all JSON unless noted)::

    GET  /v1/healthz               liveness + drain state
    POST /v1/jobs                  submit a spec batch (202; 400/429/503)
    GET  /v1/jobs                  every job's status view
    GET  /v1/jobs/{digest}         one job's status view
    GET  /v1/jobs/{digest}/events  SSE stream of status transitions
    GET  /v1/results/{digest}      the stored result behind a digest
    GET  /v1/metrics               counters, percentiles, utilization

Lifecycle invariants, asserted by the serve tests and the CI
serve-smoke job:

* **parity** -- a result fetched from the daemon is byte-identical
  (same :func:`~repro.analysis.sanitizer.run_digest`) to the same spec
  run directly through :func:`repro.service.run_specs_cached`;
* **dedup** -- one digest is one job: resubmissions attach to the
  existing record, store hits complete instantly as ``cached``, and a
  worker re-checks its shard before running (drain-resume never runs a
  job twice);
* **backpressure** -- an over-rate or over-queue batch gets 429 with a
  concrete ``Retry-After``, atomically (nothing admitted, nothing
  consumed);
* **drain** -- SIGTERM stops admission (503), lets in-flight jobs
  finish, snapshots the still-queued remainder to
  ``serve-queue.json`` under the store root, and a restarted daemon
  resumes exactly that queue.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import re
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.metrics.export import result_to_dict
from repro.serve import clock as _clock
from repro.serve.dispatch import SpeedAwareDispatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    error_body,
    json_response,
    read_request,
    spec_from_wire,
    sse_event,
    wire_digest,
)
from repro.serve.tenants import AdmissionError, Tenant, TenantConfig
from repro.serve.workers import POOL_BACKENDS, ShardedStore, shard_index
from repro.store.keys import UnstorableSpecError

__all__ = [
    "BackgroundServer",
    "ReproServer",
    "ServeConfig",
    "SNAPSHOT_NAME",
    "run_server",
]

SNAPSHOT_NAME = "serve-queue.json"
SNAPSHOT_SCHEMA = 1

#: tenant names a request may introduce
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon is parameterized by."""

    store_root: str = ".repro-serve"
    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (tests); read it from ``server.port``
    port: int = 8421
    #: worker processes == store shards
    workers: int = 2
    #: "process" (production) or "thread" (in-suite tests)
    backend: str = "process"
    #: tenants declared up front; unknown tenants are created on first
    #: submit with the ``default_*`` knobs below
    tenants: tuple[TenantConfig, ...] = ()
    default_weight: float = 1.0
    default_rate: float = 50.0
    default_burst: float = 100.0
    default_queue_limit: int = 512
    #: service-speed measurement window (the dispatcher's memory)
    window_s: float = 30.0
    #: per-job wall-clock budget; a worker past it is killed + respawned
    job_timeout_s: Optional[float] = None
    #: dispatch attempts per job (1 = no retry)
    max_attempts: int = 2
    monitor_interval_s: float = 0.25
    #: override the per-job runner (tests inject sleepy/failing fakes;
    #: must be a module-level function for the process backend)
    runner: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1 (got {self.workers})")
        if self.backend not in POOL_BACKENDS:
            raise ValueError(
                f"unknown worker backend {self.backend!r}; expected one of "
                f"{sorted(POOL_BACKENDS)}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {self.max_attempts})")


class JobRecord:
    """One digest's lifecycle inside the daemon."""

    __slots__ = (
        "digest", "tenant", "wire", "state", "attempts", "error",
        "worker", "submitted_at", "started_at", "finished_at",
        "history", "subscribers",
    )

    def __init__(self, digest: str, tenant: str, wire: dict, now: float):
        self.digest = digest
        self.tenant = tenant
        self.wire = wire
        self.state = "pending"
        self.attempts = 0
        self.error = ""
        self.worker: Optional[int] = None
        self.submitted_at = now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: every status view published so far (SSE replay)
        self.history: list[dict] = []
        #: live SSE subscriber queues
        self.subscribers: list[asyncio.Queue] = []

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "cached", "failed")

    def view(self) -> dict:
        out: dict[str, Any] = {
            "digest": self.digest,
            "tenant": self.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.finished_at is not None:
            out["latency_s"] = self.finished_at - self.submitted_at
        return out


class ReproServer:
    """The daemon (see module docs).  Owned by one asyncio loop."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Callable[[], float] = _clock.monotonic,
    ):
        self.config = config
        self.store = ShardedStore(config.store_root, config.workers)
        self.metrics = ServeMetrics(clock=clock)
        self.dispatcher = SpeedAwareDispatcher()
        self.tenants: dict[str, Tenant] = {}
        for tc in config.tenants:
            self.tenants[tc.name] = Tenant(tc, config.window_s, clock)
        self.jobs: dict[str, JobRecord] = {}
        #: worker id -> (digest, deadline) while a job is on that worker
        self.busy: dict[int, tuple[str, float]] = {}
        self.idle: set[int] = set(range(config.workers))
        self.draining = False
        self.port = config.port
        self._clock = clock
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Any = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn workers, resume any queue snapshot, bind the socket."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        pool_cls = POOL_BACKENDS[self.config.backend]
        pool_kwargs = (
            {} if self.config.runner is None
            else {"runner": self.config.runner}
        )
        self._pool = pool_cls(
            self.store, on_result=self._on_result_threadsafe, **pool_kwargs
        )
        self._pool.start()
        self._resume_snapshot()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.job_timeout_s is not None:
            self._monitor_task = self._loop.create_task(self._monitor())
        self._try_dispatch()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Idempotent drain trigger (the SIGTERM handler)."""
        if self._drain_task is None and self._loop is not None:
            self._drain_task = self._loop.create_task(self.drain())

    async def drain(self) -> None:
        """Stop admitting, finish in-flight, snapshot, shut down."""
        if self.draining:
            return
        self.draining = True
        self.metrics.drains += 1
        while self.busy:
            await asyncio.sleep(0.02)
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        self._persist_snapshot()
        # release every live SSE stream before closing the socket
        for rec in self.jobs.values():
            for q in rec.subscribers:
                q.put_nowait(None)
        self._pool.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._stopped is not None
        self._stopped.set()

    # -- queue snapshot (drain <-> resume) ------------------------------
    @property
    def _snapshot_path(self) -> Path:
        return Path(self.config.store_root) / SNAPSHOT_NAME

    def _persist_snapshot(self) -> None:
        jobs = []
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            for digest in tenant.queue:
                jobs.append(
                    {
                        "tenant": name,
                        "digest": digest,
                        "wire": self.jobs[digest].wire,
                    }
                )
        path = self._snapshot_path
        if not jobs:
            with contextlib.suppress(FileNotFoundError):
                path.unlink()
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {"schema": SNAPSHOT_SCHEMA, "jobs": jobs},
                indent=2, sort_keys=True,
            )
            + "\n"
        )
        os.replace(tmp, path)

    def _resume_snapshot(self) -> None:
        path = self._snapshot_path
        try:
            snapshot = json.loads(path.read_text())
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"repro serve: ignoring unreadable queue snapshot "
                f"{path} ({exc})",
                file=sys.stderr,
            )
            return
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            print(
                f"repro serve: ignoring queue snapshot {path} with "
                f"schema {snapshot.get('schema')!r}",
                file=sys.stderr,
            )
            return
        now = self._clock()
        for job in snapshot.get("jobs", []):
            digest, wire = job["digest"], job["wire"]
            if digest in self.jobs:
                continue
            tenant = self._tenant(str(job["tenant"]))
            rec = JobRecord(digest, tenant.name, wire, now)
            self.jobs[digest] = rec
            # resumed work was admitted by the previous daemon; it
            # re-enters the queue without consuming tokens again
            tenant.counters.admitted += 1
            tenant.queue.append(digest)
            self.metrics.submitted += 1
            self.metrics.admitted += 1
            self._publish(rec)
        with contextlib.suppress(FileNotFoundError):
            path.unlink()

    # -- tenants --------------------------------------------------------
    def _tenant(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            cfg = self.config
            tenant = Tenant(
                TenantConfig(
                    name=name,
                    weight=cfg.default_weight,
                    rate=cfg.default_rate,
                    burst=cfg.default_burst,
                    queue_limit=cfg.default_queue_limit,
                ),
                cfg.window_s,
                self._clock,
            )
            self.tenants[name] = tenant
        return tenant

    # -- dispatch -------------------------------------------------------
    def _routable(self, worker_id: int) -> Callable[[str], bool]:
        n = self.config.workers
        return lambda digest: shard_index(digest, n) == worker_id

    def _try_dispatch(self) -> None:
        """Hand queued jobs to idle workers, slowest-served first.

        Each idle worker can only take digests its shard owns, so the
        dispatcher is asked per worker with a routability predicate;
        the loop repeats until no idle worker can be fed.
        """
        if self.draining:
            return
        now = self._clock()
        progress = True
        while progress:
            progress = False
            for w in sorted(self.idle):
                routable = self._routable(w)
                tenant = self.dispatcher.pick(
                    (self.tenants[n] for n in sorted(self.tenants)),
                    now=now,
                    eligible=lambda t: t.has_routable(routable),
                )
                if tenant is None:
                    continue
                digest = tenant.pop_routable(routable)
                if digest is None:  # pragma: no cover - guarded by pick
                    continue
                rec = self.jobs[digest]
                rec.state = "running"
                rec.attempts += 1
                rec.worker = w
                rec.started_at = now
                self.idle.discard(w)
                deadline = (
                    now + self.config.job_timeout_s
                    if self.config.job_timeout_s is not None
                    else float("inf")
                )
                self.busy[w] = (digest, deadline)
                self._publish(rec)
                self._pool.submit(digest, rec.wire)
                progress = True

    def _on_result_threadsafe(self, msg: tuple) -> None:
        """Pump-thread entry: bounce a completion into the loop."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._on_result, msg)

    def _on_result(self, msg: tuple) -> None:
        worker_id, digest, state, error, busy_s = msg
        inflight = self.busy.get(worker_id)
        if inflight is None or inflight[0] != digest:
            # stale completion from a worker killed after a timeout --
            # the job was already failed/requeued; only the busy-time
            # accounting is still meaningful
            self.metrics.record_worker_busy(worker_id, busy_s)
            return
        del self.busy[worker_id]
        self.idle.add(worker_id)
        self.metrics.record_worker_busy(worker_id, busy_s)
        rec = self.jobs[digest]
        tenant = self.tenants[rec.tenant]
        tenant.record_service(busy_s)
        if (
            state == "failed"
            and rec.attempts < self.config.max_attempts
            and not self.draining
        ):
            self.metrics.retries += 1
            rec.state = "pending"
            rec.error = error
            rec.worker = None
            tenant.requeue_front(digest)
            self._publish(rec)
        else:
            self._finish(rec, state, error)
        self._try_dispatch()

    def _finish(self, rec: JobRecord, state: str, error: str = "") -> None:
        now = self._clock()
        rec.state = state
        rec.error = error
        rec.finished_at = now
        tenant = self.tenants[rec.tenant]
        tenant.counters.completed += 1
        if state == "cached":
            tenant.counters.cached += 1
        elif state == "failed":
            tenant.counters.failed += 1
        self.metrics.record_completion(state, now - rec.submitted_at)
        self._publish(rec)

    def _publish(self, rec: JobRecord) -> None:
        view = rec.view()
        rec.history.append(view)
        for q in rec.subscribers:
            q.put_nowait(view)

    # -- timeout monitor ------------------------------------------------
    async def _monitor(self) -> None:
        """Kill + respawn any worker past its job deadline."""
        while True:
            await asyncio.sleep(self.config.monitor_interval_s)
            now = self._clock()
            for w, (digest, deadline) in sorted(self.busy.items()):
                if now <= deadline:
                    continue
                self.metrics.timeouts += 1
                self._pool.kill_worker(w)
                del self.busy[w]
                self.idle.add(w)
                rec = self.jobs[digest]
                tenant = self.tenants[rec.tenant]
                tenant.record_service(self.config.job_timeout_s or 0.0)
                error = (
                    f"timeout: exceeded the {self.config.job_timeout_s:g}s "
                    "wall-clock budget; worker killed and respawned"
                )
                if rec.attempts < self.config.max_attempts and not self.draining:
                    self.metrics.retries += 1
                    rec.state = "pending"
                    rec.error = error
                    rec.worker = None
                    tenant.requeue_front(digest)
                    self._publish(rec)
                else:
                    self._finish(rec, "failed", error)
            self._try_dispatch()

    # -- HTTP -----------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                req = await read_request(reader)
            except ProtocolError as exc:
                self.metrics.bad_requests += 1
                writer.write(
                    json_response(error_body(400, str(exc)), 400).encode()
                )
                await writer.drain()
                return
            if req is None:
                return
            self.metrics.requests += 1
            try:
                resp = await self._route(req, writer)
            except ProtocolError as exc:
                self.metrics.bad_requests += 1
                resp = json_response(error_body(400, str(exc)), 400)
            except Exception as exc:  # noqa: BLE001 - last-resort handler
                resp = json_response(
                    error_body(500, f"{type(exc).__name__}: {exc}"), 500
                )
            if resp is not None:
                writer.write(resp.encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self, req: Request, writer: asyncio.StreamWriter
    ) -> Optional[Response]:
        path, method = req.path, req.method
        if path == "/v1/healthz" and method == "GET":
            return json_response(
                {"status": "draining" if self.draining else "ok",
                 "draining": self.draining, "workers": self.config.workers}
            )
        if path == "/v1/jobs" and method == "POST":
            return self._post_jobs(req)
        if path == "/v1/jobs" and method == "GET":
            tenant = req.query.get("tenant")
            views = [
                self.jobs[d].view()
                for d in sorted(self.jobs)
                if tenant is None or self.jobs[d].tenant == tenant
            ]
            return json_response({"jobs": views})
        if path == "/v1/metrics" and method == "GET":
            return json_response(
                self.metrics.snapshot(
                    self.tenants.values(),
                    n_workers=self.config.workers,
                    inflight={d: str(w) for w, (d, _) in self.busy.items()},
                )
            )
        m = re.fullmatch(r"/v1/jobs/([0-9a-f]{64})", path)
        if m and method == "GET":
            rec = self.jobs.get(m.group(1))
            if rec is None:
                return json_response(
                    error_body(404, f"unknown job {m.group(1)[:12]}..."), 404
                )
            return json_response(rec.view())
        m = re.fullmatch(r"/v1/jobs/([0-9a-f]{64})/events", path)
        if m and method == "GET":
            return await self._serve_events(m.group(1), writer)
        m = re.fullmatch(r"/v1/results/([0-9a-f]{64})", path)
        if m and method == "GET":
            return self._get_result(m.group(1))
        known = path in ("/v1/jobs", "/v1/metrics", "/v1/healthz") or re.fullmatch(
            r"/v1/(jobs|results)/[0-9a-f]{64}(/events)?", path
        )
        if known:
            return json_response(
                error_body(405, f"{method} not allowed on {path}"), 405
            )
        return json_response(error_body(404, f"no route {path}"), 404)

    # -- POST /v1/jobs --------------------------------------------------
    def _post_jobs(self, req: Request) -> Response:
        if self.draining:
            return json_response(
                error_body(503, "daemon is draining; not admitting jobs"),
                503,
                headers={"Retry-After": "5"},
            )
        body = req.json()
        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        wires = body.get("specs")
        if wires is None and "spec" in body:
            wires = [body["spec"]]
        if not isinstance(wires, list) or not wires:
            raise ProtocolError(
                "request body needs a non-empty 'specs' array (or one 'spec')"
            )
        tenant_name = body.get("tenant", "default")
        if not isinstance(tenant_name, str) or not _TENANT_RE.fullmatch(tenant_name):
            raise ProtocolError(
                f"invalid tenant {tenant_name!r} (want {_TENANT_RE.pattern})"
            )

        # validate + digest every spec before touching any state: a 400
        # or 429 must leave the daemon exactly as it found it
        digests: list[str] = []
        by_digest: dict[str, dict] = {}
        for i, wire in enumerate(wires):
            try:
                spec_from_wire(wire)
            except (ProtocolError, UnstorableSpecError, TypeError, ValueError) as exc:
                raise ProtocolError(f"specs[{i}]: {exc}") from None
            digest = wire_digest(wire)
            digests.append(digest)
            by_digest.setdefault(digest, wire)

        self.metrics.submitted += len(wires)
        tenant = self._tenant(tenant_name)
        now = self._clock()

        to_admit: list[str] = []
        fresh: dict[str, JobRecord] = {}
        for digest in by_digest:
            existing = self.jobs.get(digest)
            if existing is not None and not (existing.state == "failed"):
                self.metrics.deduped += 1
                continue
            rec = JobRecord(digest, tenant.name, by_digest[digest], now)
            entry = None
            try:
                entry = self.store.get(digest)
            except Exception:  # noqa: BLE001 - corrupt entry: recompute
                self.store.delete(digest)
            if entry is not None and entry.result is not None:
                # store hit: terminal immediately, no queue slot used
                fresh[digest] = rec
                continue
            to_admit.append(digest)
            fresh[digest] = rec

        try:
            tenant.admit(to_admit, now)
        except AdmissionError as exc:
            self.metrics.rejected += len(to_admit)
            retry_after = max(1, int(exc.retry_after_s + 0.999))
            return json_response(
                error_body(429, str(exc), retry_after_s=exc.retry_after_s),
                429,
                headers={"Retry-After": str(retry_after)},
            )

        for digest, rec in fresh.items():
            self.jobs[digest] = rec
            if digest in to_admit:
                self.metrics.admitted += 1
                self._publish(rec)
            else:
                tenant.counters.admitted += 1
                self._finish(rec, "cached")
        self._try_dispatch()
        return json_response(
            {
                "tenant": tenant.name,
                "jobs": [self.jobs[d].view() for d in digests],
            },
            status=202,
        )

    # -- GET /v1/results/{digest} ---------------------------------------
    def _get_result(self, digest: str) -> Response:
        rec = self.jobs.get(digest)
        if rec is not None and rec.state == "failed":
            return json_response(
                error_body(409, f"job failed: {rec.error}", state="failed"),
                409,
            )
        if rec is not None and not rec.terminal:
            return json_response(
                error_body(
                    404,
                    f"job is {rec.state}; result not available yet",
                    state=rec.state,
                ),
                404,
            )
        entry = self.store.get(digest)
        if entry is None or entry.result is None:
            return json_response(
                error_body(404, f"no stored result for {digest[:12]}..."), 404
            )
        return json_response(
            {"digest": digest, "result": result_to_dict(entry.result)}
        )

    # -- GET /v1/jobs/{digest}/events (SSE) -----------------------------
    async def _serve_events(
        self, digest: str, writer: asyncio.StreamWriter
    ) -> Optional[Response]:
        rec = self.jobs.get(digest)
        if rec is None:
            return json_response(
                error_body(404, f"unknown job {digest[:12]}..."), 404
            )
        self.metrics.sse_streams += 1
        queue: asyncio.Queue = asyncio.Queue()
        rec.subscribers.append(queue)
        try:
            writer.write(
                Response(200, content_type="text/event-stream").encode(
                    streaming=True
                )
            )
            # replay, then live: a late subscriber still sees the full
            # pending -> running -> terminal sequence, in order
            replay = list(rec.history)
            for view in replay:
                writer.write(sse_event("status", view))
            await writer.drain()
            last_state = replay[-1]["state"] if replay else None
            if last_state in ("done", "cached", "failed"):
                writer.write(sse_event("end", {"digest": digest, "state": last_state}))
                await writer.drain()
                return None
            while True:
                view = await queue.get()
                if view is None:  # drain: the daemon is shutting down
                    writer.write(
                        sse_event("end", {"digest": digest, "state": rec.state,
                                          "draining": True})
                    )
                    await writer.drain()
                    return None
                writer.write(sse_event("status", view))
                await writer.drain()
                if view["state"] in ("done", "cached", "failed"):
                    writer.write(
                        sse_event("end", {"digest": digest, "state": view["state"]})
                    )
                    await writer.drain()
                    return None
        finally:
            with contextlib.suppress(ValueError):
                rec.subscribers.remove(queue)


async def run_server(config: ServeConfig) -> None:
    """Run the daemon until SIGTERM/SIGINT completes a graceful drain."""
    import signal

    server = ReproServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, server.request_drain)
    print(
        f"repro serve: listening on http://{config.host}:{server.port} "
        f"({config.workers} worker(s), store {config.store_root})",
        flush=True,
    )
    await server.wait_stopped()
    print("repro serve: drained, bye", flush=True)


class BackgroundServer:
    """A daemon on a private loop thread (tests and the load driver).

    ``start()`` blocks until the socket is bound and exposes ``port``;
    ``drain()`` performs the same graceful shutdown SIGTERM would and
    joins the thread.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.server: Optional[ReproServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self, timeout_s: float = 30.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("serve daemon did not come up in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve daemon failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.server = ReproServer(self.config)
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_stopped()

    def drain(self, timeout_s: float = 60.0) -> None:
        if self._loop is None or self.server is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("serve daemon did not drain in time")
