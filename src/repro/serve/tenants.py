"""Per-tenant serving state: bounded queues, rate limits, service windows.

Each tenant of the daemon owns three small mechanisms:

* a **bounded FIFO queue** of admitted-but-undispatched job digests --
  the only place work waits, so "queue depth" is a per-tenant number
  the metrics endpoint can report exactly;
* a **token bucket** rate limiter over submissions.  An over-rate or
  over-queue batch is rejected *atomically* with
  :class:`AdmissionError` carrying a concrete ``retry_after_s`` -- the
  explicit-backpressure contract (HTTP 429 + ``Retry-After``) that
  replaces unbounded queueing;
* a **sliding service window** recording the worker-busy seconds the
  tenant actually received.  The dispatcher reads it as the tenant's
  observed *service speed* -- the serving-layer analogue of the
  paper's thread speed (executed time over wall time) -- and pulls the
  slowest-served eligible tenant first, instead of balancing on queue
  *length* the way naive FCFS admission would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.serve import clock as _clock

__all__ = [
    "AdmissionError",
    "ServiceWindow",
    "Tenant",
    "TenantConfig",
    "TokenBucket",
]


class AdmissionError(Exception):
    """A submission batch was rejected; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = max(0.0, retry_after_s)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    ``take(n, now)`` either consumes ``n`` tokens and returns ``None``
    or consumes nothing and returns the seconds until ``n`` tokens
    will be available -- the ``Retry-After`` the caller should send.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be > 0 (got {rate}, {burst})")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def take(self, n: float, now: float) -> Optional[float]:
        self._refill(now)
        if n > self.burst:
            # can never succeed by waiting; report the full-drain time
            # (the caller turns this into a hard 429 for the batch)
            return n / self.rate
        if self._tokens >= n:
            self._tokens -= n
            return None
        return (n - self._tokens) / self.rate

    def available(self, now: float) -> float:
        self._refill(now)
        return self._tokens


class ServiceWindow:
    """Sliding window of ``(finish_stamp, busy_s)`` service samples.

    ``rate(now)`` is the tenant's observed service speed: worker-busy
    seconds received per wall second over the trailing ``window_s``.
    A tenant nobody served recently decays toward zero and therefore
    toward the front of the dispatcher's slowest-served order --
    starvation-freedom falls out of the measurement itself.
    """

    def __init__(self, window_s: float = 30.0):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0 (got {window_s})")
        self.window_s = float(window_s)
        self._samples: deque[tuple[float, float]] = deque()
        self._total = 0.0

    def record(self, now: float, busy_s: float) -> None:
        self._samples.append((now, busy_s))
        self._total += busy_s
        self._expire(now)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0][0] < cutoff:
            _, busy = self._samples.popleft()
            self._total -= busy

    def busy_s(self, now: float) -> float:
        self._expire(now)
        return max(0.0, self._total)

    def rate(self, now: float) -> float:
        return self.busy_s(now) / self.window_s


@dataclass(frozen=True)
class TenantConfig:
    """Admission and fairness knobs of one tenant."""

    name: str
    #: fair-share weight: a weight-2 tenant is entitled to twice the
    #: service speed of a weight-1 tenant under contention
    weight: float = 1.0
    #: token-bucket refill, submissions per second
    rate: float = 50.0
    #: token-bucket capacity (burst size)
    burst: float = 100.0
    #: bound on admitted-but-undispatched jobs
    queue_limit: int = 512

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0 (got {self.weight})")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1 (got {self.queue_limit})")


@dataclass
class TenantCounters:
    """Monotonic per-tenant counters (the /v1/metrics rows)."""

    admitted: int = 0
    rejected: int = 0
    dispatched: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0


class Tenant:
    """One tenant's queue, rate limiter, service window and counters."""

    def __init__(
        self,
        config: TenantConfig,
        window_s: float = 30.0,
        clock: Callable[[], float] = _clock.monotonic,
    ):
        self.config = config
        self.queue: deque[str] = deque()
        self.bucket = TokenBucket(config.rate, config.burst)
        self.window = ServiceWindow(window_s)
        self.counters = TenantCounters()
        self._clock = clock

    @property
    def name(self) -> str:
        return self.config.name

    def admit(self, digests: Sequence[str], now: Optional[float] = None) -> None:
        """Admit a batch atomically or raise :class:`AdmissionError`.

        Rejection consumes neither tokens nor queue slots: a 429 must
        leave the tenant exactly as it found it.
        """
        if now is None:
            now = self._clock()
        n = len(digests)
        if n == 0:
            return
        space = self.config.queue_limit - len(self.queue)
        if n > space:
            self.counters.rejected += n
            raise AdmissionError(
                f"tenant {self.name!r} queue is full "
                f"({len(self.queue)}/{self.config.queue_limit} queued, "
                f"{n} submitted)",
                retry_after_s=1.0,
            )
        wait = self.bucket.take(n, now)
        if wait is not None:
            self.counters.rejected += n
            raise AdmissionError(
                f"tenant {self.name!r} is over its submission rate "
                f"({self.config.rate:g}/s, burst {self.config.burst:g}); "
                f"retry in {wait:.3f}s",
                retry_after_s=wait,
            )
        self.counters.admitted += n
        self.queue.extend(digests)

    def requeue_front(self, digest: str) -> None:
        """Put a job back at the head (retry / drain-resume path)."""
        self.queue.appendleft(digest)

    def pop(self) -> str:
        self.counters.dispatched += 1
        return self.queue.popleft()

    def has_routable(self, routable: Callable[[str], bool]) -> bool:
        """Whether any queued digest satisfies ``routable``.

        The store is sharded by digest prefix and each worker owns one
        shard, so an idle worker can only take jobs that route to it;
        dispatch eligibility is therefore per-(tenant, worker), not
        just queue-nonempty.
        """
        return any(routable(d) for d in self.queue)

    def pop_routable(self, routable: Callable[[str], bool]) -> Optional[str]:
        """Remove and return the first routable digest, if any.

        Skipped entries keep their relative order: per-tenant FIFO is
        preserved *within* each shard, which is the strongest order a
        prefix-sharded store admits.
        """
        for i, digest in enumerate(self.queue):
            if routable(digest):
                del self.queue[i]
                self.counters.dispatched += 1
                return digest
        return None

    def record_service(self, busy_s: float, now: Optional[float] = None) -> None:
        """Credit ``busy_s`` worker seconds to this tenant's window."""
        self.window.record(self._clock() if now is None else now, busy_s)

    def service_share(self, now: Optional[float] = None) -> float:
        """Observed service speed per unit weight (the dispatch key)."""
        if now is None:
            now = self._clock()
        return self.window.rate(now) / self.config.weight
