"""Sharded store + the daemon's worker pool.

Scaling the content-addressed store past one process means scaling its
*lock*: every :meth:`~repro.store.store.ResultStore.put` serializes on
``index.lock``, so N workers sharing one store root would convoy on a
single file.  The serving layer therefore splits the namespace by
digest prefix: shard ``k`` of ``n`` owns every digest with
``int(digest[:2], 16) % n == k``, each shard is a full, independent
:class:`ResultStore` under ``<root>/shard-XX/``, and **worker ``k`` is
the only writer of shard ``k``** -- workers never contend on one lock,
by construction rather than by luck.  Reads route the same way, so the
parent daemon resolves any digest without touching a lock another
process holds.

Two pool backends share one message protocol:

* :class:`ProcessWorkerPool` -- one OS process per shard (the
  production backend; survives a hung or crashed simulation, which the
  parent detects by deadline and answers by killing + respawning just
  that worker);
* :class:`ThreadWorkerPool` -- same loop on threads, for fast in-suite
  tests (no fork, no kill support).

Messages: parent sends ``("job", digest, wire_spec)`` or ``("stop",)``
on the worker's private queue; the worker replies
``(worker_id, digest, state, error, busy_s)`` with ``state`` in
``done | cached | failed`` on the shared completion queue.  A pump
thread hands completions to the server's callback, which re-enters the
asyncio loop via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.harness.parallel import RunSpec, run_spec
from repro.metrics.results import AppRunResult
from repro.serve import clock as _clock
from repro.serve.protocol import spec_from_wire
from repro.store import ResultStore, StoreEntry, StoreIntegrityError

__all__ = [
    "POOL_BACKENDS",
    "ProcessWorkerPool",
    "ShardedStore",
    "ThreadWorkerPool",
    "WorkerResult",
    "shard_index",
]

#: one completion message: (worker_id, digest, state, error, busy_s)
WorkerResult = tuple[int, str, str, str, float]

_STOP = ("stop",)


def shard_index(digest: str, n_shards: int) -> int:
    """The shard owning ``digest``: uniform by leading hex byte."""
    return int(digest[:2], 16) % n_shards


class ShardedStore:
    """N independent :class:`ResultStore` shards under one root.

    The read-side façade the daemon uses: ``get``/``contains``/
    ``load_trace`` route by digest prefix, ``digests`` merges all
    shards (each shard's own deterministic order, shards in index
    order).  Writes happen only inside the owning worker.
    """

    def __init__(self, root: Union[str, Path], n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1 (got {n_shards})")
        self.root = Path(root)
        self.n_shards = n_shards
        self.shards = [
            ResultStore(self.shard_root(i)) for i in range(n_shards)
        ]

    def shard_root(self, index: int) -> Path:
        return self.root / f"shard-{index:02d}"

    def shard_for(self, digest: str) -> ResultStore:
        return self.shards[shard_index(digest, self.n_shards)]

    def get(self, digest: str) -> Optional[StoreEntry]:
        return self.shard_for(digest).get(digest)

    def contains(self, digest: str) -> bool:
        return self.shard_for(digest).contains(digest)

    def delete(self, digest: str) -> bool:
        return self.shard_for(digest).delete(digest)

    def digests(self) -> list[str]:
        out: list[str] = []
        for shard in self.shards:
            out.extend(shard.digests())
        return out

    def verify(self) -> list[str]:
        findings: list[str] = []
        for i, shard in enumerate(self.shards):
            findings.extend(f"shard-{i:02d}: {f}" for f in shard.verify())
        return findings


def _worker_loop(
    worker_id: int,
    shard_root: str,
    inq: Any,
    outq: Any,
    runner: Callable[[RunSpec], AppRunResult],
) -> None:
    """One worker: drain the private queue into the owned shard.

    Runs in a child process (or test thread).  Every outcome --
    including a spec that fails to decode -- produces exactly one
    completion message; the parent never infers state from silence
    except through its own timeout deadline.
    """
    store = ResultStore(shard_root)
    while True:
        msg = inq.get()
        if msg[0] == "stop":
            return
        _, digest, wire = msg
        start = _clock.monotonic()
        try:
            spec = spec_from_wire(wire)
            entry = None
            try:
                entry = store.get(digest)
            except StoreIntegrityError:
                store.delete(digest)  # corrupt entry: recompute below
            if entry is not None and entry.result is not None:
                # drain-resume / cross-tenant dedup hit: never run twice
                outq.put(
                    (worker_id, digest, "cached", "",
                     _clock.monotonic() - start)
                )
                continue
            result = runner(spec)
            store.put(spec, result)
            outq.put(
                (worker_id, digest, "done", "", _clock.monotonic() - start)
            )
        except Exception as exc:  # noqa: BLE001 - reported per job
            outq.put(
                (
                    worker_id,
                    digest,
                    "failed",
                    f"{type(exc).__name__}: {exc}",
                    _clock.monotonic() - start,
                )
            )


class _PoolBase:
    """Routing + pump-thread bookkeeping shared by both backends."""

    #: per-worker private job queues / shared completion queue; the
    #: subclasses bind the concrete (mp vs thread-safe) queue types
    _inqs: list[Any]
    _outq: Any

    def __init__(
        self,
        store: ShardedStore,
        on_result: Callable[[WorkerResult], None],
        runner: Callable[[RunSpec], AppRunResult] = run_spec,
    ):
        self.store = store
        self.n_workers = store.n_shards
        self.on_result = on_result
        self.runner = runner
        self._pump: Optional[threading.Thread] = None
        self._started = False

    def _spawn_all(self) -> None:
        raise NotImplementedError

    def _stop_workers(self, timeout_s: float) -> None:
        raise NotImplementedError

    def kill_worker(self, i: int) -> None:
        raise NotImplementedError

    def worker_for(self, digest: str) -> int:
        return shard_index(digest, self.n_workers)

    def start(self) -> None:
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        self._spawn_all()
        self._pump = threading.Thread(
            target=self._pump_loop, name="serve-pump", daemon=True
        )
        self._pump.start()

    def _pump_loop(self) -> None:
        while True:
            msg = self._outq.get()
            if msg[0] == "__pump_stop__":
                return
            self.on_result(msg)

    def submit(self, digest: str, wire: dict) -> int:
        """Queue one job on its owning worker; returns the worker id."""
        if not self._started:
            raise RuntimeError("worker pool is not started")
        w = self.worker_for(digest)
        self._inqs[w].put(("job", digest, wire))
        return w

    def stop(self, timeout_s: float = 30.0) -> None:
        if not self._started:
            return
        self._stop_workers(timeout_s)
        self._outq.put(("__pump_stop__",))
        if self._pump is not None:
            self._pump.join(timeout=timeout_s)
        self._started = False


class ProcessWorkerPool(_PoolBase):
    """One OS process per shard (fork start method on Linux)."""

    def __init__(
        self,
        store: ShardedStore,
        on_result: Callable[[WorkerResult], None],
        runner: Callable[[RunSpec], AppRunResult] = run_spec,
        mp_context: str = "fork",
    ):
        super().__init__(store, on_result, runner)
        self._ctx = multiprocessing.get_context(mp_context)
        self._outq = self._ctx.Queue()
        self._inqs = [self._ctx.Queue() for _ in range(self.n_workers)]
        self._procs: list[Any] = [None] * self.n_workers

    def _spawn_one(self, i: int) -> None:
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(
                i,
                str(self.store.shard_root(i)),
                self._inqs[i],
                self._outq,
                self.runner,
            ),
            name=f"serve-worker-{i}",
            daemon=True,
        )
        proc.start()
        self._procs[i] = proc

    def _spawn_all(self) -> None:
        for i in range(self.n_workers):
            self._spawn_one(i)

    def kill_worker(self, i: int) -> None:
        """Kill + respawn worker ``i`` (the hung-job escape hatch).

        The worker's private queue survives, so jobs already routed to
        the shard are picked up by the replacement; only the job that
        was *running* is lost, and the server reports it failed with a
        timeout reason.
        """
        proc = self._procs[i]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        self._spawn_one(i)

    def _stop_workers(self, timeout_s: float) -> None:
        for q in self._inqs:
            q.put(_STOP)
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=timeout_s)
        for proc in self._procs:
            if proc is not None and proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=5.0)


class ThreadWorkerPool(_PoolBase):
    """Same protocol on daemon threads (test backend; no kill)."""

    def __init__(
        self,
        store: ShardedStore,
        on_result: Callable[[WorkerResult], None],
        runner: Callable[[RunSpec], AppRunResult] = run_spec,
    ):
        super().__init__(store, on_result, runner)
        self._outq: queue_mod.Queue = queue_mod.Queue()
        self._inqs = [queue_mod.Queue() for _ in range(self.n_workers)]
        self._threads: list[Optional[threading.Thread]] = [None] * self.n_workers

    def _spawn_all(self) -> None:
        for i in range(self.n_workers):
            t = threading.Thread(
                target=_worker_loop,
                args=(
                    i,
                    str(self.store.shard_root(i)),
                    self._inqs[i],
                    self._outq,
                    self.runner,
                ),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            t.start()
            self._threads[i] = t

    def kill_worker(self, i: int) -> None:
        raise NotImplementedError(
            "thread workers cannot be killed; use the process backend "
            "when job timeouts matter"
        )

    def _stop_workers(self, timeout_s: float) -> None:
        for q in self._inqs:
            q.put(_STOP)
        for t in self._threads:
            if t is not None:
                t.join(timeout=timeout_s)


POOL_BACKENDS: dict[str, type[_PoolBase]] = {
    "process": ProcessWorkerPool,
    "thread": ThreadWorkerPool,
}
