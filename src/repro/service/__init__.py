"""Job service: cached, deduplicated, resumable experiment execution.

The north-star workflow ("re-run the paper's grid, change one cell,
pay for one cell") lives here: :class:`JobService` resolves batches of
:class:`~repro.harness.parallel.RunSpec` configurations against the
content-addressed store (:mod:`repro.store`), simulates only the
misses via :mod:`repro.harness.parallel`, retries crashed workers with
bounded backoff and streams per-job status.  Exposed on the CLI as
``repro submit`` / ``repro status`` / ``repro fetch``.
"""

from repro.service.jobs import (
    JOB_STATES,
    JobFailedError,
    JobService,
    JobStatus,
    run_specs_cached,
)

__all__ = [
    "JOB_STATES",
    "JobFailedError",
    "JobService",
    "JobStatus",
    "run_specs_cached",
]
