"""Deduplicating job service over the content-addressed store.

:class:`JobService` sits between callers that *want* results for a
batch of :class:`~repro.harness.parallel.RunSpec` configurations and
the machinery that *produces* them:

1. ``submit(specs)`` reduces each spec to its content digest
   (:func:`repro.store.spec_digest`) and dedupes three ways -- within
   the batch, against jobs already in flight on other threads of this
   service, and against the on-disk store;
2. the remaining cache misses are batched through
   :func:`repro.harness.parallel.map_specs` (``workers=N`` fans them
   out over processes);
3. a crashed or failed job is retried up to ``max_attempts`` times
   with linear backoff; what still fails is reported as ``failed``,
   never silently dropped;
4. every state transition streams a :class:`JobStatus`
   (``pending -> running -> cached | done | failed``) to the
   ``on_status`` callback, and fresh results are filed back into the
   store before ``submit`` returns.

A corrupt store entry (:class:`~repro.store.StoreIntegrityError`) is
treated as a miss: the entry is deleted and the configuration is
recomputed -- corrupt bytes are never returned to a caller.

Concurrent ``submit`` calls of the *same* spec from two threads
execute it once: the second submitter blocks on the first's in-flight
event and receives the identical result object.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.harness.experiment import run_app
from repro.harness.parallel import RunSpec, map_specs, resolve_machine
from repro.metrics.results import AppRunResult
from repro.store import ResultStore, StoreIntegrityError, spec_digest

__all__ = [
    "JOB_STATES",
    "JobFailedError",
    "JobService",
    "JobStatus",
    "run_specs_cached",
]

#: the lifecycle of one submitted configuration
JOB_STATES = ("pending", "running", "cached", "done", "failed")


class JobFailedError(RuntimeError):
    """A submitted configuration exhausted its attempts."""


@dataclass(frozen=True)
class JobStatus:
    """One snapshot of one job's lifecycle (streamed to ``on_status``)."""

    digest: str
    state: str  #: one of :data:`JOB_STATES`
    spec: Optional[RunSpec] = None
    attempts: int = 0
    error: str = ""


def _run_spec_traced(spec: RunSpec) -> tuple[AppRunResult, object]:
    """Execute one spec in-process under full tracing; (result, trace)."""
    cores = spec.cores
    if isinstance(cores, tuple):
        cores = list(cores)
    result, system = run_app(
        resolve_machine(spec.machine),
        spec.app,
        balancer=spec.balancer,
        cores=cores,
        seed=spec.seed,
        engine=spec.engine,
        trace=True,
        return_system=True,
        **dict(spec.params),
    )
    return result, system.trace


class JobService:
    """Submit/execute/cache layer over a :class:`ResultStore`.

    One service instance is a session object: it remembers completed
    digests in memory (``fetch`` fast path) and coordinates in-flight
    dedup across its threads.  Store-level dedup works across service
    instances and across processes.
    """

    def __init__(
        self,
        store: ResultStore,
        max_attempts: int = 3,
        backoff_s: float = 0.05,
        on_status: Optional[Callable[[JobStatus], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {max_attempts})")
        self.store = store
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.on_status = on_status
        self._sleep = sleep
        self._lock = threading.Lock()
        self._inflight: dict[str, threading.Event] = {}
        self._results: dict[str, AppRunResult] = {}
        self._statuses: dict[str, JobStatus] = {}
        #: simulations actually executed by this service (not cached)
        self.executed = 0

    # -- status ---------------------------------------------------------
    def status(self, digest: str) -> Optional[JobStatus]:
        with self._lock:
            return self._statuses.get(digest)

    def statuses(self) -> dict[str, JobStatus]:
        with self._lock:
            return dict(self._statuses)

    def _transition(self, status: JobStatus) -> None:
        with self._lock:
            self._statuses[status.digest] = status
        if self.on_status is not None:
            self.on_status(status)

    # -- fetch ----------------------------------------------------------
    def fetch(self, digest: str) -> AppRunResult:
        """The result behind a digest, from memory or the store."""
        with self._lock:
            if digest in self._results:
                return self._results[digest]
        entry = self.store.get(digest)
        if entry is None or entry.result is None:
            raise KeyError(f"no stored result for digest {digest!r}")
        assert isinstance(entry.result, AppRunResult)
        return entry.result

    # -- submit ---------------------------------------------------------
    def submit(
        self,
        specs: Iterable[RunSpec],
        workers: Optional[int] = 1,
        trace: bool = False,
        timeout_s: Optional[float] = None,
    ) -> list[AppRunResult]:
        """Resolve every spec to its result, simulating only misses.

        Results come back in input order and are byte-identical to an
        uncached run (asserted by the parity tests via the PR 3
        digests).  ``trace=True`` additionally stores each run's full
        trace (forcing those runs in-process, since traces do not
        cross the process boundary); a cached entry *without* a trace
        is treated as a miss and re-archived with one.  Raises
        :class:`JobFailedError` if any spec exhausts its attempts.

        ``timeout_s`` bounds each job's wall-clock time per attempt: a
        job past the budget fails with a
        :class:`~repro.harness.parallel.SpecTimeoutError`, re-enters
        the retry loop like any crash, and -- if every attempt times
        out -- surfaces ``timeout`` in its permanent failure reason.
        Deadlines need the interruptible process-pool path, so
        ``timeout_s`` is incompatible with ``trace=True`` (traced runs
        execute in-process).
        """
        if timeout_s is not None and trace:
            raise ValueError(
                "timeout_s does not combine with trace=True: traced runs "
                "execute in-process, where a wall-clock deadline cannot "
                "interrupt the simulation"
            )
        specs = list(specs)
        digests = [spec_digest(s) for s in specs]

        unique: dict[str, RunSpec] = {}
        for d, s in zip(digests, specs):
            unique.setdefault(d, s)

        owned: list[str] = []
        awaited: dict[str, threading.Event] = {}
        with self._lock:
            for d in unique:
                if d in self._results:
                    continue
                if d in self._inflight:
                    awaited[d] = self._inflight[d]
                else:
                    self._inflight[d] = threading.Event()
                    owned.append(d)
        for d in owned:
            self._transition(JobStatus(digest=d, state="pending", spec=unique[d]))

        try:
            to_run = self._resolve_cached(owned, unique, trace=trace)
            self._execute(
                to_run, unique, workers=workers, trace=trace,
                timeout_s=timeout_s,
            )
        except BaseException:
            # never leave waiters hanging on an event that won't fire
            with self._lock:
                for d in owned:
                    ev = self._inflight.pop(d, None)
                    if ev is not None:
                        ev.set()
            raise

        for d, ev in sorted(awaited.items()):
            ev.wait()

        out: list[AppRunResult] = []
        failed: list[JobStatus] = []
        with self._lock:
            for d in digests:
                if d in self._results:
                    out.append(self._results[d])
                else:
                    failed.append(self._statuses[d])
        if failed:
            detail = "; ".join(
                f"{st.digest[:12]}... after {st.attempts} attempt(s): {st.error}"
                for st in failed
            )
            raise JobFailedError(
                f"{len(failed)} job(s) failed permanently: {detail}"
            )
        return out

    def _resolve_cached(
        self, owned: Sequence[str], unique: dict[str, RunSpec], trace: bool
    ) -> list[str]:
        """Serve owned digests from the store; return the misses."""
        to_run: list[str] = []
        for d in owned:
            entry = None
            try:
                entry = self.store.get(d)
            except StoreIntegrityError:
                # detected corruption: drop the entry and recompute
                self.store.delete(d)
            if entry is not None and isinstance(entry.result, AppRunResult):
                if trace and not entry.has_trace:
                    # the caller wants a trace but the cached entry has
                    # none; re-running is byte-identical (parity tests),
                    # so replace the entry with a traced one
                    self.store.delete(d)
                    to_run.append(d)
                else:
                    self._finish(d, entry.result, "cached", attempts=0)
            else:
                to_run.append(d)
        return to_run

    def _execute(
        self,
        to_run: list[str],
        unique: dict[str, RunSpec],
        workers: Optional[int],
        trace: bool,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Run the cache misses with bounded retries, store, finish."""
        pending = list(to_run)
        attempt = 0
        while pending and attempt < self.max_attempts:
            attempt += 1
            for d in pending:
                self._transition(
                    JobStatus(
                        digest=d, state="running", spec=unique[d],
                        attempts=attempt,
                    )
                )
            still_failed: list[tuple[str, Exception]] = []
            if trace:
                for d in pending:
                    try:
                        result, rec = _run_spec_traced(unique[d])
                    except Exception as exc:  # noqa: BLE001 - retried below
                        still_failed.append((d, exc))
                        continue
                    self.executed += 1
                    self.store.put(unique[d], result, trace=rec)
                    self._finish(d, result, "done", attempts=attempt)
            else:
                outcomes = map_specs(
                    [unique[d] for d in pending],
                    workers=workers,
                    return_exceptions=True,
                    timeout_s=timeout_s,
                )
                for d, outcome in zip(pending, outcomes):
                    if isinstance(outcome, Exception):
                        still_failed.append((d, outcome))
                        continue
                    self.executed += 1
                    self.store.put(unique[d], outcome)
                    self._finish(d, outcome, "done", attempts=attempt)
            pending = [d for d, _ in still_failed]
            errors = {d: exc for d, exc in still_failed}
            if pending and attempt < self.max_attempts:
                self._sleep(self.backoff_s * attempt)
        for d in pending:
            exc = errors[d]
            self._fail(d, f"{type(exc).__name__}: {exc}", attempts=attempt)

    def _finish(
        self, digest: str, result: AppRunResult, state: str, attempts: int
    ) -> None:
        with self._lock:
            self._results[digest] = result
            ev = self._inflight.pop(digest, None)
        self._transition(
            replace(
                self._statuses.get(digest)
                or JobStatus(digest=digest, state=state),
                state=state,
                attempts=attempts,
            )
        )
        if ev is not None:
            ev.set()

    def _fail(self, digest: str, error: str, attempts: int) -> None:
        with self._lock:
            ev = self._inflight.pop(digest, None)
        self._transition(
            replace(
                self._statuses.get(digest)
                or JobStatus(digest=digest, state="failed"),
                state="failed",
                attempts=attempts,
                error=error,
            )
        )
        if ev is not None:
            ev.set()


def run_specs_cached(
    specs: Iterable[RunSpec],
    store: Union[ResultStore, JobService, str],
    workers: Optional[int] = 1,
    trace: bool = False,
) -> list[AppRunResult]:
    """Convenience: resolve specs through a store (path, store or service).

    This is the function ``repeat_run(store=...)`` and the scenario
    ``store=`` paths call: pass a directory path or a
    :class:`ResultStore` to get a throwaway service, or a long-lived
    :class:`JobService` to share in-flight dedup across calls.
    """
    if isinstance(store, JobService):
        service = store
    else:
        if isinstance(store, str):
            store = ResultStore(store)
        service = JobService(store)
    return service.submit(specs, workers=workers, trace=trace)
