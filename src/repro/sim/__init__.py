"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which every scheduler in
:mod:`repro` runs.  The paper's artifact steers a live Linux kernel; our
substitution (see ``DESIGN.md``) is a discrete-event simulation with
integer-microsecond time, so that thread execution time -- the quantity
speed balancing manages -- is accounted exactly and reproducibly.

Contents
--------
``Engine``
    The event loop: a priority queue of timestamped events with stable
    FIFO ordering for ties, cancellation, and a monotonic ``now`` clock.
``Event``
    A handle for a scheduled callback; supports ``cancel()``.
``SimRng``
    A seeded random source wrapping :class:`random.Random` with the
    distributions the simulator needs (jitter, gaussian measurement
    noise, choice).  Every stochastic decision in the simulator draws
    from a named child stream so that adding randomness to one component
    does not perturb another.
"""

from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.rng import SimRng

__all__ = ["Engine", "Event", "SimRng", "SimulationError"]
