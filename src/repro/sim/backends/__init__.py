"""Pluggable event-dispatch backends for the simulation engine.

The simulator's public contract is the :class:`~repro.sim.engine.Engine`
interface (``schedule``/``run``/``step``/``fingerprint``); *how* the
event queue is stored and drained is an implementation detail this
package makes swappable:

``heap``
    The original binary heap of ``(time, seq, event)`` triples
    (:class:`~repro.sim.engine.Engine` itself).  The conservative
    default.
``batched``
    A calendar-queue backend (:class:`~repro.sim.backends.batched
    .BatchedEngine`): one FIFO bucket per distinct integer timestamp,
    drained a whole bucket ("tick") at a time.  Same-time events fire
    in sequence order exactly as the heap does, so every run digest is
    unchanged; it additionally flips :attr:`Engine.batching` on, which
    arms the batch-aware memoization fast paths in
    :class:`~repro.sched.core.CoreSim` and
    :class:`~repro.balance.linux.LinuxLoadBalancer`.
``native``
    The batched backend with its drain loop -- and the fused CFS
    charge/requeue/pick/start path it dispatches -- compiled to C
    (:class:`~repro.sim.backends.native.NativeEngine`).  Built on
    demand with the stock ``cc`` toolchain, bound via stdlib
    :mod:`ctypes`, artifact cached under a source-digest key.  The C
    twin performs identical float operations in identical order, so
    digests match the heap reference bit for bit.  Machines without a
    C compiler get :class:`~repro.sim.backends.nativebuild
    .NativeUnavailableError` at construction; use
    :func:`backend_available` to probe.

Backends are selected by name everywhere a simulation is configured --
``System(engine=...)``, ``run_app(engine=...)``, ``RunSpec.engine``
(and therefore the content-addressed store key), ``repro run/bench/
sanitize/submit --engine``.  The golden run digests in the test suite
are parametrized over every backend, which is what makes a swap this
deep shippable: bit-identical behaviour is enforced mechanically, not
argued.
"""

from __future__ import annotations

from repro.sim.backends.batched import BatchedEngine
from repro.sim.backends.heap import HeapEngine
from repro.sim.backends.native import NativeEngine
from repro.sim.backends.nativebuild import NativeUnavailableError, native_available
from repro.sim.engine import Engine

__all__ = [
    "ENGINE_BACKENDS",
    "BatchedEngine",
    "HeapEngine",
    "NativeEngine",
    "NativeUnavailableError",
    "backend_available",
    "backend_names",
    "make_engine",
]

#: backend name -> engine class; insertion order is documentation order
ENGINE_BACKENDS: dict[str, type[Engine]] = {
    "heap": HeapEngine,
    "batched": BatchedEngine,
    "native": NativeEngine,
}


def backend_names() -> tuple[str, ...]:
    """The selectable backend names, default first."""
    return tuple(ENGINE_BACKENDS)


def backend_available(name: str) -> bool:
    """True iff ``name`` can actually be constructed on this machine.

    Registered pure-Python backends are always available; ``native``
    additionally needs a working C toolchain (probing it compiles and
    caches the library as a side effect, so a True answer means later
    constructions are cheap).
    """
    if name not in ENGINE_BACKENDS:
        return False
    if name == "native":
        return native_available()
    return True


def make_engine(name: str, max_events: int = 200_000_000) -> Engine:
    """Instantiate the engine backend called ``name``.

    Raises ``ValueError`` for unknown names (argparse ``choices`` catch
    this earlier on the CLI; this guards the library path).
    """
    try:
        cls = ENGINE_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; expected one of "
            f"{backend_names()}"
        ) from None
    return cls(max_events=max_events)
