/* Native engine core: the calendar-queue drain plus the fused CFS
 * dispatch path, compiled to machine code.
 *
 * This library is the C twin of two pieces of Python:
 *
 *   repro/sim/backends/batched.py  BatchedEngine._drain  (single=False)
 *   repro/sched/core.py            CoreSim._on_core_event_batched
 *
 * It operates directly on the live Python objects (the engine's bucket
 * dict and times heap, the run queue's entry heaps, Task attribute
 * dicts) through the CPython C-API, performing the *identical sequence
 * of operations* -- every float add/mul/div, every heap sift, every
 * counter bump appears in the same order with the same operands as the
 * Python source.  IEEE-754 doubles are what Python floats are, so the
 * results are bit-identical and the golden run digests hold across
 * backends.  When editing either Python twin, mirror the change here;
 * the digest-parity suite will catch a miss.
 *
 * Division of labour: C owns the hot straight line (event pop, charge
 * arithmetic, requeue, pick-next, rate/slice math, event re-schedule);
 * Python keeps everything stateful-rare (observers, tracing, balancer
 * idle hooks, program advance, barrier spin-timeouts, non-CFS slice
 * policies) via call-outs.  There is exactly ONE ctypes boundary
 * crossing per engine run -- repro_drain -- because a per-event ctypes
 * call would cost more than the interpreted loop it replaces.
 *
 * The heap routines transcribe heapq's _siftdown/_siftup verbatim so
 * list layouts (not just pop order) match the Python backends; layout
 * differences would change later pop order after mixed push/pop
 * sequences.
 *
 * Loaded with ctypes.PyDLL (GIL held; error flag checked per call) by
 * repro.sim.backends.nativebuild.  No Python.h-level module object is
 * involved: repro_native_init receives a dict of support objects
 * (exception class, Event class, enum members, interned constants)
 * and the two entry points take plain PyObject pointers.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h> /* completes PyMemberDef for slot offsets */
#include <math.h>

/* ------------------------------------------------------------------ */
/* interned attribute names                                            */
/* ------------------------------------------------------------------ */

#define ATTR_NAMES(X)                                                       \
    /* engine */                                                            \
    X(now) X(_buckets) X(_times) X(_size) X(_cancelled) X(_dispatched)      \
    X(max_events) X(_stop_requested) X(observers) X(_seq)                   \
    /* event */                                                             \
    X(callback) X(payload) X(cancelled) X(in_heap) X(label)                 \
    /* core */                                                              \
    X(_gen) X(current) X(system) X(rq) X(params) X(dispatch_started_at)     \
    X(stats) X(_rate_at_dispatch) X(_event) X(_event_label) X(_oce)         \
    X(_in_resched) X(_load_epoch) X(_mem_busy) X(_mem_epoch) X(_mem_track)  \
    X(_mem_alpha) X(_co_epoch) X(_co_sum) X(_clock_factor) X(_smt_active)   \
    X(_smt_derate) X(_sib_core) X(_numa) X(_numa_node)                      \
    X(_numa_remote_slowdown) X(hw) X(cid) X(yield_check_us) X(throttled)    \
    /* task */                                                              \
    X(tid) X(name) X(weight) X(vruntime) X(exec_us) X(compute_us)           \
    X(work_remaining) X(migration_debt_us) X(waiting_on) X(wait_mode)       \
    X(spin_deadline) X(state) X(needs_advance) X(mem_intensity)             \
    X(home_node) X(last_descheduled_at) X(last_core) X(cur_core)            \
    /* run queue */                                                         \
    X(_heap) X(_live) X(_max_heap) X(_total_weight) X(count)                \
    X(min_vruntime)                                                         \
    /* stats */                                                             \
    X(busy_us) X(spin_us) X(context_switches) X(dispatches)                 \
    /* system */                                                            \
    X(trace) X(_kb_on_charge) X(charge_observers) X(cores)                  \
    /* params */                                                            \
    X(min_granularity) X(target_latency) X(yield_penalty)                   \
    /* topology */                                                          \
    X(smt_sibling)                                                          \
    /* methods */                                                           \
    X(_prepare) X(_go_idle) X(_dispatch_next) X(_mem_note_off)              \
    X(_notify_sibling_rate_change) X(note_residency) X(spin_timeout)        \
    X(record) X(popleft) X(append)

typedef struct {
    /* support objects (owned references, held for process lifetime) */
    PyObject *SimulationError;
    PyObject *EventClass;
    PyObject *fused;         /* CoreSim._on_core_event_batched, the function */
    PyObject *CfsParams;     /* the class; exact-type gate for slice math */
    PyObject *st_running;    /* TaskState.RUNNING */
    PyObject *st_runnable;   /* TaskState.RUNNABLE */
    PyObject *wm_yield;      /* WaitMode.YIELD */
    PyObject *entry_counter; /* runqueue._entry_counter (itertools.count) */
    PyObject *deque_type;
    PyObject *str_wait;      /* "wait" */
    PyObject *str_run;       /* "run" */
    double work_eps;
    double nice0;            /* float(NICE_0_WEIGHT) */
#define X(n) PyObject *n_##n;
    ATTR_NAMES(X)
#undef X
} support_t;

static support_t S;
static int S_ready = 0;

/* process-lifetime dispatch counters, readable via repro_native_stat:
 * how many events ran through the C fused twin, the generic Python
 * call, or were delegated to the Python twin (non-CFS params).  The
 * test suite uses these to prove the fast path is actually exercised
 * rather than silently falling back. */
static long long stat_fused = 0;
static long long stat_generic = 0;
static long long stat_delegated = 0;

/* ------------------------------------------------------------------ */
/* small attribute helpers                                             */
/* ------------------------------------------------------------------ */

/* new reference, or NULL with error set */
static inline PyObject *aget(PyObject *o, PyObject *name) {
    return PyObject_GetAttr(o, name);
}

static inline int aset(PyObject *o, PyObject *name, PyObject *v) {
    return PyObject_SetAttr(o, name, v);
}

static int aget_ll(PyObject *o, PyObject *name, long long *out) {
    PyObject *v = PyObject_GetAttr(o, name);
    if (v == NULL) return -1;
    long long r = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (r == -1 && PyErr_Occurred()) return -1;
    *out = r;
    return 0;
}

static int aget_dbl(PyObject *o, PyObject *name, double *out) {
    PyObject *v = PyObject_GetAttr(o, name);
    if (v == NULL) return -1;
    double r;
    if (PyFloat_CheckExact(v)) {
        r = PyFloat_AS_DOUBLE(v);
    } else {
        r = PyFloat_AsDouble(v);
        if (r == -1.0 && PyErr_Occurred()) { Py_DECREF(v); return -1; }
    }
    Py_DECREF(v);
    *out = r;
    return 0;
}

static int aset_ll(PyObject *o, PyObject *name, long long v) {
    PyObject *obj = PyLong_FromLongLong(v);
    if (obj == NULL) return -1;
    int rc = PyObject_SetAttr(o, name, obj);
    Py_DECREF(obj);
    return rc;
}

static int aset_dbl(PyObject *o, PyObject *name, double v) {
    PyObject *obj = PyFloat_FromDouble(v);
    if (obj == NULL) return -1;
    int rc = PyObject_SetAttr(o, name, obj);
    Py_DECREF(obj);
    return rc;
}

/* o.name += delta on an int attribute */
static int aadd_ll(PyObject *o, PyObject *name, long long delta) {
    long long v;
    if (aget_ll(o, name, &v) < 0) return -1;
    return aset_ll(o, name, v + delta);
}

/* truthiness of attribute: 1/0, or -1 with error set */
static int atrue(PyObject *o, PyObject *name) {
    PyObject *v = PyObject_GetAttr(o, name);
    if (v == NULL) return -1;
    int rc = PyObject_IsTrue(v);
    Py_DECREF(v);
    return rc;
}

/* ------------------------------------------------------------------ */
/* fast attribute access                                               */
/*                                                                     */
/* Generic PyObject_GetAttr costs as much as the 3.11 specializing     */
/* interpreter's LOAD_ATTR, which is why a naive C transcription of    */
/* the fused path runs no faster than the bytecode it replaces.  All   */
/* hot classes except Event are plain-__dict__ classes with no data    */
/* descriptors on the touched names, so we materialize each object's   */
/* instance dict once (PyObject_GenericGetDict) and then read/write    */
/* through PyDict_* with pre-interned keys.  Event has __slots__; its  */
/* member offsets are resolved from the slot descriptors at init and   */
/* accessed as direct struct loads.                                    */
/* ------------------------------------------------------------------ */

/* instance __dict__ of a plain-class object, materialized once; new
 * reference (attribute writes from either side stay visible: it IS the
 * object's dict) */
static inline PyObject *idict(PyObject *o) {
    return PyObject_GenericGetDict(o, NULL);
}

/* new-ref read through the instance dict; falls back to real getattr
 * for names satisfied by the class (bound methods, defaults) */
static PyObject *dget(PyObject *d, PyObject *o, PyObject *name) {
    PyObject *v = PyDict_GetItemWithError(d, name);
    if (v != NULL) {
        Py_INCREF(v);
        return v;
    }
    if (PyErr_Occurred()) return NULL;
    return PyObject_GetAttr(o, name);
}

static int dget_ll(PyObject *d, PyObject *o, PyObject *name,
                   long long *out) {
    PyObject *v = PyDict_GetItemWithError(d, name); /* borrowed */
    if (v == NULL) {
        if (PyErr_Occurred()) return -1;
        return aget_ll(o, name, out);
    }
    long long r = PyLong_AsLongLong(v);
    if (r == -1 && PyErr_Occurred()) return -1;
    *out = r;
    return 0;
}

static int dget_dbl(PyObject *d, PyObject *o, PyObject *name, double *out) {
    PyObject *v = PyDict_GetItemWithError(d, name); /* borrowed */
    if (v == NULL) {
        if (PyErr_Occurred()) return -1;
        return aget_dbl(o, name, out);
    }
    if (PyFloat_CheckExact(v)) {
        *out = PyFloat_AS_DOUBLE(v);
        return 0;
    }
    double r = PyFloat_AsDouble(v);
    if (r == -1.0 && PyErr_Occurred()) return -1;
    *out = r;
    return 0;
}

/* writes go straight into the instance dict: equivalent to setattr for
 * plain classes (asserted at init: no slots, no data descriptors) */
static inline int dset(PyObject *d, PyObject *name, PyObject *v) {
    return PyDict_SetItem(d, name, v);
}

static int dset_ll(PyObject *d, PyObject *name, long long v) {
    PyObject *obj = PyLong_FromLongLong(v);
    if (obj == NULL) return -1;
    int rc = PyDict_SetItem(d, name, obj);
    Py_DECREF(obj);
    return rc;
}

static int dset_dbl(PyObject *d, PyObject *name, double v) {
    PyObject *obj = PyFloat_FromDouble(v);
    if (obj == NULL) return -1;
    int rc = PyDict_SetItem(d, name, obj);
    Py_DECREF(obj);
    return rc;
}

static int dadd_ll(PyObject *d, PyObject *o, PyObject *name,
                   long long delta) {
    long long v;
    if (dget_ll(d, o, name, &v) < 0) return -1;
    return dset_ll(d, name, v + delta);
}

static int dtrue(PyObject *d, PyObject *o, PyObject *name) {
    PyObject *v = PyDict_GetItemWithError(d, name); /* borrowed */
    if (v == NULL) {
        if (PyErr_Occurred()) return -1;
        return atrue(o, name);
    }
    if (v == Py_True) return 1;
    if (v == Py_False || v == Py_None) return 0;
    return PyObject_IsTrue(v);
}

/* ---- Event slot access ------------------------------------------- */

enum {
    EV_TIME,
    EV_SEQ,
    EV_CALLBACK,
    EV_CANCELLED,
    EV_LABEL,
    EV_ENGINE,
    EV_IN_HEAP,
    EV_PAYLOAD,
    EV_NSLOTS
};

static Py_ssize_t ev_off[EV_NSLOTS];

#define EV_SLOT(ev, i) (*(PyObject **)((char *)(ev) + ev_off[i]))

/* new ref; subclassed/forged events fall back to real getattr */
static PyObject *ev_read(PyObject *ev, int i, PyObject *name) {
    if ((PyObject *)Py_TYPE(ev) == S.EventClass) {
        PyObject *v = EV_SLOT(ev, i);
        if (v != NULL) {
            Py_INCREF(v);
            return v;
        }
    }
    return PyObject_GetAttr(ev, name);
}

/* truthiness of an Event flag slot (cancelled / in_heap) */
static int ev_true(PyObject *ev, int i, PyObject *name) {
    if ((PyObject *)Py_TYPE(ev) == S.EventClass) {
        PyObject *v = EV_SLOT(ev, i);
        if (v == Py_True) return 1;
        if (v == Py_False || v == Py_None) return 0;
        if (v != NULL) return PyObject_IsTrue(v);
    }
    return atrue(ev, name);
}

static int ev_write(PyObject *ev, int i, PyObject *name, PyObject *v) {
    if ((PyObject *)Py_TYPE(ev) == S.EventClass) {
        PyObject *old = EV_SLOT(ev, i);
        Py_INCREF(v);
        EV_SLOT(ev, i) = v;
        Py_XDECREF(old);
        return 0;
    }
    return PyObject_SetAttr(ev, name, v);
}

/* Event(time, seq, cb, label, engine, payload) without the Python
 * __init__ frame: allocate and fill the slots directly.  Mirrors
 * Event.__init__ exactly -- cancelled=False, in_heap=True (engine is
 * always non-None on this path). */
static PyObject *event_new(PyObject *time_obj, long long seq_ll,
                           PyObject *cb, PyObject *label, PyObject *engine,
                           PyObject *payload) {
    PyTypeObject *tp = (PyTypeObject *)S.EventClass;
    PyObject *ev = tp->tp_alloc(tp, 0);
    if (ev == NULL) return NULL;
    PyObject *seq = PyLong_FromLongLong(seq_ll);
    if (seq == NULL) {
        Py_DECREF(ev);
        return NULL;
    }
    Py_INCREF(time_obj);
    EV_SLOT(ev, EV_TIME) = time_obj;
    EV_SLOT(ev, EV_SEQ) = seq; /* fresh ref moved into the slot */
    Py_INCREF(cb);
    EV_SLOT(ev, EV_CALLBACK) = cb;
    Py_INCREF(Py_False);
    EV_SLOT(ev, EV_CANCELLED) = Py_False;
    Py_INCREF(label);
    EV_SLOT(ev, EV_LABEL) = label;
    Py_INCREF(engine);
    EV_SLOT(ev, EV_ENGINE) = engine;
    Py_INCREF(Py_True);
    EV_SLOT(ev, EV_IN_HEAP) = Py_True;
    Py_INCREF(payload);
    EV_SLOT(ev, EV_PAYLOAD) = payload;
    return ev;
}

/* list[idx] += delta (the epoch cells: core._load_epoch[0] etc.) */
static int cell_add(PyObject *list, long long delta) {
    PyObject *v = PyList_GetItem(list, 0); /* borrowed */
    if (v == NULL) return -1;
    long long r = PyLong_AsLongLong(v);
    if (r == -1 && PyErr_Occurred()) return -1;
    PyObject *obj = PyLong_FromLongLong(r + delta);
    if (obj == NULL) return -1;
    return PyList_SetItem(list, 0, obj); /* steals obj, decrefs old */
}

/* ------------------------------------------------------------------ */
/* heapq transcription (identical layouts to Lib/heapq.py)             */
/* ------------------------------------------------------------------ */

/* a < b, returning 1/0, or -1 with error set */
typedef int (*lt_fn)(PyObject *a, PyObject *b);

/* for the engine's _times heap: plain ints */
static int lt_time(PyObject *a, PyObject *b) {
    if (PyLong_CheckExact(a) && PyLong_CheckExact(b)) {
        long long la = PyLong_AsLongLong(a);
        if (la == -1 && PyErr_Occurred()) { PyErr_Clear(); goto generic; }
        long long lb = PyLong_AsLongLong(b);
        if (lb == -1 && PyErr_Occurred()) { PyErr_Clear(); goto generic; }
        return la < lb;
    }
generic:
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* for rq._heap / rq._max_heap: (float, int, ...) tuples; unique second
 * elements mean the comparison never reaches the third */
static int lt_entry(PyObject *a, PyObject *b) {
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b) &&
        PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        PyObject *a0 = PyTuple_GET_ITEM(a, 0), *b0 = PyTuple_GET_ITEM(b, 0);
        PyObject *a1 = PyTuple_GET_ITEM(a, 1), *b1 = PyTuple_GET_ITEM(b, 1);
        if (PyFloat_CheckExact(a0) && PyFloat_CheckExact(b0) &&
            PyLong_CheckExact(a1) && PyLong_CheckExact(b1)) {
            double da = PyFloat_AS_DOUBLE(a0), db = PyFloat_AS_DOUBLE(b0);
            if (da < db) return 1;
            if (db < da) return 0;
            long long la = PyLong_AsLongLong(a1);
            if (la == -1 && PyErr_Occurred()) { PyErr_Clear(); goto generic; }
            long long lb = PyLong_AsLongLong(b1);
            if (lb == -1 && PyErr_Occurred()) { PyErr_Clear(); goto generic; }
            return la < lb;
        }
    }
generic:
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* heapq._siftdown(heap, startpos, pos) */
static int siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos,
                    lt_fn lt) {
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int cmp = lt(newitem, parent);
        if (cmp < 0) { Py_DECREF(newitem); return -1; }
        if (!cmp) break;
        Py_INCREF(parent);
        if (PyList_SetItem(heap, pos, parent) < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        pos = parentpos;
    }
    return PyList_SetItem(heap, pos, newitem);
}

/* heapq._siftup(heap, pos): bubble the hole to a leaf, then siftdown */
static int siftup(PyObject *heap, Py_ssize_t pos, lt_fn lt) {
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int cmp = lt(PyList_GET_ITEM(heap, childpos),
                         PyList_GET_ITEM(heap, rightpos));
            if (cmp < 0) { Py_DECREF(newitem); return -1; }
            if (!cmp) childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        if (PyList_SetItem(heap, pos, child) < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    if (PyList_SetItem(heap, pos, newitem) < 0) return -1;
    return siftdown(heap, startpos, pos, lt);
}

static int heappush_c(PyObject *heap, PyObject *item, lt_fn lt) {
    if (PyList_Append(heap, item) < 0) return -1;
    return siftdown(heap, 0, PyList_GET_SIZE(heap) - 1, lt);
}

/* new reference, or NULL with error set; heap must be non-empty */
static PyObject *heappop_c(PyObject *heap, lt_fn lt) {
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (n == 1) return lastelt;
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    if (PyList_SetItem(heap, 0, lastelt) < 0) { /* steals lastelt */
        Py_DECREF(returnitem);
        return NULL;
    }
    if (siftup(heap, 0, lt) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* ------------------------------------------------------------------ */
/* the mem-contention scope index: a sorted list of (cid, intensity)   */
/* ------------------------------------------------------------------ */

/* bisect_left(mem_busy, (cid, 0.0)): intensities are strictly
 * positive, so the probe orders purely on cid */
static Py_ssize_t mem_bisect_left(PyObject *mem_busy, long long cid) {
    Py_ssize_t lo = 0, hi = PyList_GET_SIZE(mem_busy);
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) / 2;
        PyObject *entry = PyList_GET_ITEM(mem_busy, mid);
        long long c = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
        if (c < cid)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* del mem_busy[bisect_left(mem_busy, (cid, 0.0))] */
static int mem_remove(PyObject *mem_busy, long long cid) {
    Py_ssize_t idx = mem_bisect_left(mem_busy, cid);
    return PyList_SetSlice(mem_busy, idx, idx + 1, NULL);
}

/* insort(mem_busy, (cid, intensity)): cid is absent, so bisect_right
 * also orders purely on cid */
static int mem_insort(PyObject *mem_busy, long long cid, double intensity) {
    Py_ssize_t lo = 0, hi = PyList_GET_SIZE(mem_busy);
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) / 2;
        PyObject *entry = PyList_GET_ITEM(mem_busy, mid);
        long long c = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
        if (cid < c)
            hi = mid;
        else
            lo = mid + 1;
    }
    PyObject *tup = Py_BuildValue("(Ld)", cid, intensity);
    if (tup == NULL) return -1;
    int rc = PyList_Insert(mem_busy, lo, tup);
    Py_DECREF(tup);
    return rc;
}

/* ------------------------------------------------------------------ */
/* the fused core event (C twin of CoreSim._on_core_event_batched)     */
/* ------------------------------------------------------------------ */

/* Delegate the whole event to the Python twin before any mutation
 * (used for configurations the C path does not replicate). */
static int fused_delegate(PyObject *core, PyObject *gen_obj) {
    PyObject *r = PyObject_CallFunctionObjArgs(S.fused, core, gen_obj, NULL);
    if (r == NULL) return -1;
    Py_DECREF(r);
    return 0;
}

/* Returns 0 on success, -1 with a Python error set.  ``now`` is the
 * event time (== engine.now), ``t_obj`` the live int object for it.
 * ``engine_d`` is the engine's instance dict, owned by the caller. */
static int fused_core_event(PyObject *core, PyObject *gen_obj,
                            PyObject *engine, PyObject *engine_d,
                            PyObject *buckets, PyObject *times,
                            PyObject *t_obj, long long now) {
    long long gen = PyLong_AsLongLong(gen_obj);
    if (gen == -1 && PyErr_Occurred()) return -1;

    PyObject *core_d = idict(core);
    if (core_d == NULL) return -1;

    long long self_gen;
    if (dget_ll(core_d, core, S.n__gen, &self_gen) < 0) {
        Py_DECREF(core_d);
        return -1;
    }
    if (gen != self_gen) { /* superseded */
        Py_DECREF(core_d);
        return 0;
    }

    PyObject *task = dget(core_d, core, S.n_current);
    if (task == NULL) { Py_DECREF(core_d); return -1; }
    if (task == Py_None) {
        Py_DECREF(task);
        Py_DECREF(core_d);
        return 0;
    }

    /* non-CFS slice policies keep the Python twin (rare configs) */
    PyObject *params = dget(core_d, core, S.n_params);
    if (params == NULL) {
        Py_DECREF(task);
        Py_DECREF(core_d);
        return -1;
    }
    if ((PyObject *)Py_TYPE(params) != S.CfsParams) {
        Py_DECREF(params);
        Py_DECREF(task);
        Py_DECREF(core_d);
        stat_delegated++;
        return fused_delegate(core, gen_obj);
    }

    PyObject *system = NULL, *rq = NULL, *stats = NULL;
    PyObject *prev = NULL;
    PyObject *mem_busy = NULL, *mem_epoch = NULL, *load_epoch = NULL;
    PyObject *task_d = NULL, *prev_d = NULL;
    PyObject *system_d = NULL, *rq_d = NULL, *stats_d = NULL;
    int rc = -1;

    task_d = idict(task);
    if (task_d == NULL) goto done;
    system = dget(core_d, core, S.n_system);
    if (system == NULL) goto done;
    system_d = idict(system);
    if (system_d == NULL) goto done;
    rq = dget(core_d, core, S.n_rq);
    if (rq == NULL) goto done;
    rq_d = idict(rq);
    if (rq_d == NULL) goto done;
    stats = dget(core_d, core, S.n_stats);
    if (stats == NULL) goto done;
    stats_d = idict(stats);
    if (stats_d == NULL) goto done;
    load_epoch = dget(core_d, core, S.n__load_epoch);
    if (load_epoch == NULL) goto done;
    mem_busy = dget(core_d, core, S.n__mem_busy);
    if (mem_busy == NULL) goto done;
    mem_epoch = dget(core_d, core, S.n__mem_epoch);
    if (mem_epoch == NULL) goto done;

    long long cid;
    if (dget_ll(core_d, core, S.n_cid, &cid) < 0) goto done;

    /* ---- inline _charge_current ---------------------------------- */
    long long dsa;
    if (dget_ll(core_d, core, S.n_dispatch_started_at, &dsa) < 0) goto done;
    long long dt = now - dsa;
    if (dt > 0) {
        if (dset(core_d, S.n_dispatch_started_at, t_obj) < 0) goto done;
        if (dadd_ll(task_d, task, S.n_exec_us, dt) < 0) goto done;
        PyObject *waiting_on = dget(task_d, task, S.n_waiting_on);
        if (waiting_on == NULL) goto done;
        int waiting = (waiting_on != Py_None);
        Py_DECREF(waiting_on);

        PyObject *trace = dget(system_d, system, S.n_trace);
        if (trace == NULL) goto done;
        if (trace != Py_None) {
            PyObject *tid = dget(task_d, task, S.n_tid);
            PyObject *name = tid ? dget(task_d, task, S.n_name) : NULL;
            PyObject *cid_obj = name ? PyLong_FromLongLong(cid) : NULL;
            PyObject *start = cid_obj ? PyLong_FromLongLong(now - dt) : NULL;
            PyObject *r = NULL;
            if (start != NULL)
                r = PyObject_CallMethodObjArgs(
                    trace, S.n_record, tid, name, cid_obj, start, t_obj,
                    waiting ? S.str_wait : S.str_run, NULL);
            Py_XDECREF(tid);
            Py_XDECREF(name);
            Py_XDECREF(cid_obj);
            Py_XDECREF(start);
            if (r == NULL) { Py_DECREF(trace); goto done; }
            Py_DECREF(r);
        }
        Py_DECREF(trace);

        long long weight;
        if (dget_ll(task_d, task, S.n_weight, &weight) < 0) goto done;
        double vruntime;
        if (dget_dbl(task_d, task, S.n_vruntime, &vruntime) < 0) goto done;
        double vr = vruntime + (double)dt * (S.nice0 / (double)weight);
        if (dset_dbl(task_d, S.n_vruntime, vr) < 0) goto done;

        /* inline rq.note_current_vruntime(vr): lazy peek-min scan */
        {
            double floor_v = vr;
            PyObject *heap_ = dget(rq_d, rq, S.n__heap);
            if (heap_ == NULL) goto done;
            PyObject *live = dget(rq_d, rq, S.n__live);
            if (live == NULL) { Py_DECREF(heap_); goto done; }
            int scan_fail = 0;
            while (PyList_GET_SIZE(heap_) > 0) {
                PyObject *entry = PyList_GET_ITEM(heap_, 0); /* borrowed */
                PyObject *etask = PyTuple_GET_ITEM(entry, 2);
                PyObject *tid = aget(etask, S.n_tid);
                if (tid == NULL) { scan_fail = 1; break; }
                PyObject *got = PyDict_GetItemWithError(live, tid);
                Py_DECREF(tid);
                if (got == NULL && PyErr_Occurred()) { scan_fail = 1; break; }
                if (got == entry) {
                    double e0 = PyFloat_AS_DOUBLE(PyTuple_GET_ITEM(entry, 0));
                    if (e0 < floor_v) floor_v = e0;
                    break;
                }
                PyObject *dead = heappop_c(heap_, lt_entry);
                if (dead == NULL) { scan_fail = 1; break; }
                Py_DECREF(dead);
            }
            Py_DECREF(heap_);
            Py_DECREF(live);
            if (scan_fail) goto done;
            double minvr;
            if (dget_dbl(rq_d, rq, S.n_min_vruntime, &minvr) < 0) goto done;
            if (floor_v > minvr &&
                dset_dbl(rq_d, S.n_min_vruntime, floor_v) < 0)
                goto done;
        }

        if (dadd_ll(stats_d, stats, S.n_busy_us, dt) < 0) goto done;
        if (waiting) {
            if (dadd_ll(stats_d, stats, S.n_spin_us, dt) < 0) goto done;
        } else {
            double rate;
            if (dget_dbl(core_d, core, S.n__rate_at_dispatch, &rate) < 0)
                goto done;
            double md;
            if (dget_dbl(task_d, task, S.n_migration_debt_us, &md) < 0)
                goto done;
            double ddt = (double)dt;
            double debt_paid = (md < ddt) ? md : ddt; /* min(float(dt), md) */
            if (dset_dbl(task_d, S.n_migration_debt_us, md - debt_paid) < 0)
                goto done;
            double productive = ddt - debt_paid;
            double wr;
            if (dget_dbl(task_d, task, S.n_work_remaining, &wr) < 0)
                goto done;
            if (dset_dbl(task_d, S.n_work_remaining,
                         wr - productive * rate) < 0)
                goto done;
            if (dadd_ll(task_d, task, S.n_compute_us,
                        (long long)productive) < 0)
                goto done;
        }

        PyObject *kb = dget(system_d, system, S.n__kb_on_charge);
        if (kb == NULL) goto done;
        PyObject *observers = dget(system_d, system, S.n_charge_observers);
        if (observers == NULL) { Py_DECREF(kb); goto done; }
        if (kb != Py_None || PyList_GET_SIZE(observers) > 0) {
            PyObject *dt_obj = PyLong_FromLongLong(dt);
            if (dt_obj == NULL) {
                Py_DECREF(kb);
                Py_DECREF(observers);
                goto done;
            }
            int call_fail = 0;
            if (kb != Py_None) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    kb, core, task, dt_obj, NULL);
                if (r == NULL) call_fail = 1; else Py_DECREF(r);
            }
            for (Py_ssize_t i = 0;
                 !call_fail && i < PyList_GET_SIZE(observers); i++) {
                PyObject *obs = PyList_GET_ITEM(observers, i);
                Py_INCREF(obs);
                PyObject *r = PyObject_CallFunctionObjArgs(
                    obs, core, task, dt_obj, NULL);
                Py_DECREF(obs);
                if (r == NULL) call_fail = 1; else Py_DECREF(r);
            }
            Py_DECREF(dt_obj);
            if (call_fail) {
                Py_DECREF(kb);
                Py_DECREF(observers);
                goto done;
            }
        }
        Py_DECREF(kb);
        Py_DECREF(observers);
    }

    /* ---- inline _on_core_event's wait/work bookkeeping ----------- */
    {
        PyObject *waiting_on = dget(task_d, task, S.n_waiting_on);
        if (waiting_on == NULL) goto done;
        if (waiting_on != Py_None) {
            PyObject *deadline = dget(task_d, task, S.n_spin_deadline);
            if (deadline == NULL) { Py_DECREF(waiting_on); goto done; }
            if (deadline != Py_None) {
                long long dl = PyLong_AsLongLong(deadline);
                if (dl == -1 && PyErr_Occurred()) {
                    Py_DECREF(deadline);
                    Py_DECREF(waiting_on);
                    goto done;
                }
                if (now >= dl) {
                    /* rare: KMP_BLOCKTIME expired -- the same sequence
                     * of shared slow helpers the Python twin calls */
                    Py_DECREF(deadline);
                    if (dset(core_d, S.n_current, Py_None) < 0 ||
                        cell_add(load_epoch, 1) < 0) {
                        Py_DECREF(waiting_on);
                        goto done;
                    }
                    PyObject *r = PyObject_CallMethodObjArgs(
                        core, S.n__mem_note_off, task, NULL);
                    if (r == NULL) { Py_DECREF(waiting_on); goto done; }
                    Py_DECREF(r);
                    if (dset(task_d, S.n_last_descheduled_at, t_obj) < 0 ||
                        dset_ll(task_d, S.n_last_core, cid) < 0) {
                        Py_DECREF(waiting_on);
                        goto done;
                    }
                    r = PyObject_CallMethodObjArgs(
                        waiting_on, S.n_spin_timeout, task, t_obj, NULL);
                    Py_DECREF(waiting_on);
                    if (r == NULL) goto done;
                    Py_DECREF(r);
                    r = PyObject_CallMethodObjArgs(
                        system, S.n_note_residency, task, NULL);
                    if (r == NULL) goto done;
                    Py_DECREF(r);
                    r = PyObject_CallMethodObjArgs(
                        core, S.n__dispatch_next, NULL);
                    if (r == NULL) goto done;
                    Py_DECREF(r);
                    rc = 0;
                    goto done;
                }
            }
            Py_DECREF(deadline);

            PyObject *wm = dget(task_d, task, S.n_wait_mode);
            if (wm == NULL) { Py_DECREF(waiting_on); goto done; }
            int is_yield = (wm == S.wm_yield);
            Py_DECREF(wm);
            if (is_yield) {
                /* inline rq.max_vruntime(): lazy max-heap peek */
                PyObject *mheap = dget(rq_d, rq, S.n__max_heap);
                if (mheap == NULL) { Py_DECREF(waiting_on); goto done; }
                PyObject *live = dget(rq_d, rq, S.n__live);
                if (live == NULL) {
                    Py_DECREF(mheap);
                    Py_DECREF(waiting_on);
                    goto done;
                }
                double mv;
                if (dget_dbl(rq_d, rq, S.n_min_vruntime, &mv) < 0) {
                    Py_DECREF(mheap);
                    Py_DECREF(live);
                    Py_DECREF(waiting_on);
                    goto done;
                }
                int scan_fail = 0;
                while (PyList_GET_SIZE(mheap) > 0) {
                    PyObject *top = PyList_GET_ITEM(mheap, 0); /* borrowed */
                    PyObject *mentry = PyTuple_GET_ITEM(top, 2);
                    PyObject *etask = PyTuple_GET_ITEM(mentry, 2);
                    PyObject *tid = aget(etask, S.n_tid);
                    if (tid == NULL) { scan_fail = 1; break; }
                    PyObject *got = PyDict_GetItemWithError(live, tid);
                    Py_DECREF(tid);
                    if (got == NULL && PyErr_Occurred()) {
                        scan_fail = 1;
                        break;
                    }
                    if (got == mentry) {
                        mv = PyFloat_AS_DOUBLE(PyTuple_GET_ITEM(mentry, 0));
                        break;
                    }
                    PyObject *dead = heappop_c(mheap, lt_entry);
                    if (dead == NULL) { scan_fail = 1; break; }
                    Py_DECREF(dead);
                }
                Py_DECREF(mheap);
                Py_DECREF(live);
                if (scan_fail) { Py_DECREF(waiting_on); goto done; }
                double vruntime, penalty;
                if (dget_dbl(task_d, task, S.n_vruntime, &vruntime) < 0 ||
                    aget_dbl(params, S.n_yield_penalty, &penalty) < 0) {
                    Py_DECREF(waiting_on);
                    goto done;
                }
                double vr = ((mv > vruntime) ? mv : vruntime) + penalty;
                if (dset_dbl(task_d, S.n_vruntime, vr) < 0) {
                    Py_DECREF(waiting_on);
                    goto done;
                }
            }
        } else {
            double wr, md;
            if (dget_dbl(task_d, task, S.n_work_remaining, &wr) < 0 ||
                dget_dbl(task_d, task, S.n_migration_debt_us, &md) < 0) {
                Py_DECREF(waiting_on);
                goto done;
            }
            if (wr <= S.work_eps && md <= S.work_eps) {
                if (dset_dbl(task_d, S.n_work_remaining, 0.0) < 0 ||
                    dset(task_d, S.n_needs_advance, Py_True) < 0) {
                    Py_DECREF(waiting_on);
                    goto done;
                }
            }
        }
        Py_DECREF(waiting_on);
    }

    /* ---- inline _redispatch -------------------------------------- */
    int fast_path;
    {
        long long rq_count;
        if (dget_ll(rq_d, rq, S.n_count, &rq_count) < 0) goto done;
        fast_path = (rq_count == 0);
        if (fast_path) {
            int throttled = dtrue(task_d, task, S.n_throttled);
            if (throttled < 0) goto done;
            fast_path = !throttled;
        }
        if (fast_path) {
            PyObject *st = dget(task_d, task, S.n_state);
            if (st == NULL) goto done;
            fast_path = (st == S.st_running);
            Py_DECREF(st);
        }
        if (fast_path) {
            PyObject *waiting_on = dget(task_d, task, S.n_waiting_on);
            if (waiting_on == NULL) goto done;
            int cond = (waiting_on != Py_None);
            Py_DECREF(waiting_on);
            if (!cond) {
                int na = dtrue(task_d, task, S.n_needs_advance);
                if (na < 0) goto done;
                if (!na) {
                    double wr, md;
                    if (dget_dbl(task_d, task, S.n_work_remaining, &wr) < 0 ||
                        dget_dbl(task_d, task, S.n_migration_debt_us,
                                 &md) < 0)
                        goto done;
                    cond = (wr > S.work_eps || md > S.work_eps);
                }
            }
            fast_path = cond;
        }
    }

    int off_pending = 0;

    if (fast_path) {
        /* lone-task fast path: the queue round trip is an identity */
        if (dset(task_d, S.n_last_descheduled_at, t_obj) < 0 ||
            dset_ll(task_d, S.n_last_core, cid) < 0 ||
            dadd_ll(stats_d, stats, S.n_context_switches, 1) < 0 ||
            dadd_ll(stats_d, stats, S.n_dispatches, 1) < 0)
            goto done;
    } else {
        /* ---- inline _put_back_current ---------------------------- */
        if (dset(core_d, S.n_current, Py_None) < 0) goto done;
        prev = task; /* alias; prev's ref is task's ref */
        Py_INCREF(prev);
        prev_d = task_d;
        Py_INCREF(prev_d);
        {
            int track = dtrue(core_d, core, S.n__mem_track);
            if (track < 0) goto done;
            if (track) {
                double mi;
                if (dget_dbl(prev_d, prev, S.n_mem_intensity, &mi) < 0)
                    goto done;
                off_pending = (mi > 0.0);
            }
        }
        if (dset(task_d, S.n_last_descheduled_at, t_obj) < 0 ||
            dset_ll(task_d, S.n_last_core, cid) < 0 ||
            dadd_ll(stats_d, stats, S.n_context_switches, 1) < 0)
            goto done;
        {
            PyObject *st = dget(task_d, task, S.n_state);
            if (st == NULL) goto done;
            int running = (st == S.st_running);
            Py_DECREF(st);
            if (running) {
                if (dset(task_d, S.n_state, S.st_runnable) < 0) goto done;
                int throttled = dtrue(task_d, task, S.n_throttled);
                if (throttled < 0) goto done;
                if (throttled) {
                    if (cell_add(load_epoch, 1) < 0) goto done;
                    PyObject *parked = dget(core_d, core, S.n_throttled);
                    if (parked == NULL) goto done;
                    int arc = PyList_Append(parked, task);
                    Py_DECREF(parked);
                    if (arc < 0) goto done;
                } else {
                    /* inline rq.push(task): requeue is load-neutral */
                    double vruntime;
                    long long weight;
                    if (dget_dbl(task_d, task, S.n_vruntime, &vruntime) < 0 ||
                        dget_ll(task_d, task, S.n_weight, &weight) < 0)
                        goto done;
                    PyObject *cnt = PyIter_Next(S.entry_counter);
                    if (cnt == NULL) goto done;
                    long long cnt_ll = PyLong_AsLongLong(cnt);
                    PyObject *vr_obj = PyFloat_FromDouble(vruntime);
                    PyObject *entry =
                        vr_obj ? PyTuple_Pack(3, vr_obj, cnt, task) : NULL;
                    Py_XDECREF(vr_obj);
                    Py_DECREF(cnt);
                    if (entry == NULL) goto done;
                    PyObject *tid = dget(task_d, task, S.n_tid);
                    if (tid == NULL) { Py_DECREF(entry); goto done; }
                    PyObject *live = dget(rq_d, rq, S.n__live);
                    PyObject *heap_ = live ? dget(rq_d, rq, S.n__heap) : NULL;
                    PyObject *mheap =
                        heap_ ? dget(rq_d, rq, S.n__max_heap) : NULL;
                    int push_fail = (mheap == NULL);
                    if (!push_fail)
                        push_fail = (PyDict_SetItem(live, tid, entry) < 0);
                    if (!push_fail)
                        push_fail = (heappush_c(heap_, entry, lt_entry) < 0);
                    if (!push_fail) {
                        PyObject *neg_vr = PyFloat_FromDouble(-vruntime);
                        PyObject *neg_cnt =
                            neg_vr ? PyLong_FromLongLong(-cnt_ll) : NULL;
                        PyObject *mentry =
                            neg_cnt ? PyTuple_Pack(3, neg_vr, neg_cnt, entry)
                                    : NULL;
                        Py_XDECREF(neg_vr);
                        Py_XDECREF(neg_cnt);
                        if (mentry == NULL) {
                            push_fail = 1;
                        } else {
                            push_fail =
                                (heappush_c(mheap, mentry, lt_entry) < 0);
                            Py_DECREF(mentry);
                        }
                    }
                    Py_DECREF(tid);
                    Py_XDECREF(live);
                    Py_XDECREF(heap_);
                    Py_XDECREF(mheap);
                    Py_DECREF(entry);
                    if (push_fail) goto done;
                    if (dadd_ll(rq_d, rq, S.n__total_weight, weight) < 0 ||
                        dadd_ll(rq_d, rq, S.n_count, 1) < 0)
                        goto done;
                }
            } else {
                if (cell_add(load_epoch, 1) < 0) goto done;
            }
        }

        /* ---- inline _dispatch_next (cancel folded in) ------------ */
        if (dset(core_d, S.n__event, Py_None) < 0 ||
            dadd_ll(core_d, core, S.n__gen, 1) < 0 ||
            dset(core_d, S.n__in_resched, Py_True) < 0)
            goto done;
        Py_CLEAR(task); /* rebound by the pick loop below */
        Py_CLEAR(task_d);
        int loop_fail = 0;
        for (;;) {
            /* re-read _heap/_live each lap: _go_idle/_prepare side
             * effects can compact (rebind) them */
            PyObject *heap_ = dget(rq_d, rq, S.n__heap);
            PyObject *live = heap_ ? dget(rq_d, rq, S.n__live) : NULL;
            if (live == NULL) {
                Py_XDECREF(heap_);
                loop_fail = 1;
                break;
            }
            /* inline rq.pop_min() */
            Py_CLEAR(task);
            Py_CLEAR(task_d);
            while (PyList_GET_SIZE(heap_) > 0) {
                PyObject *entry = heappop_c(heap_, lt_entry);
                if (entry == NULL) { loop_fail = 1; break; }
                PyObject *cand = PyTuple_GET_ITEM(entry, 2);
                PyObject *tid = aget(cand, S.n_tid);
                if (tid == NULL) {
                    Py_DECREF(entry);
                    loop_fail = 1;
                    break;
                }
                PyObject *got = PyDict_GetItemWithError(live, tid);
                if (got == NULL && PyErr_Occurred()) {
                    Py_DECREF(tid);
                    Py_DECREF(entry);
                    loop_fail = 1;
                    break;
                }
                if (got == entry) {
                    long long weight;
                    if (PyDict_DelItem(live, tid) < 0 ||
                        aget_ll(cand, S.n_weight, &weight) < 0 ||
                        dadd_ll(rq_d, rq, S.n__total_weight, -weight) < 0 ||
                        dadd_ll(rq_d, rq, S.n_count, -1) < 0) {
                        Py_DECREF(tid);
                        Py_DECREF(entry);
                        loop_fail = 1;
                        break;
                    }
                    double e0 = PyFloat_AS_DOUBLE(PyTuple_GET_ITEM(entry, 0));
                    double minvr;
                    if (dget_dbl(rq_d, rq, S.n_min_vruntime, &minvr) < 0 ||
                        (e0 > minvr &&
                         dset_dbl(rq_d, S.n_min_vruntime, e0) < 0)) {
                        Py_DECREF(tid);
                        Py_DECREF(entry);
                        loop_fail = 1;
                        break;
                    }
                    task = cand;
                    Py_INCREF(task);
                    Py_DECREF(tid);
                    Py_DECREF(entry);
                    task_d = idict(task);
                    if (task_d == NULL) { loop_fail = 1; break; }
                    break;
                }
                Py_DECREF(tid);
                Py_DECREF(entry);
            }
            Py_DECREF(heap_);
            Py_DECREF(live);
            if (loop_fail) break;

            if (task == NULL) {
                if (off_pending) { /* flush before readers can look */
                    off_pending = 0;
                    if (mem_remove(mem_busy, cid) < 0 ||
                        cell_add(mem_epoch, 1) < 0) {
                        loop_fail = 1;
                        break;
                    }
                }
                PyObject *r =
                    PyObject_CallMethodObjArgs(core, S.n__go_idle, NULL);
                if (r == NULL) { loop_fail = 1; break; }
                Py_DECREF(r);
                long long rq_count;
                if (dget_ll(rq_d, rq, S.n_count, &rq_count) < 0) {
                    loop_fail = 1;
                    break;
                }
                if (rq_count == 0) {
                    /* genuinely idle */
                    if (dset(core_d, S.n__in_resched, Py_False) < 0)
                        goto done;
                    rc = 0;
                    goto done;
                }
                continue; /* idle balance pulled something */
            }
            {
                int throttled = dtrue(task_d, task, S.n_throttled);
                if (throttled < 0) { loop_fail = 1; break; }
                if (throttled) {
                    if (cell_add(load_epoch, 1) < 0) { loop_fail = 1; break; }
                    PyObject *parked = dget(core_d, core, S.n_throttled);
                    if (parked == NULL) { loop_fail = 1; break; }
                    int arc = PyList_Append(parked, task);
                    Py_DECREF(parked);
                    if (arc < 0) { loop_fail = 1; break; }
                    continue;
                }
            }
            {
                PyObject *waiting_on = dget(task_d, task, S.n_waiting_on);
                if (waiting_on == NULL) { loop_fail = 1; break; }
                int ready = (waiting_on != Py_None);
                Py_DECREF(waiting_on);
                if (!ready) {
                    int na = dtrue(task_d, task, S.n_needs_advance);
                    if (na < 0) { loop_fail = 1; break; }
                    if (!na) {
                        double wr, md;
                        if (dget_dbl(task_d, task, S.n_work_remaining,
                                     &wr) < 0 ||
                            dget_dbl(task_d, task, S.n_migration_debt_us,
                                     &md) < 0) {
                            loop_fail = 1;
                            break;
                        }
                        ready = (wr > S.work_eps || md > S.work_eps);
                    }
                }
                if (ready) break; /* _prepare's immediate-True cases */
            }
            if (off_pending) { /* flush before readers can look */
                off_pending = 0;
                if (mem_remove(mem_busy, cid) < 0 ||
                    cell_add(mem_epoch, 1) < 0) {
                    loop_fail = 1;
                    break;
                }
            }
            {
                PyObject *r = PyObject_CallMethodObjArgs(
                    core, S.n__prepare, task, NULL);
                if (r == NULL) { loop_fail = 1; break; }
                int prepared = PyObject_IsTrue(r);
                Py_DECREF(r);
                if (prepared < 0) { loop_fail = 1; break; }
                if (prepared) break;
            }
            /* slept or exited during prepare: load really dropped */
            if (cell_add(load_epoch, 1) < 0) { loop_fail = 1; break; }
        }
        /* the Python twin's try/finally */
        if (dset(core_d, S.n__in_resched, Py_False) < 0) goto done;
        if (loop_fail) goto done;

        /* ---- inline _start (sans the shared schedule tail) ------- */
        if (dset(task_d, S.n_state, S.st_running) < 0 ||
            dset_ll(task_d, S.n_cur_core, cid) < 0 ||
            dset(core_d, S.n_current, task) < 0)
            goto done;
        {
            double ti = 0.0, pi = 0.0;
            if (dget_dbl(task_d, task, S.n_mem_intensity, &ti) < 0 ||
                dget_dbl(prev_d, prev, S.n_mem_intensity, &pi) < 0)
                goto done;
            if (off_pending && ti == pi) {
                /* identity remove+insort of the same pair: elided */
            } else {
                if (off_pending) {
                    if (mem_remove(mem_busy, cid) < 0 ||
                        cell_add(mem_epoch, 1) < 0)
                        goto done;
                }
                int track = dtrue(core_d, core, S.n__mem_track);
                if (track < 0) goto done;
                if (track && ti > 0.0) {
                    if (mem_insort(mem_busy, cid, ti) < 0 ||
                        cell_add(mem_epoch, 1) < 0)
                        goto done;
                }
            }
        }
        if (dset(core_d, S.n_dispatch_started_at, t_obj) < 0 ||
            dadd_ll(stats_d, stats, S.n_dispatches, 1) < 0)
            goto done;
    }

    /* ---- inline effective_rate ----------------------------------- */
    double rate;
    {
        if (dget_dbl(core_d, core, S.n__clock_factor, &rate) < 0) goto done;
        int smt_active = dtrue(core_d, core, S.n__smt_active);
        if (smt_active < 0) goto done;
        if (smt_active) {
            PyObject *sib = dget(core_d, core, S.n__sib_core);
            if (sib == NULL) goto done;
            if (sib == Py_None) {
                PyObject *hw = dget(core_d, core, S.n_hw);
                if (hw == NULL) { Py_DECREF(sib); goto done; }
                PyObject *sib_id = aget(hw, S.n_smt_sibling);
                Py_DECREF(hw);
                if (sib_id == NULL) { Py_DECREF(sib); goto done; }
                if (sib_id != Py_None) {
                    PyObject *cores = dget(system_d, system, S.n_cores);
                    if (cores == NULL) {
                        Py_DECREF(sib_id);
                        Py_DECREF(sib);
                        goto done;
                    }
                    PyObject *resolved = PyObject_GetItem(cores, sib_id);
                    Py_DECREF(cores);
                    if (resolved == NULL) {
                        Py_DECREF(sib_id);
                        Py_DECREF(sib);
                        goto done;
                    }
                    if (dset(core_d, S.n__sib_core, resolved) < 0) {
                        Py_DECREF(resolved);
                        Py_DECREF(sib_id);
                        Py_DECREF(sib);
                        goto done;
                    }
                    Py_DECREF(sib);
                    sib = resolved;
                }
                Py_DECREF(sib_id);
            }
            if (sib != Py_None) {
                PyObject *sib_cur = aget(sib, S.n_current);
                if (sib_cur == NULL) { Py_DECREF(sib); goto done; }
                if (sib_cur != Py_None) {
                    double derate;
                    if (dget_dbl(core_d, core, S.n__smt_derate,
                                 &derate) < 0) {
                        Py_DECREF(sib_cur);
                        Py_DECREF(sib);
                        goto done;
                    }
                    rate *= derate;
                }
                Py_DECREF(sib_cur);
            }
            Py_DECREF(sib);
        }
        PyObject *home = dget(task_d, task, S.n_home_node);
        if (home == NULL) goto done;
        int numa = dtrue(core_d, core, S.n__numa);
        if (numa < 0) { Py_DECREF(home); goto done; }
        if (numa && home != Py_None) {
            long long home_ll = PyLong_AsLongLong(home);
            long long my_node;
            if ((home_ll == -1 && PyErr_Occurred()) ||
                dget_ll(core_d, core, S.n__numa_node, &my_node) < 0) {
                Py_DECREF(home);
                goto done;
            }
            if (home_ll != my_node) {
                double slow;
                if (dget_dbl(core_d, core, S.n__numa_remote_slowdown,
                             &slow) < 0) {
                    Py_DECREF(home);
                    goto done;
                }
                rate /= slow;
            }
        }
        Py_DECREF(home);
        double mi;
        if (dget_dbl(task_d, task, S.n_mem_intensity, &mi) < 0) goto done;
        int track = dtrue(core_d, core, S.n__mem_track);
        if (track < 0) goto done;
        if (track && mi > 0.0) {
            long long co_epoch, scope_epoch;
            PyObject *cell = PyList_GetItem(mem_epoch, 0); /* borrowed */
            if (cell == NULL) goto done;
            scope_epoch = PyLong_AsLongLong(cell);
            if (scope_epoch == -1 && PyErr_Occurred()) goto done;
            if (dget_ll(core_d, core, S.n__co_epoch, &co_epoch) < 0)
                goto done;
            double co;
            if (co_epoch == scope_epoch) {
                if (dget_dbl(core_d, core, S.n__co_sum, &co) < 0) goto done;
            } else {
                co = 0.0;
                Py_ssize_t n = PyList_GET_SIZE(mem_busy);
                for (Py_ssize_t i = 0; i < n; i++) {
                    PyObject *e = PyList_GET_ITEM(mem_busy, i);
                    long long c =
                        PyLong_AsLongLong(PyTuple_GET_ITEM(e, 0));
                    if (c != cid)
                        co += PyFloat_AS_DOUBLE(PyTuple_GET_ITEM(e, 1));
                }
                if (dset_ll(core_d, S.n__co_epoch, scope_epoch) < 0 ||
                    dset_dbl(core_d, S.n__co_sum, co) < 0)
                    goto done;
            }
            double alpha;
            if (dget_dbl(core_d, core, S.n__mem_alpha, &alpha) < 0)
                goto done;
            rate /= 1.0 + mi * alpha * co;
        }
        if (dset_dbl(core_d, S.n__rate_at_dispatch, rate) < 0) goto done;
    }

    /* ---- inline _run_duration ------------------------------------ */
    long long run_for;
    {
        long long rq_count, weight, rq_weight;
        if (dget_ll(rq_d, rq, S.n_count, &rq_count) < 0 ||
            dget_ll(task_d, task, S.n_weight, &weight) < 0 ||
            dget_ll(rq_d, rq, S.n__total_weight, &rq_weight) < 0)
            goto done;
        long long nr = rq_count + 1;
        long long total_weight = rq_weight + weight;
        long long min_gran, target_lat;
        if (aget_ll(params, S.n_min_granularity, &min_gran) < 0 ||
            aget_ll(params, S.n_target_latency, &target_lat) < 0)
            goto done;
        long long scaled = nr * min_gran;
        long long period = target_lat;
        if (scaled > period) period = scaled;
        long long slice_us;
        /* int(period * weight / total_weight): exact as a double when
         * the product stays under 2**53 (always, for sane configs);
         * fall back to PyLong arithmetic beyond that */
        if (period < (1LL << 53) / (weight > 0 ? weight : 1)) {
            slice_us = (long long)(((double)period * (double)weight) /
                                   (double)total_weight);
        } else {
            PyObject *p = PyLong_FromLongLong(period);
            PyObject *w = p ? PyLong_FromLongLong(weight) : NULL;
            PyObject *tw = w ? PyLong_FromLongLong(total_weight) : NULL;
            PyObject *prod = tw ? PyNumber_Multiply(p, w) : NULL;
            PyObject *quot = prod ? PyNumber_TrueDivide(prod, tw) : NULL;
            Py_XDECREF(p);
            Py_XDECREF(w);
            Py_XDECREF(tw);
            Py_XDECREF(prod);
            if (quot == NULL) goto done;
            slice_us = (long long)PyFloat_AsDouble(quot);
            Py_DECREF(quot);
            if (PyErr_Occurred()) goto done;
        }
        if (slice_us < min_gran) slice_us = min_gran;

        PyObject *waiting_on = dget(task_d, task, S.n_waiting_on);
        if (waiting_on == NULL) goto done;
        if (waiting_on != Py_None) {
            int is_yield = 0;
            PyObject *wm = dget(task_d, task, S.n_wait_mode);
            if (wm == NULL) { Py_DECREF(waiting_on); goto done; }
            is_yield = (wm == S.wm_yield);
            Py_DECREF(wm);
            if (is_yield && rq_count > 0) {
                long long ycheck;
                if (dget_ll(core_d, core, S.n_yield_check_us, &ycheck) < 0) {
                    Py_DECREF(waiting_on);
                    goto done;
                }
                run_for = (ycheck < slice_us) ? ycheck : slice_us;
            } else {
                run_for = slice_us;
            }
            PyObject *deadline = dget(task_d, task, S.n_spin_deadline);
            if (deadline == NULL) { Py_DECREF(waiting_on); goto done; }
            if (deadline != Py_None) {
                long long dl = PyLong_AsLongLong(deadline);
                if (dl == -1 && PyErr_Occurred()) {
                    Py_DECREF(deadline);
                    Py_DECREF(waiting_on);
                    goto done;
                }
                long long margin = dl - now;
                if (margin < 1) margin = 1;
                if (margin < run_for) run_for = margin;
            }
            Py_DECREF(deadline);
        } else {
            double wr, md;
            if (dget_dbl(task_d, task, S.n_migration_debt_us, &md) < 0 ||
                dget_dbl(task_d, task, S.n_work_remaining, &wr) < 0) {
                Py_DECREF(waiting_on);
                goto done;
            }
            double need = md + wr / rate;
            long long ceiled = (long long)ceil(need - 1e-9);
            run_for = (ceiled < slice_us) ? ceiled : slice_us;
        }
        Py_DECREF(waiting_on);
    }

    /* ---- inline BatchedEngine.schedule (the shared tail) --------- */
    {
        long long gen2;
        if (dget_ll(core_d, core, S.n__gen, &gen2) < 0) goto done;
        gen2 += 1;
        if (dset_ll(core_d, S.n__gen, gen2) < 0) goto done;
        long long delay = (run_for > 1) ? run_for : 1;
        PyObject *ev_time = PyLong_FromLongLong(now + delay);
        if (ev_time == NULL) goto done;
        long long seq_ll;
        if (dget_ll(engine_d, engine, S.n__seq, &seq_ll) < 0) {
            Py_DECREF(ev_time);
            goto done;
        }
        PyObject *oce = dget(core_d, core, S.n__oce);
        PyObject *lbl = oce ? dget(core_d, core, S.n__event_label) : NULL;
        PyObject *gen2_obj = lbl ? PyLong_FromLongLong(gen2) : NULL;
        PyObject *ev = NULL;
        if (gen2_obj != NULL)
            ev = event_new(ev_time, seq_ll, oce, lbl, engine, gen2_obj);
        Py_XDECREF(oce);
        Py_XDECREF(lbl);
        Py_XDECREF(gen2_obj);
        if (ev == NULL) { Py_DECREF(ev_time); goto done; }
        if (dset_ll(engine_d, S.n__seq, seq_ll + 1) < 0) {
            Py_DECREF(ev);
            Py_DECREF(ev_time);
            goto done;
        }
        PyObject *bucket = PyDict_GetItemWithError(buckets, ev_time);
        if (bucket == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(ev);
                Py_DECREF(ev_time);
                goto done;
            }
            PyObject *tup = PyTuple_Pack(1, ev);
            PyObject *dq =
                tup ? PyObject_CallFunctionObjArgs(S.deque_type, tup, NULL)
                    : NULL;
            Py_XDECREF(tup);
            if (dq == NULL) {
                Py_DECREF(ev);
                Py_DECREF(ev_time);
                goto done;
            }
            int drc = PyDict_SetItem(buckets, ev_time, dq);
            Py_DECREF(dq);
            if (drc < 0 || heappush_c(times, ev_time, lt_time) < 0) {
                Py_DECREF(ev);
                Py_DECREF(ev_time);
                goto done;
            }
        } else {
            PyObject *r =
                PyObject_CallMethodObjArgs(bucket, S.n_append, ev, NULL);
            if (r == NULL) {
                Py_DECREF(ev);
                Py_DECREF(ev_time);
                goto done;
            }
            Py_DECREF(r);
        }
        Py_DECREF(ev_time);
        if (dadd_ll(engine_d, engine, S.n__size, 1) < 0) {
            Py_DECREF(ev);
            goto done;
        }
        int erc = dset(core_d, S.n__event, ev);
        Py_DECREF(ev);
        if (erc < 0) goto done;
    }
    {
        int smt_active = dtrue(core_d, core, S.n__smt_active);
        if (smt_active < 0) goto done;
        if (smt_active) {
            PyObject *r = PyObject_CallMethodObjArgs(
                core, S.n__notify_sibling_rate_change, NULL);
            if (r == NULL) goto done;
            Py_DECREF(r);
        }
    }

    rc = 0;
done:
    Py_XDECREF(prev_d);
    Py_XDECREF(task_d);
    Py_XDECREF(system_d);
    Py_XDECREF(rq_d);
    Py_XDECREF(stats_d);
    Py_XDECREF(prev);
    Py_XDECREF(task);
    Py_XDECREF(params);
    Py_XDECREF(system);
    Py_XDECREF(rq);
    Py_XDECREF(stats);
    Py_XDECREF(load_epoch);
    Py_XDECREF(mem_busy);
    Py_XDECREF(mem_epoch);
    Py_DECREF(core_d);
    return rc;
}

/* ------------------------------------------------------------------ */
/* the drain loop (C twin of BatchedEngine._drain, single=False)       */
/* ------------------------------------------------------------------ */

static Py_ssize_t dq_len(PyObject *bucket) { return PyObject_Length(bucket); }

/* returns 1 if at least one event dispatched, 0 if none, -1 on error */
long long repro_drain(PyObject *engine, PyObject *until_obj) {
    if (!S_ready) {
        PyErr_SetString(PyExc_RuntimeError,
                        "native engine core not initialised");
        return -1;
    }
    PyObject *engine_d = idict(engine);
    if (engine_d == NULL) return -1;
    PyObject *buckets = dget(engine_d, engine, S.n__buckets);
    if (buckets == NULL) { Py_DECREF(engine_d); return -1; }
    PyObject *times = dget(engine_d, engine, S.n__times);
    PyObject *observers = times ? dget(engine_d, engine, S.n_observers) : NULL;
    if (observers == NULL) {
        Py_DECREF(buckets);
        Py_XDECREF(times);
        Py_DECREF(engine_d);
        return -1;
    }
    long long limit;
    if (dget_ll(engine_d, engine, S.n_max_events, &limit) < 0) {
        Py_DECREF(buckets);
        Py_DECREF(times);
        Py_DECREF(observers);
        Py_DECREF(engine_d);
        return -1;
    }
    int have_until = (until_obj != Py_None);
    long long until = 0;
    if (have_until) {
        until = PyLong_AsLongLong(until_obj);
        if (until == -1 && PyErr_Occurred()) goto fail;
    }
    long long dispatched_any = 0;
    unsigned long long event_tick = 0;

    while (PyList_GET_SIZE(times) > 0) {
        PyObject *t_obj = PyList_GET_ITEM(times, 0); /* borrowed */
        Py_INCREF(t_obj);
        PyObject *bucket = PyDict_GetItemWithError(buckets, t_obj);
        if (bucket == NULL) {
            if (PyErr_Occurred()) { Py_DECREF(t_obj); goto fail; }
            /* stale time left behind by a compaction */
            PyObject *dead = heappop_c(times, lt_time);
            Py_DECREF(t_obj);
            if (dead == NULL) goto fail;
            Py_DECREF(dead);
            continue;
        }
        Py_INCREF(bucket);
        /* one bound-method lookup per bucket, not one per event */
        PyObject *popleft_m = PyObject_GetAttr(bucket, S.n_popleft);
        if (popleft_m == NULL) {
            Py_DECREF(bucket);
            Py_DECREF(t_obj);
            goto fail;
        }
        long long t = PyLong_AsLongLong(t_obj);
        if (t == -1 && PyErr_Occurred()) goto bucket_fail;

        if (have_until && t > until) {
            /* mirror the heap loop: purge leading cancelled entries
             * past ``until`` so ``pending`` agrees between backends */
            for (;;) {
                Py_ssize_t blen = dq_len(bucket);
                if (blen < 0) goto bucket_fail;
                if (blen == 0) break;
                PyObject *ev0 = PySequence_GetItem(bucket, 0);
                if (ev0 == NULL) goto bucket_fail;
                int cancelled = ev_true(ev0, EV_CANCELLED, S.n_cancelled);
                if (cancelled < 0) { Py_DECREF(ev0); goto bucket_fail; }
                if (!cancelled) { Py_DECREF(ev0); break; }
                PyObject *popped = PyObject_CallNoArgs(popleft_m);
                Py_DECREF(ev0);
                if (popped == NULL) goto bucket_fail;
                if (ev_write(popped, EV_IN_HEAP, S.n_in_heap, Py_False) < 0 ||
                    dadd_ll(engine_d, engine, S.n__cancelled, -1) < 0 ||
                    dadd_ll(engine_d, engine, S.n__size, -1) < 0) {
                    Py_DECREF(popped);
                    goto bucket_fail;
                }
                Py_DECREF(popped);
            }
            Py_ssize_t blen = dq_len(bucket);
            if (blen < 0) goto bucket_fail;
            if (blen > 0) {
                Py_DECREF(popleft_m);
                Py_DECREF(bucket);
                Py_DECREF(t_obj);
                break; /* next live event is past until */
            }
            if (PyDict_DelItem(buckets, t_obj) < 0) goto bucket_fail;
            PyObject *dead = heappop_c(times, lt_time);
            Py_DECREF(popleft_m);
            Py_DECREF(bucket);
            Py_DECREF(t_obj);
            if (dead == NULL) goto fail;
            Py_DECREF(dead);
            continue;
        }

        /* Python runs observers and then writes ``now = t`` ahead of
         * every live dispatch; within one bucket the written value
         * never changes, so with no observers registered at bucket
         * entry the write (and the backwards-time guard) hoists to
         * the first live dispatch of the bucket.  With observers the
         * per-event order (observers first, then the write) is
         * observable and the per-event path is kept.  An observer
         * registered by a callback mid-bucket sees ``now == t``
         * either way. */
        int per_event_now = (PyList_GET_SIZE(observers) > 0);
        int now_written = 0;

        /* drain the bucket front-first; callbacks may append events
         * for the current instant and the length re-check picks them
         * up in seq order, exactly as the heap would */
        for (;;) {
            Py_ssize_t blen = dq_len(bucket);
            if (blen < 0) goto bucket_fail;
            if (blen == 0) break;
            {
                int stop = dtrue(engine_d, engine, S.n__stop_requested);
                if (stop < 0) goto bucket_fail;
                if (stop) {
                    Py_DECREF(popleft_m);
                    Py_DECREF(bucket);
                    Py_DECREF(t_obj);
                    goto out;
                }
            }
            PyObject *ev = PyObject_CallNoArgs(popleft_m);
            if (ev == NULL) goto bucket_fail;
            if (ev_write(ev, EV_IN_HEAP, S.n_in_heap, Py_False) < 0 ||
                dadd_ll(engine_d, engine, S.n__size, -1) < 0) {
                Py_DECREF(ev);
                goto bucket_fail;
            }
            {
                int cancelled = ev_true(ev, EV_CANCELLED, S.n_cancelled);
                if (cancelled < 0) { Py_DECREF(ev); goto bucket_fail; }
                if (cancelled) {
                    if (dadd_ll(engine_d, engine, S.n__cancelled, -1) < 0) {
                        Py_DECREF(ev);
                        goto bucket_fail;
                    }
                    Py_DECREF(ev);
                    continue;
                }
            }
            if (PyList_GET_SIZE(observers) > 0) {
                int obs_fail = 0;
                for (Py_ssize_t i = 0; i < PyList_GET_SIZE(observers); i++) {
                    PyObject *obs = PyList_GET_ITEM(observers, i);
                    Py_INCREF(obs);
                    PyObject *r = PyObject_CallOneArg(obs, ev);
                    Py_DECREF(obs);
                    if (r == NULL) { obs_fail = 1; break; }
                    Py_DECREF(r);
                }
                if (obs_fail) { Py_DECREF(ev); goto bucket_fail; }
            }
            if (per_event_now || !now_written) {
                long long engine_now;
                if (dget_ll(engine_d, engine, S.n_now, &engine_now) < 0) {
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
                if (t < engine_now) { /* defensive, mirrors Python */
                    PyErr_SetString(S.SimulationError,
                                    "event queue time went backwards");
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
                if (dset(engine_d, S.n_now, t_obj) < 0) {
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
                now_written = 1;
            }
            {
                long long d;
                if (dget_ll(engine_d, engine, S.n__dispatched, &d) < 0) {
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
                d += 1;
                if (dset_ll(engine_d, S.n__dispatched, d) < 0) {
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
                if (d > limit) {
                    PyObject *lbl = ev_read(ev, EV_LABEL, S.n_label);
                    if (lbl != NULL) {
                        PyErr_Format(S.SimulationError,
                                     "event limit exceeded (%lld); likely "
                                     "livelock near t=%lld (last: %R)",
                                     limit, t, lbl);
                        Py_DECREF(lbl);
                    }
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
            }
            /* dispatch: the fused core event runs in C, everything
             * else through the ordinary Python call */
            {
                PyObject *cb = ev_read(ev, EV_CALLBACK, S.n_callback);
                if (cb == NULL) { Py_DECREF(ev); goto bucket_fail; }
                PyObject *payload = ev_read(ev, EV_PAYLOAD, S.n_payload);
                if (payload == NULL) {
                    Py_DECREF(cb);
                    Py_DECREF(ev);
                    goto bucket_fail;
                }
                int ok;
                if (payload != Py_None && PyMethod_Check(cb) &&
                    PyMethod_GET_FUNCTION(cb) == S.fused) {
                    stat_fused++;
                    ok = (fused_core_event(PyMethod_GET_SELF(cb), payload,
                                           engine, engine_d, buckets, times,
                                           t_obj, t) == 0);
                } else {
                    stat_generic++;
                    PyObject *r = (payload == Py_None)
                                      ? PyObject_CallNoArgs(cb)
                                      : PyObject_CallOneArg(cb, payload);
                    ok = (r != NULL);
                    Py_XDECREF(r);
                }
                Py_DECREF(payload);
                Py_DECREF(cb);
                if (!ok) { Py_DECREF(ev); goto bucket_fail; }
            }
            Py_DECREF(ev);
            dispatched_any = 1;
            if (((++event_tick) & 4095) == 0 && PyErr_CheckSignals() < 0)
                goto bucket_fail;
            continue;

        bucket_fail:
            Py_DECREF(popleft_m);
            Py_DECREF(bucket);
            Py_DECREF(t_obj);
            goto fail;
        }

        /* bucket exhausted: callbacks cannot have created a smaller
         * time nor re-pushed t, so times[0] is still t */
        if (PyDict_DelItem(buckets, t_obj) < 0) {
            Py_DECREF(popleft_m);
            Py_DECREF(bucket);
            Py_DECREF(t_obj);
            goto fail;
        }
        {
            PyObject *dead = heappop_c(times, lt_time);
            Py_DECREF(popleft_m);
            Py_DECREF(bucket);
            Py_DECREF(t_obj);
            if (dead == NULL) goto fail;
            Py_DECREF(dead);
        }
    }

out:
    Py_DECREF(buckets);
    Py_DECREF(times);
    Py_DECREF(observers);
    Py_DECREF(engine_d);
    return dispatched_any;

fail:
    Py_DECREF(buckets);
    Py_DECREF(times);
    Py_DECREF(observers);
    Py_DECREF(engine_d);
    return -1;
}

/* ------------------------------------------------------------------ */
/* initialisation                                                      */
/* ------------------------------------------------------------------ */

/* the binding module checks this against its expected value so a stale
 * cached artifact from an older source revision is never used */
long long repro_native_abi(void) { return 1; }

/* dispatch-path counters: 0 = fused-in-C, 1 = generic Python call,
 * 2 = delegated to the Python fused twin; anything else = -1 */
long long repro_native_stat(long long which) {
    switch (which) {
    case 0: return stat_fused;
    case 1: return stat_generic;
    case 2: return stat_delegated;
    default: return -1;
    }
}

/* resolve the Event __slots__ member offsets from the class's slot
 * descriptors; refuses anything that is not a real member descriptor
 * so a future Event redesign fails loudly here instead of corrupting
 * memory */
static int resolve_ev_slots(void) {
    static const char *names[EV_NSLOTS] = {
        "time", "seq", "callback", "cancelled",
        "label", "engine", "in_heap", "payload",
    };
    for (int i = 0; i < EV_NSLOTS; i++) {
        PyObject *d = PyObject_GetAttrString(S.EventClass, names[i]);
        if (d == NULL) return -1;
        if (!PyObject_TypeCheck(d, &PyMemberDescr_Type)) {
            Py_DECREF(d);
            PyErr_Format(PyExc_TypeError,
                         "Event.%s is not a slot descriptor", names[i]);
            return -1;
        }
        ev_off[i] = ((PyMemberDescrObject *)d)->d_member->offset;
        Py_DECREF(d);
    }
    return 0;
}

static PyObject *take(PyObject *support, const char *key) {
    PyObject *v = PyDict_GetItemString(support, key); /* borrowed */
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "native support dict missing %s", key);
        return NULL;
    }
    Py_INCREF(v);
    return v;
}

long long repro_native_init(PyObject *support) {
    if (S_ready) return 0;
    if (!PyDict_Check(support)) {
        PyErr_SetString(PyExc_TypeError, "support must be a dict");
        return -1;
    }
#define X(n)                                                                \
    S.n_##n = PyUnicode_InternFromString(#n);                               \
    if (S.n_##n == NULL) return -1;
    ATTR_NAMES(X)
#undef X
    if ((S.SimulationError = take(support, "SimulationError")) == NULL ||
        (S.EventClass = take(support, "Event")) == NULL ||
        (S.fused = take(support, "fused")) == NULL ||
        (S.CfsParams = take(support, "CfsParams")) == NULL ||
        (S.st_running = take(support, "RUNNING")) == NULL ||
        (S.st_runnable = take(support, "RUNNABLE")) == NULL ||
        (S.wm_yield = take(support, "YIELD")) == NULL ||
        (S.entry_counter = take(support, "entry_counter")) == NULL ||
        (S.deque_type = take(support, "deque")) == NULL)
        return -1;
    if (resolve_ev_slots() < 0) return -1;
    PyObject *eps = PyDict_GetItemString(support, "WORK_EPS");
    PyObject *nice0 = PyDict_GetItemString(support, "NICE_0_WEIGHT");
    if (eps == NULL || nice0 == NULL) {
        PyErr_SetString(PyExc_KeyError,
                        "native support dict missing WORK_EPS/NICE_0_WEIGHT");
        return -1;
    }
    S.work_eps = PyFloat_AsDouble(eps);
    S.nice0 = PyFloat_AsDouble(nice0);
    if (PyErr_Occurred()) return -1;
    S.str_wait = PyUnicode_InternFromString("wait");
    S.str_run = PyUnicode_InternFromString("run");
    if (S.str_wait == NULL || S.str_run == NULL) return -1;
    S_ready = 1;
    return 0;
}
