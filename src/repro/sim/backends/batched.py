"""The batched dispatch backend: a calendar queue drained per tick.

Scenario workloads are dominated by events that land on shared integer
timestamps -- barrier releases wake every waiter at one instant,
balancer ticks and scheduler slices quantize onto the same 10 ms grid.
The heap backend pays an O(log n) tuple-comparison pop per event; this
backend keys a dict of FIFO *buckets* by the integer timestamp and a
small min-heap of distinct times, so draining one simulated instant
("tick") costs one heap pop for the whole batch plus an O(1) popleft
per event.

Ordering is bit-identical to the heap by construction:

* the global sequence number is monotonically increasing, so appending
  to a time's bucket preserves (time, seq) order -- a bucket *is* the
  contiguous run of heap entries for that time;
* a callback scheduling new work at the current instant appends to the
  live bucket, which the drain loop picks up exactly where the heap's
  pop-next-smallest would;
* cancellation stays lazy (cancelled events are skipped on drain), and
  compaction only rewrites strictly-future buckets, so the bucket
  being drained is never mutated under the loop.

Per-event semantics (observer order, the backwards-time guard, the
``max_events`` limit firing after the dispatch count increments but
before the callback, ``stop()`` taking effect before the next event of
the same batch) replicate :meth:`Engine._drain` line for line; the
golden-digest suite holds the two backends to that.

:attr:`Engine.batching` is True here, which arms the batch-aware
memoization paths in :class:`~repro.sched.core.CoreSim` (per-scope
contention rates computed once per (time, scope) epoch) and
:class:`~repro.balance.linux.LinuxLoadBalancer` (no-op balance passes
replayed from a load-epoch memo).  Those caches are versioned by
monotonic epoch counters bumped on every relevant mutation, so a stale
entry can never match; recomputation performs the identical float
operations in the identical order, keeping every digest unchanged.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.engine import _COMPACT_MIN_HEAP, Engine, Event, SimulationError

__all__ = ["BatchedEngine"]


class BatchedEngine(Engine):
    """Calendar-queue engine: one FIFO bucket per integer timestamp."""

    #: arms the batch-aware memoization fast paths in the layers above
    batching = True

    def __init__(self, max_events: int = 200_000_000) -> None:
        super().__init__(max_events=max_events)
        #: time -> FIFO of events at that time (appended in seq order)
        self._buckets: dict[int, deque[Event]] = {}
        #: min-heap of distinct bucket times; may hold stale times whose
        #: bucket a compaction emptied (skipped lazily on drain)
        self._times: list[int] = []
        #: events resident in buckets (live + not-yet-purged cancelled);
        #: the batched analogue of ``len(self._heap)``
        self._size: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        label: str = "",
        payload: Optional[Any] = None,
    ) -> Event:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past (now={self.now})")
        # inlined bucket insert (shared with schedule_at): this is the
        # hottest allocation site, so it pays to skip a helper frame
        time = self.now + int(delay)
        ev = Event(time, self._seq, callback, label, self, payload)
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((ev,))
            heappush(self._times, time)
        else:
            bucket.append(ev)
        self._size += 1
        return ev

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., Any],
        label: str = "",
        payload: Optional[Any] = None,
    ) -> Event:
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} before now={self.now}")
        time = int(time)
        ev = Event(time, self._seq, callback, label, self, payload)
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((ev,))
            heappush(self._times, time)
        else:
            bucket.append(ev)
        self._size += 1
        return ev

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Dispatch events in time order, with the cycle collector off.

        The drain loop allocates heavily (an Event and usually a
        closure per dispatch) but drops its garbage promptly via
        refcounting; Python's cycle collector only adds periodic sweep
        pauses on top.  Disabling it for the duration of the run is
        semantically invisible -- nothing in the simulator relies on
        collection timing -- and is restored even when the run raises.
        """
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            super().run(until)
        finally:
            if was_enabled:
                gc.enable()

    def _drain(self, until: Optional[int], single: bool) -> bool:
        buckets = self._buckets
        times = self._times
        limit = self.max_events
        observers = self.observers  # alias, not copy: live hook list
        dispatched_any = False
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:  # stale time left behind by a compaction
                heappop(times)
                continue
            if until is not None and t > until:
                # the heap loop purges cancelled entries even past
                # ``until`` while they lead the queue; mirror that so
                # ``pending`` agrees between backends
                while bucket and bucket[0].cancelled:
                    ev = bucket.popleft()
                    ev.in_heap = False
                    self._cancelled -= 1
                    self._size -= 1
                if bucket:
                    break
                del buckets[t]
                heappop(times)
                continue
            # Drain the bucket front-first.  Callbacks may append events
            # for the current instant; the ``while bucket`` re-check
            # picks them up in seq order, exactly as the heap would.
            while bucket:
                if not single and self._stop_requested:
                    return dispatched_any
                ev = bucket.popleft()
                ev.in_heap = False
                self._size -= 1
                if ev.cancelled:
                    self._cancelled -= 1
                    continue
                if observers:
                    for obs in observers:
                        obs(ev)
                if t < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event queue time went backwards")
                self.now = t
                d = self._dispatched + 1
                self._dispatched = d
                if d > limit:
                    raise SimulationError(
                        f"event limit exceeded ({limit}); "
                        f"likely livelock near t={self.now} (last: {ev.label!r})"
                    )
                payload = ev.payload
                if payload is not None:
                    ev.callback(payload)
                else:
                    ev.callback()
                if single:
                    if not bucket:
                        del buckets[t]
                        heappop(times)
                    return True
                dispatched_any = True
            # bucket exhausted: callbacks cannot have created a smaller
            # time (schedule guards time >= now == t) nor re-pushed t
            # (the bucket existed throughout), so times[0] is still t
            del buckets[t]
            heappop(times)
        return dispatched_any

    # ------------------------------------------------------------------
    # cancelled-entry accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled * 2 > self._size and self._size >= _COMPACT_MIN_HEAP:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from strictly-future buckets.

        The bucket at ``now`` may be mid-drain (cancel is most often
        called from inside a callback), so it is left alone; its
        cancelled entries are reclaimed when the drain loop reaches
        them within this same instant.  Emptied buckets are deleted;
        their entries in ``_times`` go stale and are skipped lazily.
        """
        now = self.now
        buckets = self._buckets
        removed = 0
        dead_times = []
        for t, bucket in buckets.items():
            if t <= now:
                continue
            live = [ev for ev in bucket if not ev.cancelled]
            dropped = len(bucket) - len(live)
            if not dropped:
                continue
            for ev in bucket:
                if ev.cancelled:
                    ev.in_heap = False
            removed += dropped
            if live:
                buckets[t] = deque(live)
            else:
                dead_times.append(t)
        for t in dead_times:
            del buckets[t]
        self._cancelled -= removed
        self._size -= removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._size - self._cancelled

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                heappop(times)
                continue
            while bucket and bucket[0].cancelled:
                ev = bucket.popleft()
                ev.in_heap = False
                self._cancelled -= 1
                self._size -= 1
            if bucket:
                return t
            del buckets[t]
            heappop(times)
        return None
