"""The heap dispatch backend: the original engine, under its own name.

:class:`HeapEngine` is :class:`~repro.sim.engine.Engine` -- a binary
heap of ``(time, seq, event)`` triples with lazy cancellation.  The
subclass exists so the backend registry can address it symmetrically
with :class:`~repro.sim.backends.batched.BatchedEngine` and so
``type(engine)`` names the selected backend in debugging output; it
adds no behaviour.
"""

from __future__ import annotations

from repro.sim.engine import Engine

__all__ = ["HeapEngine"]


class HeapEngine(Engine):
    """The default (heap-based) dispatch backend."""
