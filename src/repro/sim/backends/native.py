"""The native dispatch backend: the batched drain loop compiled to C.

:class:`NativeEngine` is :class:`~repro.sim.backends.batched
.BatchedEngine` with one substitution: ``run()``'s drain loop executes
inside a small C library (``_native/engine_core.c``) compiled on first
use with the stock ``cc`` toolchain and bound through stdlib
:mod:`ctypes`.  Everything else -- the calendar-queue data structures,
``schedule``/``cancel``, ``step()``, compaction, introspection -- is
inherited Python; the C side reads and writes the very same attributes
(``_buckets``, ``_times``, ``_size``, ...), so the two halves can
interleave freely.

The C loop additionally intercepts the hot fused scheduler event
(:meth:`CoreSim._on_core_event_batched` on a CFS run queue) and runs a
line-for-line C twin of it: C ``double`` arithmetic in the identical
operation order reproduces CPython float results bit for bit, so every
run digest is unchanged -- the same golden-digest wall that admitted
the batched backend holds this one to the heap reference.  Cold paths
(tracing, balancers, observers, blocked/idle transitions, non-CFS
policies) call back into the ordinary Python methods.

Construction raises :class:`~repro.sim.backends.nativebuild
.NativeUnavailableError` when no C compiler is available; the
pure-Python backends remain the reference and the fallback.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.backends.batched import BatchedEngine
from repro.sim.backends.nativebuild import load_native_lib

__all__ = ["NativeEngine"]


class NativeEngine(BatchedEngine):
    """Calendar-queue engine whose drain loop runs in compiled C."""

    def __init__(self, max_events: int = 200_000_000) -> None:
        # compile/load before touching anything else so an unusable
        # toolchain surfaces as NativeUnavailableError at construction,
        # not as a mystery mid-run
        self._lib = load_native_lib()
        super().__init__(max_events=max_events)

    def _drain(self, until: Optional[int], single: bool) -> bool:
        if single:
            # step() is a debugging/inspection path; the Python loop's
            # single-event bookkeeping is not worth duplicating in C
            return super()._drain(until, single)
        rc: int = self._lib.repro_drain(self, until)
        # a set Python error flag raises through PyDLL before we get
        # here, so rc is 0 or 1
        return bool(rc)
