"""On-demand compilation and ctypes binding for the native engine core.

The native backend ships as C *source* (``_native/engine_core.c``), not
as a prebuilt artifact: the repository stays pure-source, there are no
wheels or build-system dependencies, and the only toolchain requirement
is a stock C compiler.  This module compiles the source on first use
with whatever ``cc`` is on PATH and caches the shared library under a
key derived from the source digest and the interpreter version, so a
process pays the (sub-second) compile exactly once per source change
per machine -- every later construction is a ``dlopen``.

Binding is stdlib :mod:`ctypes` with :class:`ctypes.PyDLL`: the
library speaks the CPython C-API directly, so it must run with the GIL
held, and ``PyDLL`` both keeps the GIL and converts a set Python error
flag into a raised exception after each call.  There is exactly one
boundary crossing per engine run (``repro_drain``) -- the per-call
ctypes overhead (~1 microsecond) would swamp any win if the boundary
sat inside the event loop.

When no C compiler is available the backend is *unavailable*, not
broken: :func:`load_native_lib` raises :class:`NativeUnavailableError`
with an actionable message, ``backend_available("native")`` returns
False, and the pure-Python backends remain the reference and the
fallback.  Nothing in this module runs at import time.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

__all__ = [
    "NativeUnavailableError",
    "load_native_lib",
    "native_available",
    "native_cache_dir",
    "native_stats",
]

#: bumped together with the C side's ``repro_native_abi`` whenever the
#: exported interface changes; a cached artifact with the wrong ABI is
#: discarded and rebuilt rather than trusted
_ABI_VERSION = 1

_SOURCE = Path(__file__).resolve().parent / "_native" / "engine_core.c"

#: compilers probed, in order, when $CC is unset
_COMPILERS = ("cc", "gcc", "clang")

#: process-level cache: source digest -> configured PyDLL
_loaded: dict[str, ctypes.PyDLL] = {}


class NativeUnavailableError(RuntimeError):
    """The native backend cannot be used on this machine.

    Raised when no C compiler is found or the one found cannot build
    the engine core.  Callers that can fall back (tests, benches with
    ``--engine`` sweeps) should catch this and skip; the CLI surfaces
    the message as-is, which names the fix.
    """


def _find_compiler() -> Optional[str]:
    env_cc = os.environ.get("CC")
    if env_cc:
        found = shutil.which(env_cc)
        if found:
            return found
    for cand in _COMPILERS:
        found = shutil.which(cand)
        if found:
            return found
    return None


def native_cache_dir() -> Path:
    """Where compiled artifacts live (override: $REPRO_NATIVE_CACHE)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native"


def _source_digest() -> str:
    """Cache key: C source + interpreter version + ABI revision.

    The interpreter version is folded in because the library is built
    against this interpreter's headers; a pyenv switch must recompile.
    """
    h = hashlib.sha256()
    h.update(_SOURCE.read_bytes())
    h.update(f"|py{sys.version_info[0]}.{sys.version_info[1]}".encode())
    h.update(f"|abi{_ABI_VERSION}".encode())
    return h.hexdigest()[:16]


def _compile(cc: str, out_path: Path) -> None:
    include_dir = sysconfig.get_paths()["include"]
    out_path.parent.mkdir(parents=True, exist_ok=True)
    # build to a temp name and os.replace so concurrent processes (the
    # sweep worker pool) race benignly: last writer wins, every reader
    # sees a complete artifact
    fd, tmp_name = tempfile.mkstemp(
        suffix=".so", prefix=out_path.stem + ".", dir=str(out_path.parent)
    )
    os.close(fd)
    cmd = [
        cc,
        "-O2",
        "-shared",
        "-fPIC",
        "-fno-strict-aliasing",
        f"-I{include_dir}",
        str(_SOURCE),
        "-o",
        tmp_name,
        "-lm",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-8:]
            raise NativeUnavailableError(
                f"C compiler {cc!r} failed to build the native engine core "
                f"(exit {proc.returncode}):\n" + "\n".join(tail)
            )
        os.replace(tmp_name, out_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)


def _bind(path: Path) -> ctypes.PyDLL:
    # PyDLL: the library calls the CPython C-API, so the GIL stays held
    # and a set error flag raises after each call
    lib = ctypes.PyDLL(str(path))
    lib.repro_native_abi.restype = ctypes.c_longlong
    lib.repro_native_abi.argtypes = []
    lib.repro_native_init.restype = ctypes.c_longlong
    lib.repro_native_init.argtypes = [ctypes.py_object]
    lib.repro_drain.restype = ctypes.c_longlong
    lib.repro_drain.argtypes = [ctypes.py_object, ctypes.py_object]
    lib.repro_native_stat.restype = ctypes.c_longlong
    lib.repro_native_stat.argtypes = [ctypes.c_longlong]
    return lib


def _support_dict() -> dict:
    # imported here, not at module top: repro.sched.core must not be a
    # hard import dependency of the backends package
    from collections import deque

    from repro.sched.core import _WORK_EPS, CoreSim
    from repro.sched.cfs import CfsParams
    from repro.sched.runqueue import _entry_counter
    from repro.sched.task import NICE_0_WEIGHT, TaskState, WaitMode
    from repro.sim.engine import Event, SimulationError

    return {
        "SimulationError": SimulationError,
        "Event": Event,
        "fused": CoreSim._on_core_event_batched,
        "CfsParams": CfsParams,
        "RUNNING": TaskState.RUNNING,
        "RUNNABLE": TaskState.RUNNABLE,
        "YIELD": WaitMode.YIELD,
        "entry_counter": _entry_counter,
        "deque": deque,
        "WORK_EPS": float(_WORK_EPS),
        "NICE_0_WEIGHT": float(NICE_0_WEIGHT),
    }


def load_native_lib() -> ctypes.PyDLL:
    """Compile (once) and bind the native engine core.

    Returns the configured :class:`ctypes.PyDLL`.  Raises
    :class:`NativeUnavailableError` when no working C compiler exists.
    """
    digest = _source_digest()
    lib = _loaded.get(digest)
    if lib is not None:
        return lib
    artifact = native_cache_dir() / f"engine_core-{digest}.so"
    if not artifact.exists():
        cc = _find_compiler()
        if cc is None:
            raise NativeUnavailableError(
                "the 'native' engine backend needs a C compiler ($CC, cc, "
                "gcc or clang on PATH) and none was found; install one or "
                "select --engine heap or --engine batched"
            )
        _compile(cc, artifact)
    try:
        bound = _bind(artifact)
        abi = bound.repro_native_abi()
    except OSError as exc:
        raise NativeUnavailableError(
            f"failed to load native engine core {artifact}: {exc}"
        ) from exc
    if abi != _ABI_VERSION:
        # stale artifact from an older source revision: rebuild once
        artifact.unlink(missing_ok=True)
        cc = _find_compiler()
        if cc is None:
            raise NativeUnavailableError(
                "cached native engine core has a stale ABI and no C "
                "compiler is available to rebuild it"
            )
        _compile(cc, artifact)
        bound = _bind(artifact)
        abi = bound.repro_native_abi()
        if abi != _ABI_VERSION:  # pragma: no cover - defensive
            raise NativeUnavailableError(
                f"native engine core ABI mismatch (got {abi}, "
                f"want {_ABI_VERSION})"
            )
    if bound.repro_native_init(_support_dict()) != 0:  # pragma: no cover
        raise NativeUnavailableError("native engine core failed to initialise")
    # a dlopen-handle memo, not simulation state: handles survive fork,
    # the library is immutable once built, and every worker binding the
    # same digest gets an equivalent handle -- determinism-neutral
    _loaded[digest] = bound  # sim-lint: ignore[FLOW004]
    return bound


def native_stats() -> dict[str, int]:
    """Process-lifetime dispatch counters from the C core.

    ``fused`` counts events that ran through the compiled CFS twin,
    ``generic`` events dispatched via an ordinary Python call, and
    ``delegated`` fused events handed back to the Python twin (non-CFS
    slice policies).  Used by tests to prove the fast path is actually
    exercised rather than silently falling back.
    """
    lib = load_native_lib()
    return {
        "fused": int(lib.repro_native_stat(0)),
        "generic": int(lib.repro_native_stat(1)),
        "delegated": int(lib.repro_native_stat(2)),
    }


def native_available() -> bool:
    """True iff the native backend can be constructed on this machine."""
    try:
        load_native_lib()
    except NativeUnavailableError:
        return False
    return True
