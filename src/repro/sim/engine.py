"""Event loop for the multicore scheduling simulator.

Design notes
------------
Time is an integer number of **microseconds**.  Integer time makes every
run bit-reproducible across platforms: there is no floating-point event
reordering, and equal-time events fire in insertion (FIFO) order thanks
to a monotonically increasing sequence number used as a tiebreaker.

The engine is deliberately minimal -- a heap of ``(time, seq, event)``
triples -- because the simulator above it (cores, balancers, barrier
timeouts) cancels and reschedules events constantly.  Cancellation is
lazy: a cancelled event stays in the heap but is skipped when popped,
which keeps ``cancel`` O(1).  The engine tracks how many cancelled
entries the heap holds, so :attr:`Engine.pending` is O(1), and when
cancelled entries outnumber live ones the heap is compacted in place
(amortized O(1) per cancel) so pathological cancel/reschedule churn
cannot grow the heap without bound.

The engine knows nothing about cores or tasks; higher layers register
plain callbacks.  This keeps the kernel independently testable and lets
the same loop drive the analytical micro-models in the test suite.

Dispatch fast path
------------------
``run`` and ``step`` share one dispatch body (:meth:`Engine._drain`) so
the two can never drift apart (the backwards-time and ``max_events``
guards historically existed only in ``run``).  The shared loop binds
hot globals and attributes to locals and keeps the per-event observer
hook to a single truthiness test on a local alias of
:attr:`Engine.observers`, which makes the common no-observer case a
specialized tight loop while still honouring observers installed
before the run (the list is aliased, not copied, so in-place
``append``/``remove`` are seen immediately).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

__all__ = ["Engine", "Event", "SimulationError"]

#: heap sizes below this are never compacted -- rebuilding a tiny heap
#: costs more bookkeeping than the cancelled entries it would reclaim.
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state.

    Examples: scheduling an event in the past, or running an engine
    past its configured hard event limit (which almost always indicates
    a livelock in a scheduler model, e.g. two balancers migrating the
    same task back and forth every microsecond).
    """


class Event:
    """Handle for a scheduled callback.

    Instances are created by :meth:`Engine.schedule`; user code only
    ever calls :meth:`cancel` or inspects :attr:`time`.  ``engine`` and
    ``in_heap`` are engine-internal bookkeeping for the O(1) live-event
    counter; events forged without them (``engine=None``) still behave,
    they are just excluded from the cancelled-entry accounting.

    ``payload`` rides along with the event and is passed to the
    callback at dispatch (``callback(payload)``); a ``None`` payload
    means a zero-argument callback.  The dispatch core uses this to
    schedule a long-lived bound method plus a generation integer
    instead of allocating a fresh closure per dispatched event -- the
    payload slot is what keeps the hot kernel closure-free (KERN005)
    and therefore portable to the compiled ``native`` backend.
    """

    __slots__ = (
        "time", "seq", "callback", "cancelled", "label", "engine", "in_heap",
        "payload",
    )

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        label: str,
        engine: Optional["Engine"] = None,
        payload: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self.engine = engine
        # engine-created events are pushed immediately after construction
        self.in_heap = engine is not None
        self.payload = payload

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent, O(1) amortized."""
        if self.cancelled:
            return
        self.cancelled = True
        eng = self.engine
        if eng is not None and self.in_heap:
            eng._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        # Kept for forged-event tests and direct comparisons; the engine
        # heap itself holds (time, seq, event) tuples so heap ordering
        # uses C-level tuple comparison and never calls back into this.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} {self.label!r} {state}>"


class Engine:
    """A deterministic discrete-event loop with integer-microsecond time.

    Parameters
    ----------
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        this many dispatched events.  The default is high enough for the
        largest paper experiment (~tens of millions) while still
        catching livelocks in seconds.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    #: True on backends that drain same-time events as one batch (see
    #: :mod:`repro.sim.backends`).  The scheduling layers read this to
    #: arm their batch-aware memoization fast paths; the heap engine
    #: keeps them off so the default path stays byte-for-byte the code
    #: that produced every historical baseline.
    batching: bool = False

    def __init__(self, max_events: int = 200_000_000) -> None:
        self.now: int = 0
        #: (time, seq, event) triples: seq is unique, so heap comparisons
        #: resolve on the int prefix at C speed without touching Event
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._dispatched: int = 0
        #: cancelled events still sitting in the heap (lazy deletion)
        self._cancelled: int = 0
        self.max_events = max_events
        self._running = False
        self._stop_requested = False
        #: dispatch observers, called with each live event just before
        #: its callback runs (and before the clock advances).  This is
        #: the instrumentation hook the runtime invariant checker
        #: (:mod:`repro.analysis.invariants`) installs; observers must
        #: not mutate engine state.
        self.observers: list[Callable[[Event], Any]] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        label: str = "",
        payload: Optional[Any] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``delay`` must be a non-negative integer; a zero delay runs the
        callback after all events already queued for the current time.
        When ``payload`` is not None the callback is invoked as
        ``callback(payload)``, which lets hot call sites schedule a
        long-lived bound method instead of a fresh closure per event.
        Returns the :class:`Event` handle, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past (now={self.now})")
        # inlined schedule_at: delay >= 0 already guarantees time >= now,
        # and this is the hottest allocation site in the simulator.
        ev = Event(self.now + int(delay), self._seq, callback, label, self, payload)
        self._seq += 1
        heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., Any],
        label: str = "",
        payload: Optional[Any] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} before now={self.now}")
        ev = Event(int(time), self._seq, callback, label, self, payload)
        self._seq += 1
        heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Dispatch events in time order.

        Stops when the queue is exhausted or, if ``until`` is given,
        when the next event would fire strictly after ``until`` (the
        clock is then advanced to ``until``).
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        self._stop_requested = False
        try:
            self._drain(until, single=False)
            if until is not None and self.now < until and not self._stop_requested:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch a single event.  Returns False if the queue is empty.

        ``step`` shares the dispatch body with :meth:`run` (same
        backwards-time guard, ``max_events`` guard and observer
        notification); unlike ``run`` it ignores :meth:`stop` requests,
        which only scope over the run they interrupt.
        """
        return self._drain(None, single=True)

    def _drain(self, until: Optional[int], single: bool) -> bool:
        """The one dispatch loop behind both :meth:`run` and :meth:`step`.

        Returns True iff at least one event was dispatched (the value
        :meth:`step` reports).  Hot attributes are bound to locals; the
        observer list is aliased so in-place mutation is still honoured
        while the empty-observer test stays a single local truthiness
        check.
        """
        heap = self._heap
        pop = heappop
        limit = self.max_events
        observers = self.observers  # alias, not copy: live hook list
        dispatched_any = False
        while heap and (single or not self._stop_requested):
            t, _, ev = heap[0]
            if ev.cancelled:
                pop(heap)
                ev.in_heap = False
                if ev.engine is not None:
                    self._cancelled -= 1
                continue
            if until is not None and t > until:
                break
            pop(heap)
            ev.in_heap = False
            if observers:
                for obs in observers:
                    obs(ev)
            if t < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue time went backwards")
            self.now = t
            d = self._dispatched + 1
            self._dispatched = d
            if d > limit:
                raise SimulationError(
                    f"event limit exceeded ({limit}); "
                    f"likely livelock near t={self.now} (last: {ev.label!r})"
                )
            payload = ev.payload
            if payload is not None:
                ev.callback(payload)
            else:
                ev.callback()
            if single:
                return True
            dispatched_any = True
        return dispatched_any

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event.

        Used by the system layer to end a run when the applications
        under study have finished, even though background tasks (a
        cpu-hog, balancer timers) would generate events forever.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # cancelled-entry accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Count a cancellation; compact when the heap is mostly dead.

        Called by :meth:`Event.cancel` for events the engine scheduled
        (and that are still queued).  Compaction rewrites the heap in
        place, so a ``run`` loop holding a local alias keeps working.
        """
        self._cancelled += 1
        heap = self._heap
        if self._cancelled * 2 > len(heap) and len(heap) >= _COMPACT_MIN_HEAP:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place."""
        heap = self._heap
        live = [entry for entry in heap if not entry[2].cancelled]
        for entry in heap:
            if entry[2].cancelled:
                entry[2].in_heap = False
        heap[:] = live
        heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1).

        Maintained as ``len(heap) - cancelled_in_heap``; events forged
        directly into the heap without an engine backref (test-only) are
        counted as live until popped.
        """
        return len(self._heap) - self._cancelled

    @property
    def dispatched(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    def fingerprint(self) -> dict[str, int]:
        """Canonical end-of-run engine state, for determinism checks.

        Two runs of the same scenario that made identical scheduling
        decisions end with the same clock, the same number of dispatched
        events and the same number of scheduled events; any divergence
        anywhere in a run perturbs at least one of the three.  The
        schedule sanitizer's differential determinism checker folds this
        dict into its canonical run digest, so the engine itself --
        not just the recorded trace -- is part of the bit-identical
        claim.
        """
        return {
            "now": self.now,
            "dispatched": self._dispatched,
            "scheduled": self._seq,
        }

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            ev = heappop(heap)[2]
            ev.in_heap = False
            if ev.engine is not None:
                self._cancelled -= 1
        return heap[0][0] if heap else None
