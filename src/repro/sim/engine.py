"""Event loop for the multicore scheduling simulator.

Design notes
------------
Time is an integer number of **microseconds**.  Integer time makes every
run bit-reproducible across platforms: there is no floating-point event
reordering, and equal-time events fire in insertion (FIFO) order thanks
to a monotonically increasing sequence number used as a tiebreaker.

The engine is deliberately minimal -- a heap of ``(time, seq, event)``
triples -- because the simulator above it (cores, balancers, barrier
timeouts) cancels and reschedules events constantly.  Cancellation is
lazy: a cancelled event stays in the heap but is skipped when popped,
which keeps ``cancel`` O(1).

The engine knows nothing about cores or tasks; higher layers register
plain callbacks.  This keeps the kernel independently testable and lets
the same loop drive the analytical micro-models in the test suite.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Engine", "Event", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state.

    Examples: scheduling an event in the past, or running an engine
    past its configured hard event limit (which almost always indicates
    a livelock in a scheduler model, e.g. two balancers migrating the
    same task back and forth every microsecond).
    """


class Event:
    """Handle for a scheduled callback.

    Instances are created by :meth:`Engine.schedule`; user code only
    ever calls :meth:`cancel` or inspects :attr:`time`.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: int, seq: int, callback: Callable[[], Any], label: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent, O(1)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:  # heap ordering
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} {self.label!r} {state}>"


class Engine:
    """A deterministic discrete-event loop with integer-microsecond time.

    Parameters
    ----------
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        this many dispatched events.  The default is high enough for the
        largest paper experiment (~tens of millions) while still
        catching livelocks in seconds.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    def __init__(self, max_events: int = 200_000_000):
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._dispatched: int = 0
        self.max_events = max_events
        self._running = False
        self._stop_requested = False
        #: dispatch observers, called with each live event just before
        #: its callback runs (and before the clock advances).  This is
        #: the instrumentation hook the runtime invariant checker
        #: (:mod:`repro.analysis.invariants`) installs; observers must
        #: not mutate engine state.
        self.observers: list[Callable[[Event], Any]] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``delay`` must be a non-negative integer; a zero delay runs the
        callback after all events already queued for the current time.
        Returns the :class:`Event` handle, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past (now={self.now})")
        return self.schedule_at(self.now + int(delay), callback, label)

    def schedule_at(self, time: int, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at t={time} before now={self.now}")
        ev = Event(int(time), self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Dispatch events in time order.

        Stops when the queue is exhausted or, if ``until`` is given,
        when the next event would fire strictly after ``until`` (the
        clock is then advanced to ``until``).
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        self._stop_requested = False
        try:
            while self._heap and not self._stop_requested:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                if self.observers:
                    for obs in self.observers:
                        obs(ev)
                if ev.time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event queue time went backwards")
                self.now = ev.time
                self._dispatched += 1
                if self._dispatched > self.max_events:
                    raise SimulationError(
                        f"event limit exceeded ({self.max_events}); "
                        f"likely livelock near t={self.now} (last: {ev.label!r})"
                    )
                ev.callback()
            if until is not None and self.now < until and not self._stop_requested:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event.

        Used by the system layer to end a run when the applications
        under study have finished, even though background tasks (a
        cpu-hog, balancer timers) would generate events forever.
        """
        self._stop_requested = True

    def step(self) -> bool:
        """Dispatch a single event.  Returns False if the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if self.observers:
                for obs in self.observers:
                    obs(ev)
            if ev.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event queue time went backwards")
            self.now = ev.time
            self._dispatched += 1
            if self._dispatched > self.max_events:
                raise SimulationError(
                    f"event limit exceeded ({self.max_events}); "
                    f"likely livelock near t={self.now} (last: {ev.label!r})"
                )
            ev.callback()
            return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def dispatched(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
