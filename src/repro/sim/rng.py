"""Seeded, stream-separated randomness for the simulator.

Every stochastic decision in the simulator -- balance-interval jitter
(Section 5.1 of the paper), taskstats measurement noise (Section 5.2),
fork-placement tie breaking, make-job durations -- draws from a *named
stream*.  Streams are independent child generators derived from the run
seed and the stream name, so

* two runs with the same seed are bit-identical, and
* adding a draw to one component does not shift the sequence seen by
  any other component (which would otherwise make A/B comparisons of
  balancers noisy for spurious reasons).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

__all__ = ["SimRng"]

T = TypeVar("T")


class SimRng:
    """A root seed plus a dictionary of named child streams.

    Examples
    --------
    >>> rng = SimRng(seed=42)
    >>> a = rng.stream("balancer.jitter")
    >>> b = rng.stream("placement")
    >>> a is rng.stream("balancer.jitter")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the child generator ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            gen = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = gen
        return gen

    # Convenience wrappers used throughout the simulator ---------------
    def jitter_us(self, name: str, max_us: int) -> int:
        """Uniform integer in ``[0, max_us]`` from stream ``name``."""
        if max_us <= 0:
            return 0
        return self.stream(name).randint(0, int(max_us))

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """Gaussian draw from stream ``name`` (sigma<=0 returns mu)."""
        if sigma <= 0:
            return mu
        return self.stream(name).gauss(mu, sigma)

    def choice(self, name: str, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self.stream(name).choice(list(seq))

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi)``."""
        return self.stream(name).uniform(lo, hi)

    def shuffled(self, name: str, seq: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``seq``."""
        out = list(seq)
        self.stream(name).shuffle(out)
        return out

    def randint(self, name: str, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]``."""
        return self.stream(name).randint(lo, hi)
