"""Content-addressed experiment store.

Paper-scale evaluation grids (NAS benches x balancers x core counts x
10 seeds, Section 6 of the paper) are expensive to recompute and
perfectly cacheable: every cell is a deterministic function of its
configuration.  This package provides the persistence layer --

* :mod:`repro.store.keys` turns a configuration
  (:class:`~repro.harness.parallel.RunSpec`, sweep cell) into a
  canonical SHA-256 digest;
* :mod:`repro.store.store` files results (and optional gzipped traces)
  under those digests on disk, with integrity verified on every read,
  plus ``gc`` / ``verify`` / ``stats`` maintenance.

The job layer on top (:mod:`repro.service`) dedupes submissions
against this store so identical configurations simulate exactly once;
``repeat_run(store=...)`` / ``sweep(store=...)`` and the ``repro
submit`` CLI ride on both.  See docs/store.md.
"""

from repro.store.keys import (
    UnstorableSpecError,
    canonical_json,
    canonical_value,
    digest_of,
    function_ref,
    spec_digest,
    spec_key,
    sweep_cell_key,
)
from repro.store.store import (
    DEFAULT_ROOT,
    STORE_SCHEMA,
    GcReport,
    ResultStore,
    StoreEntry,
    StoreError,
    StoreIntegrityError,
    StoreLockError,
    StoreStats,
)

__all__ = [
    "DEFAULT_ROOT",
    "STORE_SCHEMA",
    "GcReport",
    "ResultStore",
    "StoreEntry",
    "StoreError",
    "StoreIntegrityError",
    "StoreLockError",
    "StoreStats",
    "UnstorableSpecError",
    "canonical_json",
    "canonical_value",
    "digest_of",
    "function_ref",
    "spec_digest",
    "spec_key",
    "sweep_cell_key",
]
