"""Canonical content-addressed keys for experiment configurations.

The store (:mod:`repro.store.store`) files every artifact under the
SHA-256 digest of the *configuration that produced it*, so two
invocations asking for the same simulation resolve to the same entry
without comparing anything but a hex string.  That only works if equal
configurations serialize to equal bytes; this module defines that
canonical form.

A configuration -- a :class:`~repro.harness.parallel.RunSpec`, or a
sweep cell ``(runner, assignment)`` -- is reduced to a *canonical
value*: a JSON tree built from ``None``/``bool``/``int``/``float``/
``str``, lists, and string-keyed objects, with the non-JSON leaves the
harness actually uses encoded explicitly:

* dataclass instances (:class:`~repro.apps.workloads.AppSpec`,
  :class:`~repro.core.speed_balancer.SpeedBalancerConfig`, ...) become
  ``{"__dataclass__": "module:QualName", "fields": {...}}``;
* enum members (:class:`~repro.topology.machine.DomainLevel`,
  :class:`~repro.sched.task.WaitMode`) become
  ``{"__enum__": "module:QualName.NAME"}``;
* module-level functions (machine preset factories, co-runner
  factories) become ``{"__function__": "module:qualname"}`` -- the
  *identity* of deterministic code, resolvable on load;
* dicts with non-string keys become an explicitly ordered pair list
  ``{"__dict__": [[k, v], ...]}``.

Anything else -- lambdas, closures, live :class:`Machine` or
:class:`System` objects -- has no stable byte form and raises
:class:`UnstorableSpecError` *before* any simulation runs, naming the
offending value and the picklable/storable alternative.

The digest is then ``sha256(canonical_json(value))`` where
``canonical_json`` is the same sorted-keys/no-whitespace form
:meth:`~repro.metrics.results.AppRunResult.canonical_json` uses, so
the whole chain (spec digest, result digest, trace digest) speaks one
serialization dialect.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import importlib
import json
import math
from typing import Any

from repro.harness.parallel import RunSpec

__all__ = [
    "UnstorableSpecError",
    "canonical_json",
    "canonical_value",
    "digest_of",
    "function_ref",
    "spec_digest",
    "spec_key",
    "sweep_cell_key",
]


class UnstorableSpecError(ValueError):
    """A configuration has no canonical byte form.

    Raised before any simulation runs when a spec (or sweep cell)
    contains a value the store cannot key stably -- a lambda, a
    closure, an interactively created object.  The fix is always the
    same one :mod:`repro.harness.parallel` already asks for: machine
    preset *names*, :class:`~repro.apps.workloads.AppSpec` instances,
    plain dataclasses and module-level functions.
    """


def function_ref(fn: Any) -> str:
    """``"module:qualname"`` for a module-level callable.

    Verifies the reference resolves back to the same object, so a
    digest never names code that cannot be found again.
    """
    mod = getattr(fn, "__module__", None)
    qual = getattr(fn, "__qualname__", None)
    if not mod or not qual or "<locals>" in qual or "<lambda>" in qual:
        raise UnstorableSpecError(
            f"{fn!r} is not a module-level function; lambdas and closures "
            "have no stable identity to key a store entry by -- use a "
            "module-level function, an AppSpec or a plain dataclass"
        )
    try:
        obj: Any = importlib.import_module(mod)
        for part in qual.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise UnstorableSpecError(
            f"cannot resolve {mod}:{qual} back to an object ({exc}); "
            "store keys must reference importable code"
        ) from None
    if obj is not fn:
        raise UnstorableSpecError(
            f"{mod}:{qual} resolves to a different object than {fn!r}; "
            "store keys must reference importable module-level code"
        )
    return f"{mod}:{qual}"


def _type_ref(tp: type) -> str:
    """``"module:QualName"`` for a module-level type; reject local ones.

    A type defined inside a function has ``<locals>`` in its qualname:
    two *different* local types can share the ref across runs, so a
    digest built from one would not name a unique configuration.
    """
    ref = f"{tp.__module__}:{tp.__qualname__}"
    if "<locals>" in tp.__qualname__:
        raise UnstorableSpecError(
            f"{ref} is defined inside a function; store keys must "
            "reference importable module-level types"
        )
    return ref


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to the canonical JSON tree (see module docs)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise UnstorableSpecError(
                f"non-finite float {value!r} has no canonical JSON form"
            )
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{_type_ref(type(value))}.{value.name}"}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: canonical_value(value[k]) for k in sorted(value)}
        pairs = [
            [canonical_value(k), canonical_value(v)] for k, v in value.items()
        ]
        pairs.sort(key=lambda kv: canonical_json(kv[0]))
        return {"__dict__": pairs}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _type_ref(type(value)),
            "fields": {
                f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if callable(value):
        return {"__function__": function_ref(value)}
    raise UnstorableSpecError(
        f"{value!r} (type {type(value).__qualname__}) has no canonical "
        "byte form; store keys are built from plain values, dataclasses, "
        "enums and module-level functions"
    )


def canonical_json(value: Any) -> str:
    """Sorted-keys, no-whitespace JSON -- the store's byte dialect."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def digest_of(key: Any) -> str:
    """SHA-256 hex digest of a key's canonical byte form."""
    payload = canonical_json(canonical_value(key))
    return hashlib.sha256(payload.encode()).hexdigest()


def spec_key(spec: RunSpec) -> dict:
    """The canonical key object of one :class:`RunSpec`."""
    return {
        "kind": "run",
        "machine": canonical_value(spec.machine),
        "app": canonical_value(spec.app),
        "balancer": spec.balancer,
        "cores": canonical_value(spec.cores),
        "seed": spec.seed,
        # backends are digest-equivalent but not wall-clock-equivalent;
        # keying the engine keeps cached timings honest and lets the two
        # backends' artifacts coexist in one store
        "engine": spec.engine,
        "params": {
            name: canonical_value(value) for name, value in spec.params
        },
    }


def spec_digest(spec: RunSpec) -> str:
    """Content digest of one :class:`RunSpec` (the store's entry key)."""
    return digest_of(spec_key(spec))


def sweep_cell_key(runner: Any, assignment: dict) -> dict:
    """The canonical key object of one sweep grid cell.

    Keyed by the runner's code identity plus the full parameter
    assignment, so one store serves many distinct sweeps without
    collisions.
    """
    return {
        "kind": "sweep-cell",
        "runner": function_ref(runner),
        "assignment": {
            str(name): canonical_value(value)
            for name, value in assignment.items()
        },
    }
