"""Content-addressed on-disk store for experiment results.

Layout (under the store root, ``.repro-store/`` by default)::

    index.json                  -- manifest: digest -> summary (O(1) listing)
    index.lock                  -- transient inter-process mutation lock
    objects/<2-char shard>/<digest>/
        entry.json              -- spec key, result/value, integrity digest
        trace.json.gz           -- optional gzipped full trace

Every entry is keyed by the SHA-256 digest of the canonical form of
the configuration that produced it (:mod:`repro.store.keys`), so a
re-run of the same :class:`~repro.harness.parallel.RunSpec` or sweep
cell resolves to the same object without executing anything.

Integrity
---------
``entry.json`` carries an ``integrity`` field: the SHA-256 of the
entry's canonical JSON *without* that field.  Every read recomputes it
-- plus, for runs, the result digest (the PR 3
:func:`~repro.analysis.sanitizer.run_digest` over the parsed result)
and, for traces, the SHA-256 of the decompressed bytes -- and raises
:class:`StoreIntegrityError` on any mismatch.  A flipped bit on disk
is therefore *detected*, never silently served; callers like
:class:`repro.service.JobService` treat the error as a cache miss and
recompute.

Concurrency
-----------
Object writes are atomic (staged under ``tmp/``, then ``os.rename`` of
the whole entry directory); a losing racer of two identical writes
discards its staging copy -- content-addressing makes the winner's
bytes equivalent.  Index mutations serialize on ``index.lock``
(created ``O_CREAT | O_EXCL``); the index is only an accelerator and
can always be rebuilt from the objects tree (``gc`` does exactly
that), so a stale lock or torn index is recoverable, not fatal.

All directory walks are sorted -- the determinism linter's SIM006 rule
covers this package.
"""

from __future__ import annotations

import errno
import gzip
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

from repro.harness.parallel import RunSpec
from repro.metrics.export import (
    result_from_dict,
    result_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.metrics.results import AppRunResult, RepeatedResult
from repro.metrics.trace import TraceRecorder
from repro.store.keys import canonical_json, canonical_value, digest_of, spec_key

__all__ = [
    "STORE_SCHEMA",
    "DEFAULT_ROOT",
    "GcReport",
    "ResultStore",
    "StoreEntry",
    "StoreError",
    "StoreIntegrityError",
    "StoreLockError",
    "StoreStats",
]

STORE_SCHEMA = 1
DEFAULT_ROOT = ".repro-store"

#: bounded lock acquisition: ~50 attempts x 20 ms ~= 1 s worst case
_LOCK_ATTEMPTS = 50
_LOCK_SLEEP_S = 0.02


class StoreError(Exception):
    """Base class for store failures."""


class StoreIntegrityError(StoreError):
    """A stored entry failed an integrity check; its bytes are not the
    bytes that were written.  Callers must treat the entry as absent
    (and may delete it), never use its contents."""


class StoreLockError(StoreError):
    """The inter-process index lock could not be acquired in time."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _result_digest(result: Union[AppRunResult, RepeatedResult]) -> str:
    """Digest of a result, PR 3 dialect.

    Single runs use :func:`repro.analysis.sanitizer.run_digest` (the
    digest the differential determinism checker compares); repeat
    aggregates hash their runs' digests in order.
    """
    from repro.analysis.sanitizer import run_digest

    if isinstance(result, RepeatedResult):
        h = hashlib.sha256()
        for r in result.runs:
            h.update(run_digest(result=r).encode())
            h.update(b"\n")
        return "repeat:" + h.hexdigest()
    return run_digest(result=result)


@dataclass(frozen=True)
class StoreEntry:
    """One integrity-verified entry read back from the store."""

    digest: str
    kind: str  #: "run" | "value"
    spec: dict  #: the canonical key object that produced the entry
    seq: int
    result: Optional[Union[AppRunResult, RepeatedResult]] = None
    value: Any = None
    result_digest: Optional[str] = None
    has_trace: bool = False

    @property
    def payload(self) -> Any:
        """The stored outcome, whichever kind it is."""
        return self.result if self.kind == "run" else self.value


@dataclass(frozen=True)
class StoreStats:
    """Aggregate numbers behind ``repro store stats``."""

    root: str
    entries: int
    traced: int
    total_bytes: int
    next_seq: int


@dataclass
class GcReport:
    """What one ``gc`` pass did."""

    kept: int = 0
    removed_corrupt: int = 0
    removed_evicted: int = 0
    bytes_freed: int = 0
    adopted: int = 0  #: valid objects the index did not know about
    findings: list[str] = field(default_factory=list)


def _empty_index() -> dict:
    return {"schema": STORE_SCHEMA, "next_seq": 0, "entries": {}}


class ResultStore:
    """Content-addressed store of experiment results (see module docs)."""

    def __init__(self, root: Union[str, Path] = DEFAULT_ROOT):
        self.root = Path(root)

    # -- paths ----------------------------------------------------------
    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def _lock_path(self) -> Path:
        return self.root / "index.lock"

    def _object_dir(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    # -- locking --------------------------------------------------------
    def _with_lock(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` holding the inter-process mutation lock."""
        self.root.mkdir(parents=True, exist_ok=True)
        for attempt in range(_LOCK_ATTEMPTS):
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(fd)
                break
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                time.sleep(_LOCK_SLEEP_S)
        else:
            raise StoreLockError(
                f"could not acquire {self._lock_path} after "
                f"{_LOCK_ATTEMPTS} attempts; if no other process is using "
                "the store, remove the stale lock file"
            )
        try:
            return fn()
        finally:
            try:
                os.unlink(self._lock_path)
            except FileNotFoundError:  # pragma: no cover - external removal
                pass

    # -- index ----------------------------------------------------------
    def _read_index(self) -> dict:
        try:
            index = json.loads(self._index_path.read_text())
        except FileNotFoundError:
            return _empty_index()
        except (OSError, json.JSONDecodeError):
            # the index is an accelerator; a torn one is rebuilt
            return self._rebuild_index_unlocked()
        if index.get("schema") != STORE_SCHEMA:
            raise StoreError(
                f"{self._index_path}: unsupported store schema "
                f"{index.get('schema')!r} (this build reads {STORE_SCHEMA})"
            )
        return index

    def _write_index(self, index: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._index_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self._index_path)

    def _walk_object_digests(self) -> Iterator[str]:
        """Every object digest on disk, in sorted (deterministic) order."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir():
                    yield entry.name

    def _rebuild_index_unlocked(self) -> dict:
        """Reconstruct the manifest from the objects tree (skip corrupt)."""
        index = _empty_index()
        rows = []
        for digest in self._walk_object_digests():
            try:
                entry_doc = self._load_entry_doc(digest)
            except StoreIntegrityError:
                continue
            rows.append((entry_doc["seq"], digest, entry_doc))
        rows.sort()
        for seq, digest, doc in rows:
            index["entries"][digest] = self._index_row(doc)
            index["next_seq"] = max(index["next_seq"], seq + 1)
        return index

    @staticmethod
    def _index_row(doc: dict) -> dict:
        spec = doc["spec"]
        app = spec.get("app")
        return {
            "seq": doc["seq"],
            "kind": doc["kind"],
            "has_trace": doc.get("trace_sha256") is not None,
            "balancer": spec.get("balancer"),
            "seed": spec.get("seed"),
            "app": app.get("fields", {}).get("bench")
            if isinstance(app, dict) else None,
        }

    # -- entry serialization -------------------------------------------
    @staticmethod
    def _integrity_of(doc: dict) -> str:
        body = {k: v for k, v in doc.items() if k != "integrity"}
        return _sha256(canonical_json(body).encode())

    def _load_entry_doc(self, digest: str) -> dict:
        """Read and integrity-check ``entry.json``; raise on any damage."""
        path = self._object_dir(digest) / "entry.json"
        try:
            raw = path.read_text()
        except FileNotFoundError:
            raise StoreError(f"no store entry {digest}") from None
        except UnicodeDecodeError as exc:
            raise StoreIntegrityError(
                f"{path}: entry is not valid UTF-8 ({exc}); the entry is "
                "corrupt and must be recomputed"
            ) from None
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"{path}: entry is not parseable JSON ({exc}); the entry "
                "is corrupt and must be recomputed"
            ) from None
        if not isinstance(doc, dict) or "integrity" not in doc:
            raise StoreIntegrityError(f"{path}: entry has no integrity digest")
        want = doc["integrity"]
        got = self._integrity_of(doc)
        if got != want:
            raise StoreIntegrityError(
                f"{path}: integrity digest mismatch (stored {want[:12]}..., "
                f"recomputed {got[:12]}...); the entry bytes changed after "
                "they were written"
            )
        if doc.get("spec_digest") != digest:
            raise StoreIntegrityError(
                f"{path}: entry claims spec digest "
                f"{str(doc.get('spec_digest'))[:12]}... but is filed under "
                f"{digest[:12]}..."
            )
        return doc

    # -- write ----------------------------------------------------------
    def put(
        self,
        spec: Union[RunSpec, dict],
        outcome: Any,
        trace: Optional[TraceRecorder] = None,
    ) -> str:
        """File ``outcome`` (and optionally its trace) under the spec's
        content digest; returns the digest.

        ``spec`` is a :class:`RunSpec` or an already-canonical key
        object (e.g. :func:`~repro.store.keys.sweep_cell_key`).
        ``outcome`` is an :class:`AppRunResult` / :class:`RepeatedResult`
        (stored with its PR 3 result digest) or any canonicalizable
        plain value.  Writing the same digest twice is a no-op (the
        bytes are equivalent by construction).
        """
        key = spec_key(spec) if isinstance(spec, RunSpec) else canonical_value(spec)
        digest = digest_of(key)

        doc: dict[str, Any] = {
            "schema": STORE_SCHEMA,
            "spec": key,
            "spec_digest": digest,
        }
        if isinstance(outcome, (AppRunResult, RepeatedResult)):
            doc["kind"] = "run"
            doc["result"] = result_to_dict(outcome)
            doc["result_digest"] = _result_digest(outcome)
            doc["value"] = None
        else:
            doc["kind"] = "value"
            doc["result"] = None
            doc["result_digest"] = None
            doc["value"] = canonical_value(outcome)

        trace_blob: Optional[bytes] = None
        if trace is not None:
            raw = canonical_json(trace_to_dict(trace)).encode()
            doc["trace_sha256"] = _sha256(raw)
            trace_blob = gzip.compress(raw, mtime=0)
        else:
            doc["trace_sha256"] = None

        def commit() -> str:
            index = self._read_index()
            if digest in index["entries"] and self._object_dir(digest).exists():
                return digest
            seq = index["next_seq"]
            doc["seq"] = seq
            doc["integrity"] = self._integrity_of(doc)

            stage = self.root / "tmp" / f"{digest}.{os.getpid()}"
            stage.mkdir(parents=True, exist_ok=True)
            (stage / "entry.json").write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
            if trace_blob is not None:
                (stage / "trace.json.gz").write_bytes(trace_blob)

            final = self._object_dir(digest)
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(stage, final)
            except OSError:
                # lost a cross-process race; the winner's bytes are
                # equivalent (same digest, same canonical serialization)
                for p in sorted(stage.iterdir()):
                    p.unlink()
                stage.rmdir()
                return digest
            index["entries"][digest] = self._index_row(doc)
            index["next_seq"] = seq + 1
            self._write_index(index)
            return digest

        return self._with_lock(commit)

    # -- read -----------------------------------------------------------
    def contains(self, digest_or_spec: Union[str, RunSpec]) -> bool:
        digest = self._resolve(digest_or_spec)
        return (self._object_dir(digest) / "entry.json").is_file()

    def _resolve(self, digest_or_spec: Union[str, RunSpec]) -> str:
        if isinstance(digest_or_spec, RunSpec):
            return digest_of(spec_key(digest_or_spec))
        return digest_or_spec

    def get(self, digest_or_spec: Union[str, RunSpec]) -> Optional[StoreEntry]:
        """Load and verify one entry; ``None`` when absent.

        Raises :class:`StoreIntegrityError` when the entry exists but
        its bytes fail verification -- corrupt data is never returned.
        """
        digest = self._resolve(digest_or_spec)
        if not (self._object_dir(digest) / "entry.json").is_file():
            return None
        doc = self._load_entry_doc(digest)
        result: Optional[Union[AppRunResult, RepeatedResult]] = None
        if doc["kind"] == "run":
            result = result_from_dict(doc["result"])
            recomputed = _result_digest(result)
            if recomputed != doc["result_digest"]:
                raise StoreIntegrityError(
                    f"{digest[:12]}...: stored result digest "
                    f"{str(doc['result_digest'])[:12]}... does not match the "
                    f"parsed result ({recomputed[:12]}...)"
                )
        return StoreEntry(
            digest=digest,
            kind=doc["kind"],
            spec=doc["spec"],
            seq=doc["seq"],
            result=result,
            value=doc.get("value"),
            result_digest=doc.get("result_digest"),
            has_trace=doc.get("trace_sha256") is not None,
        )

    def load_trace(
        self, digest_or_spec: Union[str, RunSpec]
    ) -> Optional[TraceRecorder]:
        """Load an entry's stored trace; ``None`` when it has none."""
        digest = self._resolve(digest_or_spec)
        doc = self._load_entry_doc(digest)
        want = doc.get("trace_sha256")
        if want is None:
            return None
        path = self._object_dir(digest) / "trace.json.gz"
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise StoreIntegrityError(
                f"{digest[:12]}...: entry records a trace but "
                f"{path.name} is missing"
            ) from None
        try:
            raw = gzip.decompress(blob)
        except (OSError, EOFError) as exc:
            raise StoreIntegrityError(
                f"{digest[:12]}...: stored trace is not valid gzip ({exc})"
            ) from None
        if _sha256(raw) != want:
            raise StoreIntegrityError(
                f"{digest[:12]}...: stored trace bytes do not match the "
                "digest recorded at write time"
            )
        return trace_from_dict(json.loads(raw))

    def delete(self, digest_or_spec: Union[str, RunSpec]) -> bool:
        """Remove one entry (object + index row); True if it existed."""
        digest = self._resolve(digest_or_spec)

        def commit() -> bool:
            existed = self._remove_object(digest)
            index = self._read_index()
            if index["entries"].pop(digest, None) is not None:
                self._write_index(index)
                existed = True
            return existed

        return self._with_lock(commit)

    def _remove_object(self, digest: str) -> bool:
        obj = self._object_dir(digest)
        if not obj.exists():
            return False
        for p in sorted(obj.iterdir()):
            p.unlink()
        obj.rmdir()
        try:
            obj.parent.rmdir()  # drop the shard dir when it empties
        except OSError:
            pass
        return True

    # -- listing --------------------------------------------------------
    def digests(self) -> list[str]:
        """All entry digests, oldest first (O(1): read from the index)."""
        index = self._read_index()
        return sorted(index["entries"], key=lambda d: index["entries"][d]["seq"])

    def entries(self) -> list[dict]:
        """Index rows (digest + summary), oldest first."""
        index = self._read_index()
        return [
            {"digest": d, **index["entries"][d]} for d in self.digests()
        ]

    # -- maintenance ----------------------------------------------------
    def stats(self) -> StoreStats:
        index = self._read_index()
        total = 0
        traced = 0
        objects = self.root / "objects"
        if objects.is_dir():
            for shard in sorted(objects.iterdir()):
                for obj in sorted(shard.iterdir()) if shard.is_dir() else []:
                    for f in sorted(obj.iterdir()) if obj.is_dir() else []:
                        total += f.stat().st_size
        for row in index["entries"].values():
            if row.get("has_trace"):
                traced += 1
        return StoreStats(
            root=str(self.root),
            entries=len(index["entries"]),
            traced=traced,
            total_bytes=total,
            next_seq=index["next_seq"],
        )

    def verify(self) -> list[str]:
        """Full integrity pass; returns human-readable findings.

        Checks every object's entry digest, result digest and trace
        bytes, plus index <-> objects consistency, without modifying
        anything.  An empty list means the store is clean.
        """
        findings: list[str] = []
        on_disk: set[str] = set()
        for digest in self._walk_object_digests():
            on_disk.add(digest)
            try:
                entry = self.get(digest)
                if entry is not None and entry.has_trace:
                    self.load_trace(digest)
            except StoreError as exc:
                findings.append(f"corrupt {digest[:12]}...: {exc}")
        index = self._read_index()
        for digest in sorted(set(index["entries"]) - on_disk):
            findings.append(f"indexed but missing on disk: {digest[:12]}...")
        for digest in sorted(on_disk - set(index["entries"])):
            findings.append(f"on disk but not indexed: {digest[:12]}...")
        return findings

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> GcReport:
        """Collect garbage: drop corrupt objects, rebuild the index,
        then evict oldest-first down to the caps.

        Eviction order is insertion order (``seq``), which is
        deterministic and wall-clock free; see docs/store.md for the
        policy rationale.  Returns a :class:`GcReport`.
        """

        def commit() -> GcReport:
            report = GcReport()
            index_before = self._read_index()
            known = set(index_before["entries"])
            rows: list[tuple[int, str, int]] = []  # (seq, digest, bytes)
            for digest in list(self._walk_object_digests()):
                obj = self._object_dir(digest)
                size = sum(
                    f.stat().st_size for f in sorted(obj.iterdir())
                )
                try:
                    doc = self._load_entry_doc(digest)
                    if doc.get("trace_sha256") is not None:
                        # surfaces missing/corrupt trace files too
                        self.load_trace(digest)
                except StoreError as exc:
                    self._remove_object(digest)
                    report.removed_corrupt += 1
                    report.bytes_freed += size
                    report.findings.append(f"removed corrupt {digest[:12]}...: {exc}")
                    continue
                if digest not in known:
                    report.adopted += 1
                    report.findings.append(f"adopted unindexed {digest[:12]}...")
                rows.append((doc["seq"], digest, size))
            rows.sort()

            total = sum(size for _, _, size in rows)
            evict = 0
            if max_entries is not None:
                evict = max(evict, len(rows) - max_entries)
            if max_bytes is not None:
                over = total - max_bytes
                acc = 0
                n = 0
                for _, _, size in rows:
                    if acc >= over:
                        break
                    acc += size
                    n += 1
                evict = max(evict, n if over > 0 else 0)
            for seq, digest, size in rows[:evict]:
                self._remove_object(digest)
                report.removed_evicted += 1
                report.bytes_freed += size
                report.findings.append(f"evicted seq={seq} {digest[:12]}...")
            rows = rows[evict:]

            index = _empty_index()
            index["next_seq"] = index_before["next_seq"]
            for seq, digest, _ in rows:
                doc = self._load_entry_doc(digest)
                index["entries"][digest] = self._index_row(doc)
                index["next_seq"] = max(index["next_seq"], seq + 1)
            self._write_index(index)
            report.kept = len(rows)
            return report

        return self._with_lock(commit)
