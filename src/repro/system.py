"""System: the assembled simulated machine.

``System`` wires together a :class:`~repro.topology.Machine`, one
:class:`~repro.sched.CoreSim` per hardware context, a kernel-level
balancer (the *space* dimension: Linux, ULE, DWRR, pinned or none) and
any number of user-level speed balancers, and exposes the primitive
operations everything above is built from:

* ``spawn_burst``  -- create tasks, placing them the way the paper
  describes Linux doing it: "at task start-up Linux tries to assign it
  an idle core, but the idleness information is not updated when
  multiple tasks start simultaneously" (footnote 1) -- the whole burst
  shares one stale load snapshot;
* ``migrate``      -- move a task between run queues, paying the cache
  model's migration debt and honoring ``sched_setaffinity`` semantics
  for forced moves;
* ``wake`` / ``put_to_sleep`` -- blocking and wakeup with CFS sleeper
  vruntime credit;
* ``run_until_done`` -- drive the event loop until the applications
  under study finish (background tasks may run forever).

The system itself has no balancing policy; it only provides mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.balance.base import KernelBalancer
from repro.mem.cache_model import CacheModel
from repro.metrics.trace import TraceRecorder
from repro.sched.cfs import CfsParams, O1Params
from repro.sched.core import CoreSim
from repro.sched.task import Task, TaskState
from repro.sim.backends import make_engine
from repro.sim.engine import Engine
from repro.sim.rng import SimRng
from repro.topology.machine import Machine

__all__ = ["System", "MigrationRecord"]


@dataclass
class MigrationRecord:
    """One migration, for post-run analysis and the test suite."""

    time: int
    tid: int
    task_name: str
    src: Optional[int]
    dst: int
    forced: bool
    reason: str


class System:
    """A simulated multicore machine ready to run workloads.

    Parameters
    ----------
    machine:
        Hardware description (see :mod:`repro.topology.presets`).
    seed:
        Root seed for all randomized decisions of this run.
    cfs_params:
        Per-core scheduler tunables.
    cache_model:
        Migration pricing (see :mod:`repro.mem.cache_model`).
    yield_check_us:
        Simulation granularity of a ``sched_yield`` busy loop: how long
        a yielding waiter occupies the core before handing it to a
        queued co-runner.  (With an empty queue, yield returns
        immediately and the waiter effectively polls; that case is
        simulated in whole scheduler slices.)
    migration_log_limit:
        Keep at most this many :class:`MigrationRecord` entries
        (counters are always exact).
    trace:
        Record every execution interval and migration into a
        :class:`~repro.metrics.trace.TraceRecorder` (post-hoc speed
        computation, core utilization, ASCII Gantt charts, and the
        schedule sanitizer's race/conservation analysis).  Pass True
        for a default recorder or a :class:`TraceRecorder` instance to
        control the record limit.  Off by default: tracing costs memory
        proportional to context switches.
    scheduler:
        Per-core scheduling policy: ``"cfs"`` (Linux >= 2.6.23, the
        default) or ``"o1"`` (the pre-CFS fixed-quantum round robin of
        the 2.6.22 kernel DWRR was prototyped on).
    engine:
        Event-dispatch backend: ``"heap"`` (the default binary heap) or
        ``"batched"`` (calendar-queue buckets drained per tick, with
        the batch-aware memoization fast paths armed).  Backends are
        bit-identical in behaviour -- the golden-digest suite enforces
        it -- and differ only in speed; see :mod:`repro.sim.backends`.
    """

    def __init__(
        self,
        machine: Machine,
        seed: int = 0,
        cfs_params: Optional[CfsParams] = None,
        cache_model: Optional[CacheModel] = None,
        yield_check_us: int = 20,
        migration_log_limit: int = 100_000,
        trace: Union[bool, TraceRecorder] = False,
        scheduler: str = "cfs",
        engine: str = "heap",
    ):
        self.machine = machine
        self.engine: Engine = make_engine(engine)
        #: the backend name behind :attr:`engine` (spec/key plumbing)
        self.engine_backend = engine
        self.rng = SimRng(seed)
        if scheduler not in ("cfs", "o1"):
            raise ValueError("scheduler must be 'cfs' or 'o1'")
        self.scheduler = scheduler
        if cfs_params is None:
            cfs_params = O1Params() if scheduler == "o1" else CfsParams()
        self.cfs_params = cfs_params
        self.cache_model = cache_model or CacheModel()
        self.yield_check_us = yield_check_us
        #: optional execution trace (see repro.metrics.trace)
        if isinstance(trace, TraceRecorder):
            self.trace: Optional[TraceRecorder] = trace
        else:
            self.trace = TraceRecorder() if trace else None
        # -- maintained hot-path indexes (see docs/performance.md) ------
        #: memory-contention scope key -> sorted [(cid, mem_intensity)]
        #: of cores whose *running* task has positive intensity; scope
        #: is the NUMA node (mem_contention_scope == "node") or one
        #: machine-wide bucket.  Summing the list in cid order
        #: reproduces the old all-core sweep's float result bit-exactly
        #: (adding 0.0 is exact, so skipping idle/zero cores is too).
        self._mem_scope_busy: dict[int, list[tuple[int, float]]] = {}
        #: scope key -> one-element version cell, bumped whenever that
        #: scope's _mem_scope_busy list changes.  The batched backend's
        #: per-core contention-rate memo is keyed on it; a recompute on
        #: version change sums the same floats in the same order, so the
        #: memo is invisible to digests.
        self._mem_scope_epoch: dict[int, list[int]] = {}
        #: global load epoch: a one-element cell bumped on every
        #: mutation that can change any core's ``nr_running`` (enqueue/
        #: dequeue/interrupt/put-back/dispatch).  Monotonic, so a memo
        #: entry keyed on a stale epoch can never falsely match.  The
        #: Linux balancer's no-op-pass memo (armed under the batched
        #: engine) reads it; the lone-task redispatch fast path touches
        #: no queue state and leaves it alone, which is exactly why
        #: steady-state balancer ticks collapse to memo hits.
        self._load_epoch: list[int] = [0]
        #: per-core residency: cid -> {tid: Task} of tasks whose
        #: current-or-last core is cid (see note_residency)
        self._residents: list[dict[int, Task]] = [{} for _ in machine.cores]
        self.cores: list[CoreSim] = [CoreSim(self, hw) for hw in machine.cores]
        self.tasks: list[Task] = []
        self.kernel_balancer = None  # set by set_balancer
        #: bound on_charge of the kernel balancer, or None when it uses
        #: the base-class no-op -- the dispatch path's charge hook skips
        #: a guaranteed-empty call per charge (see CoreSim._charge_current)
        self._kb_on_charge: Optional[Callable[[CoreSim, Task, int], None]] = None
        self.user_balancers: list = []
        # -- bookkeeping ----------------------------------------------
        self.migration_log: list[MigrationRecord] = []
        self._migration_log_limit = migration_log_limit
        self.migration_counts: dict[str, int] = {}
        self._exit_callbacks: dict[int, list[Callable[[Task], None]]] = {}
        self._watch: set[int] = set()
        self._watching = False
        # -- instrumentation hooks (see repro.analysis.invariants) -----
        #: observers called as fn(core, task, dt) after every execution-
        #: time charge (in addition to the kernel balancer's on_charge)
        self.charge_observers: list[Callable[[CoreSim, Task, int], None]] = []
        #: observers called as fn(task, record) after every successful
        #: migration, before the task is enqueued on its destination
        self.migration_observers: list[Callable[[Task, MigrationRecord], None]] = []
        #: the installed invariant checker, if any (opt-in; set by
        #: repro.analysis.invariants.install_invariant_checker)
        self.invariant_checker: Optional[object] = None

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def set_balancer(self, balancer) -> None:
        """Install the kernel-level balancer (call before spawning)."""
        self.kernel_balancer = balancer
        self._kb_on_charge = (
            balancer.on_charge
            if type(balancer).on_charge is not KernelBalancer.on_charge
            else None
        )
        balancer.attach(self)

    def add_user_balancer(self, balancer) -> None:
        """Install a user-level balancer (the paper's speedbalancer)."""
        self.user_balancers.append(balancer)
        balancer.attach(self)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def spawn_burst(self, tasks: Sequence[Task], at: int = 0) -> None:
        """Create ``tasks`` simultaneously at time ``at``.

        Placement models the Linux fork-balance race: the entire burst
        is placed using one load snapshot taken before any member is
        enqueued, so simultaneous starters can clump onto the same
        "idle" cores.  Balancers may override placement per task.
        """
        tasks = list(tasks)

        def do_spawn() -> None:
            snapshot = [c.nr_running for c in self.cores]
            for task in tasks:
                self.tasks.append(task)
                task.started_at = self.engine.now
                cid = self._initial_core(task, snapshot)
                core = self.cores[cid]
                task.vruntime = core.rq.min_vruntime
                task.program.on_start(task, self.engine.now)
                core.enqueue(task, wakeup=True)

        self.engine.schedule_at(max(at, self.engine.now), do_spawn, "spawn_burst")

    def _initial_core(self, task: Task, snapshot: list[int]) -> int:
        if task.allowed_cores is not None and len(task.allowed_cores) == 1:
            return next(iter(task.allowed_cores))
        if self.kernel_balancer is not None:
            return self.kernel_balancer.place_new_task(task, snapshot)
        # no balancer: least loaded allowed core by the stale snapshot
        allowed = self._allowed(task)
        return min(allowed, key=lambda c: (snapshot[c], c))

    def _allowed(self, task: Task) -> list[int]:
        if task.allowed_cores is None:
            return list(range(len(self.cores)))
        return sorted(task.allowed_cores)

    def put_to_sleep(self, task: Task, wake_in: int) -> None:
        """Block ``task``; it wakes ``wake_in`` microseconds from now."""
        task.state = TaskState.SLEEPING
        task.cur_core = None
        self.note_residency(task)
        self.engine.schedule(max(1, wake_in), lambda: self.wake(task, 0), "sleep_wake")

    def wake(self, task: Task, latency_us: int = 0) -> None:
        """Make a sleeping task runnable (after an optional latency)."""
        if latency_us > 0:
            self.engine.schedule(latency_us, lambda: self.wake(task, 0), "wake")
            return
        if task.state != TaskState.SLEEPING:
            return  # already woken by another path
        prev = task.last_core if task.last_core is not None else 0
        if not task.can_run_on(prev):
            prev = self._allowed(task)[0]
        if self.kernel_balancer is not None:
            prev = self.kernel_balancer.place_woken(task, prev)
        core = self.cores[prev]
        task.state = TaskState.RUNNABLE
        task.vruntime = max(
            task.vruntime, core.rq.min_vruntime - self.cfs_params.sleeper_credit
        )
        core.enqueue(task, wakeup=True)

    def task_exited(self, task: Task) -> None:
        """Called by a core when a task's program returns EXIT."""
        task.state = TaskState.FINISHED
        task.finished_at = self.engine.now
        task.cur_core = None
        self.note_residency(task)
        task.program.on_exit(task, self.engine.now)
        for cb in self._exit_callbacks.pop(task.tid, []):
            cb(task)
        self._watch.discard(task.tid)
        if self._watching and not self._watch:
            self.engine.stop()

    def on_exit(self, task: Task, callback: Callable[[Task], None]) -> None:
        """Register a completion callback for ``task``."""
        self._exit_callbacks.setdefault(task.tid, []).append(callback)

    # ------------------------------------------------------------------
    # migration (the one mechanism every balancer shares)
    # ------------------------------------------------------------------
    def migrate(
        self,
        task: Task,
        dst_cid: int,
        forced: bool = False,
        pin: bool = False,
        reason: str = "",
    ) -> bool:
        """Move a runnable/running task to core ``dst_cid``.

        ``forced`` gives ``sched_setaffinity`` semantics (interrupt a
        running task mid-quantum); non-forced moves refuse running
        tasks, as the Linux balancer does.  ``pin`` additionally
        restricts the task to the destination core -- what the paper's
        ``speedbalancer`` relies on so "any threads moved by
        speedbalancer do not also get moved by the Linux load
        balancer".

        Returns True if the task actually moved.
        """
        if not task.can_run_on(dst_cid) and not pin:
            return False
        src = task.cur_core
        if src == dst_cid:
            if pin:
                task.pin(frozenset({dst_cid}))
            return False
        was_running = task.state == TaskState.RUNNING
        if was_running:
            if not forced:
                return False
            assert src is not None
            src_core = self.cores[src]
            src_core.interrupt()
            task.cur_core = None
        elif task.state == TaskState.RUNNABLE:
            assert src is not None
            self.cores[src].dequeue(task)
        else:
            return False  # sleeping/finished tasks are not on any queue

        dst = self.cores[dst_cid]
        if src is not None:
            # CFS vruntime renormalization across queues
            task.vruntime = (
                task.vruntime - self.cores[src].rq.min_vruntime + dst.rq.min_vruntime
            )
            task.migration_debt_us += self.cache_model.migration_cost_us(
                self.machine, task.footprint_bytes, src, dst_cid
            )
            self.cores[src].stats.migrations_out += 1
            if (
                self.machine.numa
                and task.compute_us < self.cache_model.first_touch_window_us
            ):
                # moved before its data was allocated: re-home on the
                # destination node at the next compute touch
                task.home_node = None
        dst.stats.migrations_in += 1
        task.migrations += 1
        task.last_migrated_at = self.engine.now
        if pin:
            task.pin(frozenset({dst_cid}))
        self._record_migration(task, src, dst_cid, forced, reason)
        dst.enqueue(task, wakeup=False)
        if was_running and src is not None:
            # the interrupted source core must pick a new task
            self.cores[src].resched()
        return True

    def _record_migration(
        self, task: Task, src: Optional[int], dst: int, forced: bool, reason: str
    ) -> None:
        self.migration_counts[reason] = self.migration_counts.get(reason, 0) + 1
        record = MigrationRecord(
            time=self.engine.now,
            tid=task.tid,
            task_name=task.name,
            src=src,
            dst=dst,
            forced=forced,
            reason=reason,
        )
        if len(self.migration_log) < self._migration_log_limit:
            self.migration_log.append(record)
        if self.trace is not None:
            self.trace.record_migration(
                record.time, record.tid, record.task_name,
                record.src, record.dst, record.forced, record.reason,
            )
        for observer in self.migration_observers:
            observer(task, record)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_task_charged(self, core: CoreSim, task: Task, dt: int) -> None:
        """Charging hook: lets DWRR account round slices."""
        if self.kernel_balancer is not None:
            self.kernel_balancer.on_charge(core, task, dt)
        for observer in self.charge_observers:
            observer(core, task, dt)

    # ------------------------------------------------------------------
    # dynamic frequency (Turbo-Boost-style clock changes)
    # ------------------------------------------------------------------
    def set_clock_factor(self, cid: int, factor: float) -> None:
        """Change a core's clock factor at the current instant.

        Models Turbo Boost / thermal throttling (the paper's Section 3
        motivation: cores "might run at different clock speeds" that
        change as "temperature rises").  The running task is charged at
        its old rate up to now and redispatched at the new one, so
        accounting stays exact.  Queue-length balancers cannot see the
        change at all; the speed balancer observes it through the
        clock-weighted speed metric within a balance interval.
        """
        if factor <= 0:
            raise ValueError("clock factor must be positive")
        core = self.cores[cid]
        self.machine.cores[cid].clock_factor = float(factor)
        core._clock_factor = float(factor)  # keep the core's hot-path cache in sync
        if core.current is not None:
            core.resched()

    def schedule_clock_change(self, at: int, cid: int, factor: float) -> None:
        """Apply :meth:`set_clock_factor` at simulation time ``at``."""
        self.engine.schedule_at(
            max(at, self.engine.now),
            lambda: self.set_clock_factor(cid, factor),
            f"clock.{cid}",
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Run the event loop (to quiescence or ``until``)."""
        self.engine.run(until=until)

    def run_until_done(self, apps: Iterable, limit_us: int = 3_600_000_000) -> None:
        """Run until every task of every app in ``apps`` has exited.

        ``limit_us`` (default: one simulated hour) guards against a
        workload that cannot finish, e.g. due to a balancer bug
        starving a barrier.
        """
        self._watch = set()
        self._watching = True
        for app in apps:
            for t in getattr(app, "tasks", [app]):
                if t.finished_at is None:
                    self._watch.add(t.tid)
        if not self._watch:
            self._watching = False
            return
        self.engine.run(until=self.engine.now + limit_us)
        self._watching = False
        if self._watch:
            undone = [t.name for t in self.tasks if t.tid in self._watch]
            raise RuntimeError(
                f"simulation limit reached with unfinished tasks: {undone[:8]}"
            )

    # ------------------------------------------------------------------
    # residency index (the /proc-affinity analog, maintained not scanned)
    # ------------------------------------------------------------------
    def note_residency(self, task: Task) -> None:
        """Refresh ``task``'s slot in the per-core residency index.

        A task *resides* on its current core, or -- sleeping/descheduled,
        exactly the taskstats semantics the user-level balancers sample
        -- on the core it last ran on; a FINISHED task resides nowhere.
        Every mutation of ``cur_core``/``last_core``/``state`` that can
        change that answer calls this; the balancers then read
        :meth:`residents_on` in O(residents) instead of scanning every
        task of the application per wake.
        """
        if task.state == TaskState.FINISHED:
            where = None
        else:
            where = task.cur_core if task.cur_core is not None else task.last_core
        old = task.resident_core
        if where == old:
            return
        if old is not None:
            self._residents[old].pop(task.tid, None)
        if where is not None:
            self._residents[where][task.tid] = task
        task.resident_core = where

    def residents_on(self, cid: int) -> dict[int, Task]:
        """Live view of the residency index for one core: tid -> Task.

        Callers must not mutate it, and must impose their own
        deterministic order (dict order here is arrival order).
        """
        return self._residents[cid]

    # ------------------------------------------------------------------
    # introspection (the /proc analog used by user-level balancers)
    # ------------------------------------------------------------------
    def queue_lengths(self) -> list[int]:
        return [c.nr_running for c in self.cores]

    def tasks_of_app(self, app_id: str) -> list[Task]:
        return [t for t in self.tasks if t.app_id == app_id]

    def total_migrations(self) -> int:
        return sum(self.migration_counts.values())

    def __repr__(self) -> str:
        return (
            f"<System {self.machine.name} t={self.engine.now}us"
            f" tasks={len(self.tasks)} migrations={self.total_migrations()}>"
        )
