"""Machine topology: cores, caches, sockets, NUMA nodes, domains.

This models what the paper's ``speedbalancer`` reads from ``/sys`` and
what the Linux kernel encodes as *scheduling domains* (Section 2 of the
paper): a hierarchy reflecting how hardware resources are shared -- SMT
hardware context, shared cache, socket, NUMA node.

The concrete systems from Table 1 of the paper are available as
presets:

* :func:`repro.topology.presets.tigerton`  -- UMA  4 sockets x 4 cores,
  4 MB L2 per core pair, Intel Xeon E7310.
* :func:`repro.topology.presets.barcelona` -- NUMA 4 sockets x 4 cores,
  512 KB private L2, 2 MB L3 per socket, AMD Opteron 8350.
* :func:`repro.topology.presets.nehalem`   -- NUMA 2 sockets x 4 cores
  x 2 SMT contexts (the system whose results the paper omits for
  brevity).

Asymmetric machines (Turbo-Boost-style clock differences, Section 3)
are built with :func:`repro.topology.presets.asymmetric`.
"""

from repro.topology.machine import (
    Cache,
    Core,
    DomainLevel,
    Machine,
    SchedDomain,
)
from repro.topology import presets

__all__ = [
    "Cache",
    "Core",
    "DomainLevel",
    "Machine",
    "SchedDomain",
    "presets",
]
