"""Core, cache and scheduling-domain data structures.

The simulator's notion of a machine is intentionally close to what the
Linux scheduler sees:

* a flat list of :class:`Core` objects, each with a clock factor (1.0 =
  the machine's nominal speed; asymmetric systems use other values),
  a socket id, a NUMA node id and an optional SMT sibling;
* a set of :class:`Cache` objects, each shared by a group of cores,
  used by the memory model to price migrations;
* a tree of :class:`SchedDomain` objects -- SMT, MC (shared cache),
  SOCKET, NUMA -- that both the Linux load balancer model and the
  speed balancer walk, exactly as the paper describes the real
  implementations doing via ``/proc`` and ``/sys``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Core", "Cache", "DomainLevel", "SchedDomain", "Machine"]


class DomainLevel(enum.IntEnum):
    """Scheduling-domain levels, ordered from most to least shared.

    Matches the hierarchy in Section 2 of the paper: "SMT hardware
    context, cache, socket and NUMA domain".  Balancing proceeds *up*
    this hierarchy; migration frequency decreases with level.

    ``MACHINE`` is the all-cores domain of a *UMA* machine (Linux's
    "CPU" level on the Tigerton): crossing it is a socket crossing,
    not a NUMA crossing, so it must not be caught by NUMA-migration
    blocking.  On NUMA machines the all-cores domain is ``NUMA``.
    """

    SMT = 0
    CACHE = 1
    SOCKET = 2
    MACHINE = 3
    NUMA = 4


@dataclass
class Cache:
    """A cache shared by one or more cores.

    ``size_bytes`` is the capacity used by the migration-cost model: a
    task whose resident set fits in the destination core's largest
    shared cache that it *already shares* with its old core migrates
    cheaply; otherwise it pays a refill cost proportional to its
    footprint (Section 4 of the paper cites microseconds to ~2 ms).
    """

    name: str
    level: int  # 1, 2, 3
    size_bytes: int
    core_ids: tuple[int, ...]


@dataclass
class Core:
    """One hardware execution context.

    ``clock_factor`` scales work retired per microsecond of execution;
    1.0 is nominal.  The paper motivates speed balancing partly with
    asymmetric clocks (Turbo Boost, Section 3), modeled by setting
    factors != 1.0.

    ``smt_sibling`` is the core id of the other hardware context on the
    same physical core, or None.  The simulator derates both siblings
    when both are busy (see :class:`repro.machine_model`), reflecting
    the Nehalem observation in Section 6 of the paper.
    """

    cid: int
    socket: int
    numa_node: int
    clock_factor: float = 1.0
    smt_sibling: Optional[int] = None


@dataclass
class SchedDomain:
    """A node in the scheduling-domain tree.

    ``groups`` partitions ``core_ids``; at the lowest level each group
    is a single core, higher up each group is the span of a child
    domain.  The Linux balancer balances *between groups* of one
    domain, the speed balancer uses domains to decide which migrations
    are enabled and how often (Section 5.2: "speedbalancer can enable
    migrations to happen twice as often between cores that share a
    cache").
    """

    level: DomainLevel
    core_ids: tuple[int, ...]
    groups: tuple[tuple[int, ...], ...]
    parent: Optional["SchedDomain"] = None
    children: list["SchedDomain"] = field(default_factory=list)

    def group_of(self, cid: int) -> tuple[int, ...]:
        """Return the group within this domain containing core ``cid``."""
        for g in self.groups:
            if cid in g:
                return g
        raise KeyError(f"core {cid} not in domain {self.level.name}")


class Machine:
    """A complete machine description.

    Parameters
    ----------
    name:
        Human-readable label (e.g. ``"tigerton"``).
    cores:
        The hardware contexts, ids must be ``0..n-1`` in order.
    caches:
        Shared caches; used for migration pricing and to build the
        CACHE-level scheduling domains.
    numa:
        True if the machine has more than one memory node with
        distinct access costs (Barcelona, Nehalem).
    numa_remote_slowdown:
        Multiplicative compute slowdown for a task running on a node
        other than where its memory lives.  The paper blocks NUMA
        migrations precisely because this cost is persistent.
    smt_derate:
        Per-context throughput factor when both SMT siblings are busy
        (1.0 = no SMT penalty; Nehalem-like machines use ~0.6, i.e. two
        busy contexts retire ~1.2x a single context).
    mem_contention_scope:
        ``"global"`` (Tigerton-style shared front-side bus / single
        northbridge) or ``"node"`` (Barcelona-style per-node memory
        controllers).  Determines which co-running tasks contend for
        memory bandwidth.
    mem_contention_alpha:
        Strength of bandwidth contention: a task with memory intensity
        m running alongside co-runners with total intensity M slows by
        ``1 / (1 + m * alpha * M)``.  Zero disables the model.  This is
        what reproduces Table 2's sub-linear 16-core speedups for the
        memory-intensive NAS codes (ft.B at 5.3x on Tigerton vs 10.5x
        on Barcelona).
    """

    def __init__(
        self,
        name: str,
        cores: list[Core],
        caches: list[Cache],
        numa: bool,
        numa_remote_slowdown: float = 1.3,
        smt_derate: float = 1.0,
        mem_per_core_bytes: int = 2 << 30,
        mem_contention_scope: str = "global",
        mem_contention_alpha: float = 0.0,
    ):
        self.name = name
        self.cores = cores
        self.caches = caches
        self.numa = numa
        self.numa_remote_slowdown = numa_remote_slowdown
        self.smt_derate = smt_derate
        self.mem_per_core_bytes = mem_per_core_bytes
        if mem_contention_scope not in ("global", "node"):
            raise ValueError("mem_contention_scope must be 'global' or 'node'")
        self.mem_contention_scope = mem_contention_scope
        self.mem_contention_alpha = mem_contention_alpha
        for i, c in enumerate(cores):
            if c.cid != i:
                raise ValueError("core ids must be dense and ordered")
        self.domains_by_core: dict[int, list[SchedDomain]] = {}
        self.root_domain: Optional[SchedDomain] = None
        self._build_domains()

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def numa_node_of(self, cid: int) -> int:
        return self.cores[cid].numa_node

    def socket_of(self, cid: int) -> int:
        return self.cores[cid].socket

    def shared_cache(self, a: int, b: int) -> Optional[Cache]:
        """The largest cache shared by cores ``a`` and ``b``, if any."""
        best: Optional[Cache] = None
        for cache in self.caches:
            if a in cache.core_ids and b in cache.core_ids:
                if best is None or cache.size_bytes > best.size_bytes:
                    best = cache
        return best

    def largest_cache_of(self, cid: int) -> Optional[Cache]:
        """The largest (outermost) cache reachable from core ``cid``."""
        best: Optional[Cache] = None
        for cache in self.caches:
            if cid in cache.core_ids:
                if best is None or cache.level > best.level:
                    best = cache
        return best

    def domain_level_between(self, a: int, b: int) -> Optional[DomainLevel]:
        """The boundary a migration from core ``a`` to ``b`` crosses.

        Returns None when ``a == b`` (no migration).  This is how both
        balancer models classify a candidate migration: SMT moves are
        essentially free, CACHE moves cheap, SOCKET/MACHINE moves cost
        a cache refill, NUMA moves additionally strand memory.
        """
        if a == b:
            return None
        ca, cb = self.cores[a], self.cores[b]
        if ca.numa_node != cb.numa_node:
            return DomainLevel.NUMA
        if ca.socket != cb.socket:
            return DomainLevel.MACHINE
        if ca.smt_sibling == b:
            return DomainLevel.SMT
        if self.shared_cache(a, b) is not None:
            return DomainLevel.CACHE
        return DomainLevel.SOCKET

    # ------------------------------------------------------------------
    def _build_domains(self) -> None:
        """Construct the per-core domain lists, lowest level first.

        Mirrors how the kernel builds ``sched_domains``: each core gets
        a chain of domains that span successively more of the machine.
        Levels that would be degenerate (span identical to the level
        below) are skipped, as the kernel does.
        """
        n = self.n_cores

        def smt_span(cid: int) -> tuple[int, ...]:
            sib = self.cores[cid].smt_sibling
            return tuple(sorted((cid, sib))) if sib is not None else (cid,)

        def cache_span(cid: int) -> tuple[int, ...]:
            # cores sharing the largest cache with cid
            cache = self.largest_cache_of(cid)
            return tuple(sorted(cache.core_ids)) if cache else smt_span(cid)

        def socket_span(cid: int) -> tuple[int, ...]:
            s = self.cores[cid].socket
            return tuple(c.cid for c in self.cores if c.socket == s)

        def machine_span(cid: int) -> tuple[int, ...]:
            return tuple(range(n))

        top_level = DomainLevel.NUMA if self.numa else DomainLevel.MACHINE
        span_fns = [
            (DomainLevel.SMT, smt_span),
            (DomainLevel.CACHE, cache_span),
            (DomainLevel.SOCKET, socket_span),
            (top_level, machine_span),
        ]

        # Build unique domains keyed by (level, span).
        made: dict[tuple[DomainLevel, tuple[int, ...]], SchedDomain] = {}
        for cid in range(n):
            chain: list[SchedDomain] = []
            prev_span: Optional[tuple[int, ...]] = None
            for level, fn in span_fns:
                span = fn(cid)
                if len(span) <= 1 and level < DomainLevel.MACHINE:
                    continue  # degenerate (no SMT sibling, private cache)
                if span == prev_span:
                    continue  # identical to the level below; kernel collapses it
                key = (level, span)
                dom = made.get(key)
                if dom is None:
                    groups = self._groups_for(level, span)
                    dom = SchedDomain(level=level, core_ids=span, groups=groups)
                    made[key] = dom
                chain.append(dom)
                prev_span = span
            self.domains_by_core[cid] = chain
            if chain:
                self.root_domain = chain[-1]

        # Parent/child links for traversal convenience.
        for cid, chain in self.domains_by_core.items():
            for lower, upper in zip(chain, chain[1:]):
                if lower.parent is None:
                    lower.parent = upper
                    upper.children.append(lower)

    def _groups_for(
        self, level: DomainLevel, span: tuple[int, ...]
    ) -> tuple[tuple[int, ...], ...]:
        """Partition ``span`` into balancing groups one level down."""
        if level == DomainLevel.SMT:
            return tuple((c,) for c in span)
        if level == DomainLevel.CACHE:
            # groups are SMT pairs (or single cores)
            seen: set[int] = set()
            groups: list[tuple[int, ...]] = []
            for c in span:
                if c in seen:
                    continue
                sib = self.cores[c].smt_sibling
                if sib is not None and sib in span:
                    g = tuple(sorted((c, sib)))
                else:
                    g = (c,)
                seen.update(g)
                groups.append(g)
            return tuple(groups)
        if level == DomainLevel.SOCKET:
            # groups are cache-sharing clusters within the socket
            groups_map: dict[tuple[int, ...], None] = {}
            for c in span:
                cache = self.largest_cache_of(c)
                if cache is not None and set(cache.core_ids) <= set(span):
                    g = tuple(sorted(cache.core_ids))
                else:
                    g = (c,)
                groups_map[g] = None
            return tuple(groups_map.keys())
        # NUMA / top level: groups are sockets
        groups_map2: dict[int, list[int]] = {}
        for c in span:
            groups_map2.setdefault(self.cores[c].socket, []).append(c)
        return tuple(tuple(sorted(v)) for v in groups_map2.values())

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Table-1-style description of this machine."""
        lines = [f"Machine {self.name}: {self.n_cores} cores, NUMA={self.numa}"]
        sockets: dict[int, list[int]] = {}
        for c in self.cores:
            sockets.setdefault(c.socket, []).append(c.cid)
        for s, cids in sorted(sockets.items()):
            lines.append(f"  socket {s}: cores {cids}")
        for cache in self.caches:
            mb = cache.size_bytes / (1 << 20)
            lines.append(f"  L{cache.level} {cache.name}: {mb:.2f} MB cores {list(cache.core_ids)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Machine {self.name} cores={self.n_cores} numa={self.numa}>"
