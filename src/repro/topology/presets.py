"""Machine presets for the systems in Table 1 of the paper.

=============  ======================  ======================
Property       Tigerton                Barcelona
=============  ======================  ======================
Processor      Intel Xeon E7310        AMD Opteron 8350
Clock          1.6 GHz                 2.0 GHz
L1 (d/i)       32K/32K                 64K/64K
L2             4 MB per 2 cores        512 KB per core
L3             none                    2 MB per socket
Memory/core    2 GB                    4 GB
NUMA           no                      yes (socket = node)
Layout         4 sockets x 4 cores     4 sockets x 4 cores
=============  ======================  ======================

plus the dual-socket Nehalem (2 sockets x 4 cores x 2 SMT) the paper
mentions, and parameterized asymmetric/uniform machines for the
Section 3 scenarios (Turbo Boost style clock asymmetry).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.topology.machine import Cache, Core, Machine

__all__ = ["tigerton", "barcelona", "nehalem", "uniform", "asymmetric"]

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


def tigerton() -> Machine:
    """Intel Xeon E7310 "Tigerton": UMA, 4 sockets x 4 cores.

    Each pair of cores shares a 4 MB L2; each socket shares a
    front-side bus.  This is the system most of the paper's evaluation
    (Sections 6.1-6.3) runs on.
    """
    cores = [Core(cid=i, socket=i // 4, numa_node=0) for i in range(16)]
    caches = []
    for pair in range(8):
        cids = (2 * pair, 2 * pair + 1)
        caches.append(Cache(name=f"L2.{pair}", level=2, size_bytes=4 * MB, core_ids=cids))
    # L1 caches are private; modeled for completeness of migration pricing.
    for i in range(16):
        caches.append(Cache(name=f"L1.{i}", level=1, size_bytes=32 * KB, core_ids=(i,)))
    return Machine(
        name="tigerton",
        cores=cores,
        caches=caches,
        numa=False,
        mem_per_core_bytes=2 * GB,
        mem_contention_scope="global",
        mem_contention_alpha=0.17,
    )


def barcelona(numa_remote_slowdown: float = 1.3) -> Machine:
    """AMD Opteron 8350 "Barcelona": NUMA, 4 sockets x 4 cores.

    Each core has a private 512 KB L2; each socket shares a 2 MB L3 and
    is its own NUMA node.  Used for the Section 6.4 NUMA results and
    the right-hand side of Figure 3.
    """
    cores = [Core(cid=i, socket=i // 4, numa_node=i // 4) for i in range(16)]
    caches = []
    for s in range(4):
        cids = tuple(range(4 * s, 4 * s + 4))
        caches.append(Cache(name=f"L3.{s}", level=3, size_bytes=2 * MB, core_ids=cids))
    for i in range(16):
        caches.append(Cache(name=f"L2.{i}", level=2, size_bytes=512 * KB, core_ids=(i,)))
        caches.append(Cache(name=f"L1.{i}", level=1, size_bytes=64 * KB, core_ids=(i,)))
    return Machine(
        name="barcelona",
        cores=cores,
        caches=caches,
        numa=True,
        numa_remote_slowdown=numa_remote_slowdown,
        mem_per_core_bytes=4 * GB,
        mem_contention_scope="node",
        mem_contention_alpha=0.21,
    )


def nehalem(smt_derate: float = 0.65) -> Machine:
    """Intel Nehalem: NUMA, 2 sockets x 4 cores x 2 SMT contexts.

    The paper ran its full experiment set here too but omitted the
    numbers for brevity, noting that speed balancing wins but does not
    yet weight speeds by SMT-sibling occupancy.  ``smt_derate`` is the
    per-context throughput factor when both siblings are busy.
    """
    cores = []
    for i in range(16):
        phys = i // 2  # physical core 0..7
        sib = i + 1 if i % 2 == 0 else i - 1
        cores.append(
            Core(cid=i, socket=phys // 4, numa_node=phys // 4, smt_sibling=sib)
        )
    caches = []
    for s in range(2):
        cids = tuple(range(8 * s, 8 * s + 8))
        caches.append(Cache(name=f"L3.{s}", level=3, size_bytes=8 * MB, core_ids=cids))
    for p in range(8):
        cids = (2 * p, 2 * p + 1)
        caches.append(Cache(name=f"L2.{p}", level=2, size_bytes=256 * KB, core_ids=cids))
    return Machine(
        name="nehalem",
        cores=cores,
        caches=caches,
        numa=True,
        smt_derate=smt_derate,
        mem_per_core_bytes=3 * GB,
        mem_contention_scope="node",
        mem_contention_alpha=0.15,
    )


def uniform(n_cores: int, cores_per_socket: Optional[int] = None, numa: bool = False) -> Machine:
    """A generic UMA/NUMA machine with ``n_cores`` identical cores.

    Used by unit tests and by the analytical-model cross-checks where
    topology detail is irrelevant.  With ``numa=True`` each socket is a
    NUMA node.
    """
    if cores_per_socket is None:
        cores_per_socket = n_cores
    if n_cores % cores_per_socket:
        raise ValueError("n_cores must be a multiple of cores_per_socket")
    cores = [
        Core(
            cid=i,
            socket=i // cores_per_socket,
            numa_node=(i // cores_per_socket) if numa else 0,
        )
        for i in range(n_cores)
    ]
    caches = []
    n_sockets = n_cores // cores_per_socket
    for s in range(n_sockets):
        cids = tuple(range(s * cores_per_socket, (s + 1) * cores_per_socket))
        caches.append(Cache(name=f"LLC.{s}", level=3, size_bytes=8 * MB, core_ids=cids))
    return Machine(name=f"uniform{n_cores}", cores=cores, caches=caches, numa=numa)


def asymmetric(clock_factors: Sequence[float], cores_per_socket: Optional[int] = None) -> Machine:
    """A UMA machine whose cores run at the given clock factors.

    Models the Section 3 motivation: "the Intel Nehalem processor
    provides the Turbo Boost mechanism that over-clocks cores ... as a
    result cores might run at different clock speeds."  Speed balancing
    handles this with no special casing because executed-time/wall-time
    already reflects the extra work a fast core retires.
    """
    n = len(clock_factors)
    m = uniform(n, cores_per_socket or n)
    for c, f in zip(m.cores, clock_factors):
        if f <= 0:
            raise ValueError("clock factors must be positive")
        c.clock_factor = float(f)
    m.name = "asymmetric%d" % n
    return m
