"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.balance.base import NoBalancer
from repro.balance.linux import LinuxLoadBalancer
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets


@pytest.fixture
def uniform4() -> System:
    """A 4-core UMA system with no kernel balancer activity."""
    system = System(presets.uniform(4), seed=0)
    system.set_balancer(NoBalancer())
    return system


@pytest.fixture
def uniform2() -> System:
    system = System(presets.uniform(2), seed=0)
    system.set_balancer(NoBalancer())
    return system


@pytest.fixture
def tigerton_system() -> System:
    system = System(presets.tigerton(), seed=0)
    system.set_balancer(LinuxLoadBalancer())
    return system


def make_spmd(
    system: System,
    n_threads: int = 4,
    work_us: int = 10_000,
    iterations: int = 3,
    mode: WaitMode = WaitMode.YIELD,
    name: str = "app",
    **kwargs,
) -> SpmdApp:
    """Small SPMD app with sane defaults for unit tests."""
    return SpmdApp(
        system=system,
        name=name,
        n_threads=n_threads,
        work_us=work_us,
        iterations=iterations,
        wait_policy=WaitPolicy(mode=mode),
        **kwargs,
    )
