"""Shared fixtures and helpers for the test suite.

Every :class:`~repro.system.System` constructed anywhere in the suite
gets a :class:`~repro.analysis.invariants.InvariantChecker` installed
automatically (see ``_install_invariants_everywhere``), so the whole
tier-1 suite doubles as an invariant stress test: any accounting drift,
clock reversal or balancer-policy breach raises
:class:`~repro.analysis.invariants.InvariantViolation` at the moment it
happens.  Mark a test ``@pytest.mark.no_invariants`` to opt out (e.g.
when deliberately constructing broken states).
"""

from __future__ import annotations

import pytest

from repro.analysis.invariants import InvariantConfig, install_invariant_checker
from repro.apps.barriers import WaitPolicy
from repro.apps.spmd import SpmdApp
from repro.balance.base import NoBalancer
from repro.balance.linux import LinuxLoadBalancer
from repro.sched.task import WaitMode
from repro.system import System
from repro.topology import presets


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_invariants: do not auto-install the runtime invariant checker",
    )


@pytest.fixture(autouse=True)
def _install_invariants_everywhere(request, monkeypatch):
    """Install the runtime invariant checker on every System built.

    Cheap O(1) checks (clock monotonicity, t_exec <= t_real, busy-time
    conservation) run at every event/charge; full running-state scans
    (INV004) run every ``scan_stride`` events and at every migration.
    """
    if request.node.get_closest_marker("no_invariants"):
        yield
        return
    orig_init = System.__init__

    def init_with_checker(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        install_invariant_checker(self, InvariantConfig(scan_stride=32))

    monkeypatch.setattr(System, "__init__", init_with_checker)
    yield


@pytest.fixture
def uniform4() -> System:
    """A 4-core UMA system with no kernel balancer activity."""
    system = System(presets.uniform(4), seed=0)
    system.set_balancer(NoBalancer())
    return system


@pytest.fixture
def uniform2() -> System:
    system = System(presets.uniform(2), seed=0)
    system.set_balancer(NoBalancer())
    return system


@pytest.fixture
def tigerton_system() -> System:
    system = System(presets.tigerton(), seed=0)
    system.set_balancer(LinuxLoadBalancer())
    return system


def make_spmd(
    system: System,
    n_threads: int = 4,
    work_us: int = 10_000,
    iterations: int = 3,
    mode: WaitMode = WaitMode.YIELD,
    name: str = "app",
    **kwargs,
) -> SpmdApp:
    """Small SPMD app with sane defaults for unit tests."""
    return SpmdApp(
        system=system,
        name=name,
        n_threads=n_threads,
        work_us=work_us,
        iterations=iterations,
        wait_policy=WaitPolicy(mode=mode),
        **kwargs,
    )
